//! The AX.25 v2.0 connected-mode (level 2) state machine.
//!
//! Terminal users in the paper's network — the ones who *"simply typed
//! streams of data at each other"* (§1) — use this LAPB-style reliable
//! connection protocol, as does the BBS traffic and the §2.4
//! application-layer gateway ("a user program can then read from this
//! line, and maintain the state required to keep track of AX.25 level
//! connections"). This module implements a pragmatic modulo-8 subset:
//!
//! * SABM/UA connection establishment, DISC/UA release, DM refusal;
//! * sequenced I frames with a configurable window `k` ≤ 7;
//! * RR acknowledgements, REJ go-back-N recovery;
//! * T1 retransmission with N2 retry limit; T3 idle keepalive polls.
//!
//! The state machine is sans-io: every entry point takes `now` and returns
//! [`ConnEvent`] actions; [`Connection::next_deadline`] tells the caller
//! when to invoke [`Connection::on_timer`].
//!
//! # Examples
//!
//! ```
//! use ax25::addr::Ax25Addr;
//! use ax25::conn::{ConnConfig, ConnEvent, Connection};
//! use sim::SimTime;
//!
//! let pc = Ax25Addr::parse_or_panic("N7AKR");
//! let bbs = Ax25Addr::parse_or_panic("KB7DZ");
//! let mut caller = Connection::new(pc, bbs, ConnConfig::default());
//! let mut events = caller.connect(SimTime::ZERO);
//! assert!(matches!(events.remove(0), ConnEvent::SendFrame(_)));
//! ```

use std::collections::VecDeque;

use sim::{SimDuration, SimTime};

use crate::addr::Ax25Addr;
use crate::frame::{Frame, FrameKind, Pid};

/// Why a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseReason {
    /// Clean DISC/UA exchange.
    Normal,
    /// The peer refused (DM) or reset the link.
    Refused,
    /// N2 retries of T1 expired without progress.
    Timeout,
}

/// Output actions from the state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnEvent {
    /// Transmit this frame on the link.
    SendFrame(Frame),
    /// In-order user data received from the peer.
    Data(Vec<u8>),
    /// The connection is now established.
    Established,
    /// The connection has ended.
    Released(ReleaseReason),
}

/// Link-level connection parameters.
#[derive(Debug, Clone, Copy)]
pub struct ConnConfig {
    /// Retransmission timer. The default of 10 s suits a 1200 bit/s
    /// channel where a full frame takes about a second on the air.
    pub t1: SimDuration,
    /// Idle-link keepalive timer.
    pub t3: SimDuration,
    /// Retry limit before the link is declared dead.
    pub n2: u32,
    /// Send window `k` (1–7 in modulo-8 operation).
    pub window: u8,
    /// Maximum I-frame info length (PACLEN).
    pub max_info: usize,
}

impl Default for ConnConfig {
    fn default() -> Self {
        ConnConfig {
            t1: SimDuration::from_secs(10),
            t3: SimDuration::from_secs(180),
            n2: 10,
            window: 4,
            max_info: 128,
        }
    }
}

/// Connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// No link.
    Disconnected,
    /// SABM sent, awaiting UA.
    Connecting,
    /// Information transfer.
    Connected,
    /// DISC sent, awaiting UA.
    Disconnecting,
}

/// One AX.25 connected-mode endpoint.
#[derive(Debug)]
pub struct Connection {
    me: Ax25Addr,
    peer: Ax25Addr,
    path: Vec<Ax25Addr>,
    cfg: ConnConfig,
    state: ConnState,
    /// Send state variable V(S).
    vs: u8,
    /// Acknowledge state variable V(A).
    va: u8,
    /// Receive state variable V(R).
    vr: u8,
    send_queue: VecDeque<Vec<u8>>,
    unacked: VecDeque<(u8, Vec<u8>)>,
    retries: u32,
    t1: Option<SimTime>,
    t3: Option<SimTime>,
    rej_outstanding: bool,
    peer_busy: bool,
}

impl Connection {
    /// Creates a disconnected endpoint for the pair (`me`, `peer`).
    pub fn new(me: Ax25Addr, peer: Ax25Addr, cfg: ConnConfig) -> Connection {
        assert!(
            (1..=7).contains(&cfg.window),
            "window must be 1..=7 in modulo-8 mode"
        );
        Connection {
            me,
            peer,
            path: Vec::new(),
            cfg,
            state: ConnState::Disconnected,
            vs: 0,
            va: 0,
            vr: 0,
            send_queue: VecDeque::new(),
            unacked: VecDeque::new(),
            retries: 0,
            t1: None,
            t3: None,
            rej_outstanding: false,
            peer_busy: false,
        }
    }

    /// Sets the digipeater path used for outgoing frames.
    pub fn set_path(&mut self, path: Vec<Ax25Addr>) {
        self.path = path;
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// The local address.
    pub fn local_addr(&self) -> Ax25Addr {
        self.me
    }

    /// The remote address.
    pub fn peer_addr(&self) -> Ax25Addr {
        self.peer
    }

    /// Bytes queued locally but not yet acknowledged by the peer.
    pub fn backlog(&self) -> usize {
        self.send_queue.iter().map(Vec::len).sum::<usize>()
            + self.unacked.iter().map(|(_, d)| d.len()).sum::<usize>()
    }

    /// The earliest timer deadline, if any timer is running.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.t1, self.t3) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    // --- User interface -----------------------------------------------

    /// Initiates a connection (sends SABM).
    pub fn connect(&mut self, now: SimTime) -> Vec<ConnEvent> {
        let mut ev = Vec::new();
        self.reset_vars();
        self.state = ConnState::Connecting;
        self.retries = 0;
        ev.push(self.send_u(FrameKind::Sabm { poll: true }, true));
        self.start_t1(now);
        ev
    }

    /// Queues user data; it is segmented into I frames and transmitted as
    /// the window allows.
    pub fn send(&mut self, now: SimTime, data: &[u8]) -> Vec<ConnEvent> {
        for chunk in data.chunks(self.cfg.max_info.max(1)) {
            self.send_queue.push_back(chunk.to_vec());
        }
        if self.state == ConnState::Connected {
            self.pump(now)
        } else {
            Vec::new()
        }
    }

    /// Initiates link release (sends DISC).
    pub fn disconnect(&mut self, now: SimTime) -> Vec<ConnEvent> {
        match self.state {
            ConnState::Disconnected => vec![ConnEvent::Released(ReleaseReason::Normal)],
            _ => {
                let mut ev = Vec::new();
                self.state = ConnState::Disconnecting;
                self.retries = 0;
                ev.push(self.send_u(FrameKind::Disc { poll: true }, true));
                self.start_t1(now);
                self.t3 = None;
                ev
            }
        }
    }

    // --- Frame input ----------------------------------------------------

    /// Processes a frame addressed to this connection (caller has already
    /// matched source/destination).
    pub fn on_frame(&mut self, now: SimTime, frame: &Frame) -> Vec<ConnEvent> {
        match self.state {
            ConnState::Disconnected => self.frame_disconnected(now, frame),
            ConnState::Connecting => self.frame_connecting(now, frame),
            ConnState::Connected => self.frame_connected(now, frame),
            ConnState::Disconnecting => self.frame_disconnecting(frame),
        }
    }

    fn frame_disconnected(&mut self, now: SimTime, frame: &Frame) -> Vec<ConnEvent> {
        match frame.kind {
            FrameKind::Sabm { .. } => {
                // Passive open: accept the connection.
                self.reset_vars();
                self.state = ConnState::Connected;
                let mut ev = vec![
                    self.send_u(FrameKind::Ua { fin: true }, false),
                    ConnEvent::Established,
                ];
                self.start_t3(now);
                ev.extend(self.pump(now));
                ev
            }
            FrameKind::Disc { .. } => {
                vec![self.send_u(FrameKind::Dm { fin: true }, false)]
            }
            FrameKind::I { .. }
            | FrameKind::Rr { .. }
            | FrameKind::Rnr { .. }
            | FrameKind::Rej { .. } => {
                // Not connected: tell the peer so.
                vec![self.send_u(FrameKind::Dm { fin: true }, false)]
            }
            _ => Vec::new(),
        }
    }

    fn frame_connecting(&mut self, now: SimTime, frame: &Frame) -> Vec<ConnEvent> {
        match frame.kind {
            FrameKind::Ua { .. } => {
                self.state = ConnState::Connected;
                self.stop_t1();
                self.start_t3(now);
                self.retries = 0;
                let mut ev = vec![ConnEvent::Established];
                ev.extend(self.pump(now));
                ev
            }
            FrameKind::Dm { .. } => {
                self.teardown();
                vec![ConnEvent::Released(ReleaseReason::Refused)]
            }
            FrameKind::Sabm { .. } => {
                // Simultaneous open: acknowledge and treat as established.
                self.state = ConnState::Connected;
                self.stop_t1();
                self.start_t3(now);
                vec![
                    self.send_u(FrameKind::Ua { fin: true }, false),
                    ConnEvent::Established,
                ]
            }
            _ => Vec::new(),
        }
    }

    fn frame_connected(&mut self, now: SimTime, frame: &Frame) -> Vec<ConnEvent> {
        let mut ev = Vec::new();
        match frame.kind {
            FrameKind::I { ns, nr, poll } => {
                self.ack_through(now, nr, &mut ev);
                if ns == self.vr {
                    self.vr = (self.vr + 1) % 8;
                    self.rej_outstanding = false;
                    ev.push(ConnEvent::Data(frame.info.clone()));
                    ev.push(self.send_s(FrameKind::Rr {
                        nr: self.vr,
                        pf: poll,
                    }));
                } else if !self.rej_outstanding {
                    self.rej_outstanding = true;
                    ev.push(self.send_s(FrameKind::Rej {
                        nr: self.vr,
                        pf: poll,
                    }));
                } else if poll {
                    ev.push(self.send_s(FrameKind::Rr {
                        nr: self.vr,
                        pf: true,
                    }));
                }
                self.start_t3(now);
                ev.extend(self.pump(now));
            }
            FrameKind::Rr { nr, pf } => {
                self.peer_busy = false;
                self.ack_through(now, nr, &mut ev);
                if frame.command && pf {
                    ev.push(self.send_s(FrameKind::Rr {
                        nr: self.vr,
                        pf: true,
                    }));
                }
                self.start_t3(now);
                ev.extend(self.pump(now));
            }
            FrameKind::Rnr { nr, pf } => {
                self.peer_busy = true;
                self.ack_through(now, nr, &mut ev);
                if frame.command && pf {
                    ev.push(self.send_s(FrameKind::Rr {
                        nr: self.vr,
                        pf: true,
                    }));
                }
            }
            FrameKind::Rej { nr, pf } => {
                self.peer_busy = false;
                self.ack_through(now, nr, &mut ev);
                if frame.command && pf {
                    ev.push(self.send_s(FrameKind::Rr {
                        nr: self.vr,
                        pf: true,
                    }));
                }
                self.retransmit_unacked(now, &mut ev);
            }
            FrameKind::Sabm { .. } => {
                // Link reset by peer.
                self.reset_vars();
                ev.push(self.send_u(FrameKind::Ua { fin: true }, false));
                self.start_t3(now);
            }
            FrameKind::Disc { .. } => {
                ev.push(self.send_u(FrameKind::Ua { fin: true }, false));
                self.teardown();
                ev.push(ConnEvent::Released(ReleaseReason::Normal));
            }
            FrameKind::Dm { .. } => {
                self.teardown();
                ev.push(ConnEvent::Released(ReleaseReason::Refused));
            }
            FrameKind::Ua { .. } | FrameKind::Frmr { .. } | FrameKind::Ui { .. } => {}
        }
        ev
    }

    fn frame_disconnecting(&mut self, frame: &Frame) -> Vec<ConnEvent> {
        match frame.kind {
            FrameKind::Ua { .. } | FrameKind::Dm { .. } => {
                self.teardown();
                vec![ConnEvent::Released(ReleaseReason::Normal)]
            }
            FrameKind::Disc { .. } => {
                vec![self.send_u(FrameKind::Ua { fin: true }, false)]
            }
            _ => Vec::new(),
        }
    }

    // --- Timers ---------------------------------------------------------

    /// Fires any timer whose deadline has passed.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<ConnEvent> {
        let mut ev = Vec::new();
        if self.t1.is_some_and(|t| t <= now) {
            self.t1 = None;
            self.t1_expired(now, &mut ev);
        }
        if self.t3.is_some_and(|t| t <= now) {
            self.t3 = None;
            self.t3_expired(now, &mut ev);
        }
        ev
    }

    fn t1_expired(&mut self, now: SimTime, ev: &mut Vec<ConnEvent>) {
        self.retries += 1;
        if self.retries > self.cfg.n2 {
            match self.state {
                ConnState::Connected | ConnState::Connecting | ConnState::Disconnecting => {
                    ev.push(self.send_u(FrameKind::Dm { fin: true }, false));
                    self.teardown();
                    ev.push(ConnEvent::Released(ReleaseReason::Timeout));
                }
                ConnState::Disconnected => {}
            }
            return;
        }
        match self.state {
            ConnState::Connecting => {
                ev.push(self.send_u(FrameKind::Sabm { poll: true }, true));
                self.start_t1(now);
            }
            ConnState::Disconnecting => {
                ev.push(self.send_u(FrameKind::Disc { poll: true }, true));
                self.start_t1(now);
            }
            ConnState::Connected => {
                if self.unacked.is_empty() {
                    // Poll the peer's state.
                    ev.push(self.send_s_cmd(FrameKind::Rr {
                        nr: self.vr,
                        pf: true,
                    }));
                } else {
                    self.retransmit_unacked(now, ev);
                }
                self.start_t1(now);
            }
            ConnState::Disconnected => {}
        }
    }

    fn t3_expired(&mut self, now: SimTime, ev: &mut Vec<ConnEvent>) {
        if self.state == ConnState::Connected && self.t1.is_none() {
            // Idle link: enquire.
            ev.push(self.send_s_cmd(FrameKind::Rr {
                nr: self.vr,
                pf: true,
            }));
            self.start_t1(now);
        }
    }

    // --- Internals -------------------------------------------------------

    fn reset_vars(&mut self) {
        self.vs = 0;
        self.va = 0;
        self.vr = 0;
        self.unacked.clear();
        self.retries = 0;
        self.rej_outstanding = false;
        self.peer_busy = false;
    }

    fn teardown(&mut self) {
        self.state = ConnState::Disconnected;
        self.t1 = None;
        self.t3 = None;
        self.send_queue.clear();
        self.unacked.clear();
    }

    fn start_t1(&mut self, now: SimTime) {
        self.t1 = Some(now + self.cfg.t1);
    }

    fn stop_t1(&mut self) {
        self.t1 = None;
    }

    fn start_t3(&mut self, now: SimTime) {
        self.t3 = Some(now + self.cfg.t3);
    }

    /// Window of outstanding frames, in modulo-8 arithmetic.
    fn in_flight(&self) -> u8 {
        (self.vs + 8 - self.va) % 8
    }

    /// Transmits queued data while the window is open.
    fn pump(&mut self, now: SimTime) -> Vec<ConnEvent> {
        let mut ev = Vec::new();
        while !self.peer_busy && self.in_flight() < self.cfg.window && !self.send_queue.is_empty() {
            let data = self.send_queue.pop_front().expect("checked non-empty");
            let ns = self.vs;
            self.vs = (self.vs + 1) % 8;
            self.unacked.push_back((ns, data.clone()));
            ev.push(ConnEvent::SendFrame(self.i_frame(ns, data)));
            if self.t1.is_none() {
                self.start_t1(now);
            }
        }
        ev
    }

    fn ack_through(&mut self, now: SimTime, nr: u8, ev: &mut Vec<ConnEvent>) {
        // Validate that nr acknowledges something within va..=vs.
        let span = (self.vs + 8 - self.va) % 8;
        let offset = (nr + 8 - self.va) % 8;
        if offset > span {
            return; // Out-of-window N(R); ignore.
        }
        let mut progressed = false;
        while self.va != nr {
            let popped = self.unacked.pop_front();
            debug_assert!(popped.is_some(), "unacked queue out of sync");
            self.va = (self.va + 1) % 8;
            progressed = true;
        }
        if progressed {
            self.retries = 0;
        }
        if self.unacked.is_empty() {
            self.stop_t1();
            if !self.send_queue.is_empty() {
                // pump() restarts T1 for the new frames.
            }
        } else if progressed {
            self.start_t1(now);
        }
        let _ = ev;
    }

    fn retransmit_unacked(&mut self, now: SimTime, ev: &mut Vec<ConnEvent>) {
        let frames: Vec<Frame> = self
            .unacked
            .iter()
            .map(|(ns, data)| self.i_frame(*ns, data.clone()))
            .collect();
        for f in frames {
            ev.push(ConnEvent::SendFrame(f));
        }
        if !self.unacked.is_empty() {
            self.start_t1(now);
        }
    }

    fn i_frame(&self, ns: u8, data: Vec<u8>) -> Frame {
        let mut f = Frame {
            dest: self.peer,
            source: self.me,
            digipeaters: Vec::new(),
            command: true,
            kind: FrameKind::I {
                ns,
                nr: self.vr,
                poll: false,
            },
            pid: Some(Pid::Text),
            info: data,
        };
        f = f.via(&self.path);
        f
    }

    fn send_u(&self, kind: FrameKind, command: bool) -> ConnEvent {
        let f = Frame::control(self.peer, self.me, command, kind).via(&self.path);
        ConnEvent::SendFrame(f)
    }

    fn send_s(&self, kind: FrameKind) -> ConnEvent {
        let f = Frame::control(self.peer, self.me, false, kind).via(&self.path);
        ConnEvent::SendFrame(f)
    }

    fn send_s_cmd(&self, kind: FrameKind) -> ConnEvent {
        let f = Frame::control(self.peer, self.me, true, kind).via(&self.path);
        ConnEvent::SendFrame(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    /// Delivers every SendFrame from `from` into `to`, returning non-frame
    /// events from both sides (from's leftovers first).
    fn exchange(
        now: SimTime,
        from_events: Vec<ConnEvent>,
        to: &mut Connection,
    ) -> (Vec<ConnEvent>, Vec<ConnEvent>) {
        let mut local = Vec::new();
        let mut remote = Vec::new();
        let mut queue: VecDeque<ConnEvent> = from_events.into();
        while let Some(ev) = queue.pop_front() {
            match ev {
                ConnEvent::SendFrame(f) => {
                    remote.extend(to.on_frame(now, &f));
                }
                other => local.push(other),
            }
        }
        (local, remote)
    }

    /// Runs frames back and forth until neither side emits more frames.
    fn settle(
        now: SimTime,
        a_ev: Vec<ConnEvent>,
        alice: &mut Connection,
        bob: &mut Connection,
    ) -> (Vec<ConnEvent>, Vec<ConnEvent>) {
        let mut a_out = Vec::new();
        let mut b_out = Vec::new();
        let mut to_bob = a_ev;
        loop {
            let (a_local, b_resp) = exchange(now, to_bob, bob);
            a_out.extend(a_local);
            let (b_local, a_resp) = exchange(now, b_resp, alice);
            b_out.extend(b_local);
            if a_resp.iter().all(|e| !matches!(e, ConnEvent::SendFrame(_))) {
                a_out.extend(a_resp);
                break;
            }
            to_bob = a_resp;
        }
        (a_out, b_out)
    }

    fn connected_pair() -> (Connection, Connection) {
        let mut alice = Connection::new(a("ALICE"), a("BOB"), ConnConfig::default());
        let mut bob = Connection::new(a("BOB"), a("ALICE"), ConnConfig::default());
        let ev = alice.connect(SimTime::ZERO);
        let (a_ev, b_ev) = settle(SimTime::ZERO, ev, &mut alice, &mut bob);
        assert!(a_ev.contains(&ConnEvent::Established));
        assert!(b_ev.contains(&ConnEvent::Established));
        assert_eq!(alice.state(), ConnState::Connected);
        assert_eq!(bob.state(), ConnState::Connected);
        (alice, bob)
    }

    #[test]
    fn sabm_ua_establishes_both_sides() {
        let _ = connected_pair();
    }

    #[test]
    fn data_flows_in_order() {
        let (mut alice, mut bob) = connected_pair();
        let ev = alice.send(SimTime::ZERO, b"hello world");
        let (_, b_ev) = settle(SimTime::ZERO, ev, &mut alice, &mut bob);
        let data: Vec<u8> = b_ev
            .iter()
            .filter_map(|e| match e {
                ConnEvent::Data(d) => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(data, b"hello world");
        assert_eq!(alice.backlog(), 0, "all data acknowledged");
    }

    #[test]
    fn data_larger_than_window_is_segmented_and_delivered() {
        let (mut alice, mut bob) = connected_pair();
        // 10 segments of 128 with window 4 -> several pump rounds.
        let big: Vec<u8> = (0..1280).map(|i| (i % 251) as u8).collect();
        let ev = alice.send(SimTime::ZERO, &big);
        assert!(ev.len() <= 4, "initial burst respects the window");
        let (_, b_ev) = settle(SimTime::ZERO, ev, &mut alice, &mut bob);
        let data: Vec<u8> = b_ev
            .iter()
            .filter_map(|e| match e {
                ConnEvent::Data(d) => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(data, big);
    }

    #[test]
    fn disconnect_releases_cleanly() {
        let (mut alice, mut bob) = connected_pair();
        let ev = alice.disconnect(SimTime::ZERO);
        let (a_ev, b_ev) = settle(SimTime::ZERO, ev, &mut alice, &mut bob);
        assert!(a_ev.contains(&ConnEvent::Released(ReleaseReason::Normal)));
        assert!(b_ev.contains(&ConnEvent::Released(ReleaseReason::Normal)));
        assert_eq!(alice.state(), ConnState::Disconnected);
        assert_eq!(bob.state(), ConnState::Disconnected);
    }

    #[test]
    fn dm_refuses_connection() {
        let mut alice = Connection::new(a("ALICE"), a("BOB"), ConnConfig::default());
        let ev = alice.connect(SimTime::ZERO);
        let ConnEvent::SendFrame(_sabm) = &ev[0] else {
            panic!("expected SABM")
        };
        let dm = Frame::control(a("ALICE"), a("BOB"), false, FrameKind::Dm { fin: true });
        let ev = alice.on_frame(SimTime::ZERO, &dm);
        assert!(ev.contains(&ConnEvent::Released(ReleaseReason::Refused)));
        assert_eq!(alice.state(), ConnState::Disconnected);
    }

    #[test]
    fn i_frame_when_disconnected_draws_dm() {
        let mut bob = Connection::new(a("BOB"), a("ALICE"), ConnConfig::default());
        let mut i = Frame::ui(a("BOB"), a("ALICE"), Pid::Text, b"x".to_vec());
        i.kind = FrameKind::I {
            ns: 0,
            nr: 0,
            poll: false,
        };
        let ev = bob.on_frame(SimTime::ZERO, &i);
        assert!(matches!(
            &ev[0],
            ConnEvent::SendFrame(f) if matches!(f.kind, FrameKind::Dm { .. })
        ));
    }

    #[test]
    fn t1_retransmits_sabm_until_n2_then_gives_up() {
        let cfg = ConnConfig {
            n2: 3,
            ..ConnConfig::default()
        };
        let mut alice = Connection::new(a("ALICE"), a("BOB"), cfg);
        let mut now = SimTime::ZERO;
        let _ = alice.connect(now);
        let mut sabms = 0;
        let mut released = false;
        for _ in 0..10 {
            let Some(deadline) = alice.next_deadline() else {
                break;
            };
            now = deadline;
            for ev in alice.on_timer(now) {
                match ev {
                    ConnEvent::SendFrame(f) if matches!(f.kind, FrameKind::Sabm { .. }) => {
                        sabms += 1;
                    }
                    ConnEvent::Released(ReleaseReason::Timeout) => released = true,
                    _ => {}
                }
            }
        }
        assert_eq!(sabms, 3, "n2 retries");
        assert!(released);
        assert_eq!(alice.state(), ConnState::Disconnected);
    }

    #[test]
    fn lost_i_frame_is_recovered_by_t1_retransmission() {
        let (mut alice, mut bob) = connected_pair();
        // Send one frame and "lose" it (never deliver to bob).
        let ev = alice.send(SimTime::ZERO, b"lost");
        assert_eq!(ev.len(), 1);
        // T1 fires; alice retransmits; deliver this time.
        let t1 = alice.next_deadline().expect("t1 running");
        let retrans = alice.on_timer(t1);
        let frames: Vec<_> = retrans
            .iter()
            .filter(|e| matches!(e, ConnEvent::SendFrame(_)))
            .collect();
        assert_eq!(frames.len(), 1);
        let (_, b_ev) = settle(t1, retrans, &mut alice, &mut bob);
        assert!(b_ev
            .iter()
            .any(|e| matches!(e, ConnEvent::Data(d) if d == b"lost")));
        assert_eq!(alice.backlog(), 0);
    }

    #[test]
    fn out_of_order_i_frame_draws_rej_and_recovers() {
        let (mut alice, mut bob) = connected_pair();
        let ev = alice.send(SimTime::ZERO, &[b'a'; 200]); // two segments: 128 + 72
        let frames: Vec<Frame> = ev
            .into_iter()
            .filter_map(|e| match e {
                ConnEvent::SendFrame(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 2);
        // Deliver only the second (ns=1): bob must REJ with nr=0.
        let b_ev = bob.on_frame(SimTime::ZERO, &frames[1]);
        let rej = b_ev
            .iter()
            .find_map(|e| match e {
                ConnEvent::SendFrame(f) => match f.kind {
                    FrameKind::Rej { nr, .. } => Some(nr),
                    _ => None,
                },
                _ => None,
            })
            .expect("REJ expected");
        assert_eq!(rej, 0);
        // Feed the REJ to alice; she retransmits both; settle delivers all.
        let a_ev = alice.on_frame(
            SimTime::ZERO,
            &Frame::control(
                a("ALICE"),
                a("BOB"),
                false,
                FrameKind::Rej { nr: 0, pf: false },
            ),
        );
        let (_, b_ev) = settle(SimTime::ZERO, a_ev, &mut alice, &mut bob);
        let data: Vec<u8> = b_ev
            .iter()
            .filter_map(|e| match e {
                ConnEvent::Data(d) => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(data, vec![b'a'; 200]);
    }

    #[test]
    fn rnr_pauses_transmission_until_rr() {
        let (mut alice, mut bob) = connected_pair();
        let rnr = Frame::control(
            a("ALICE"),
            a("BOB"),
            false,
            FrameKind::Rnr { nr: 0, pf: false },
        );
        alice.on_frame(SimTime::ZERO, &rnr);
        let ev = alice.send(SimTime::ZERO, b"held");
        assert!(
            ev.iter().all(|e| !matches!(e, ConnEvent::SendFrame(_))),
            "peer busy: nothing transmitted"
        );
        let rr = Frame::control(
            a("ALICE"),
            a("BOB"),
            false,
            FrameKind::Rr { nr: 0, pf: false },
        );
        let ev = alice.on_frame(SimTime::ZERO, &rr);
        let (_, b_ev) = settle(SimTime::ZERO, ev, &mut alice, &mut bob);
        assert!(b_ev
            .iter()
            .any(|e| matches!(e, ConnEvent::Data(d) if d == b"held")));
    }

    #[test]
    fn t3_idle_poll_is_answered() {
        let (mut alice, mut bob) = connected_pair();
        let t3 = alice.next_deadline().expect("t3 running");
        let ev = alice.on_timer(t3);
        // Idle poll: RR command with P.
        let poll = ev
            .iter()
            .find_map(|e| match e {
                ConnEvent::SendFrame(f) => Some(f.clone()),
                _ => None,
            })
            .expect("poll frame");
        assert!(poll.command);
        let b_ev = bob.on_frame(t3, &poll);
        let reply = b_ev
            .iter()
            .find_map(|e| match e {
                ConnEvent::SendFrame(f) => Some(f.clone()),
                _ => None,
            })
            .expect("final RR");
        assert!(matches!(reply.kind, FrameKind::Rr { pf: true, .. }));
        // Alice clears T1 on the ack.
        alice.on_frame(t3, &reply);
        assert_eq!(alice.state(), ConnState::Connected);
    }

    #[test]
    fn duplicate_i_frame_is_not_delivered_twice() {
        let (mut alice, mut bob) = connected_pair();
        let ev = alice.send(SimTime::ZERO, b"once");
        let frame = ev
            .iter()
            .find_map(|e| match e {
                ConnEvent::SendFrame(f) => Some(f.clone()),
                _ => None,
            })
            .unwrap();
        let b1 = bob.on_frame(SimTime::ZERO, &frame);
        assert!(b1.iter().any(|e| matches!(e, ConnEvent::Data(_))));
        let b2 = bob.on_frame(SimTime::ZERO, &frame);
        assert!(
            b2.iter().all(|e| !matches!(e, ConnEvent::Data(_))),
            "duplicate must not deliver again"
        );
    }

    #[test]
    fn window_never_exceeds_k() {
        let cfg = ConnConfig {
            window: 2,
            ..ConnConfig::default()
        };
        let mut alice = Connection::new(a("ALICE"), a("BOB"), cfg);
        let mut bob = Connection::new(a("BOB"), a("ALICE"), ConnConfig::default());
        let ev = alice.connect(SimTime::ZERO);
        settle(SimTime::ZERO, ev, &mut alice, &mut bob);
        let ev = alice.send(SimTime::ZERO, &[0u8; 128 * 6]);
        let sent = ev
            .iter()
            .filter(|e| matches!(e, ConnEvent::SendFrame(_)))
            .count();
        assert_eq!(sent, 2);
    }

    #[test]
    fn passive_side_answers_disc_when_disconnected() {
        let mut bob = Connection::new(a("BOB"), a("ALICE"), ConnConfig::default());
        let disc = Frame::control(a("BOB"), a("ALICE"), true, FrameKind::Disc { poll: true });
        let ev = bob.on_frame(SimTime::ZERO, &disc);
        assert!(matches!(
            &ev[0],
            ConnEvent::SendFrame(f) if matches!(f.kind, FrameKind::Dm { .. })
        ));
    }
}
