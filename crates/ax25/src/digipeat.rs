//! The digipeater relay rule.
//!
//! §1 of the paper: *"Relay stations were set up in strategic locations so
//! that messages could be received and passed along to their destination.
//! These relays are known as digipeaters"*, with up to eight hops of
//! source routing in the AX.25 address field. A digipeater retransmits a
//! frame when it is the **first not-yet-repeated** entry in the path,
//! marking its own entry with the H bit.

use crate::addr::Ax25Addr;
use crate::frame::Frame;

/// What a station should do with a heard frame, from the digipeater rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigipeatDecision {
    /// Not addressed through this station; ignore.
    NotForUs,
    /// This station is the next hop: retransmit the returned frame (our
    /// entry now carries the H bit).
    Repeat(Box<Frame>),
    /// The path is fully traversed and the destination may consume it.
    Deliverable,
}

/// Applies the digipeater rule for the station `me` to a heard `frame`.
///
/// # Examples
///
/// ```
/// use ax25::addr::Ax25Addr;
/// use ax25::digipeat::{decide, DigipeatDecision};
/// use ax25::frame::{Frame, Pid};
///
/// let digi = Ax25Addr::parse_or_panic("WA6BEV-1");
/// let f = Frame::ui(
///     Ax25Addr::parse_or_panic("KB7DZ"),
///     Ax25Addr::parse_or_panic("N7AKR"),
///     Pid::Text,
///     vec![],
/// )
/// .via(&[digi]);
///
/// match decide(&f, digi) {
///     DigipeatDecision::Repeat(out) => assert!(out.digipeaters[0].repeated),
///     other => panic!("expected Repeat, got {other:?}"),
/// }
/// ```
pub fn decide(frame: &Frame, me: Ax25Addr) -> DigipeatDecision {
    match frame.digipeaters.iter().position(|d| !d.repeated) {
        None => DigipeatDecision::Deliverable,
        Some(next) if frame.digipeaters[next].addr == me => {
            let mut out = frame.clone();
            out.digipeaters[next].repeated = true;
            DigipeatDecision::Repeat(Box::new(out))
        }
        Some(_) => DigipeatDecision::NotForUs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Pid;

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    fn frame_via(path: &[Ax25Addr]) -> Frame {
        Frame::ui(a("DEST"), a("SRC"), Pid::Text, b"x".to_vec()).via(path)
    }

    #[test]
    fn no_digipeaters_is_deliverable() {
        assert_eq!(
            decide(&frame_via(&[]), a("ANY")),
            DigipeatDecision::Deliverable
        );
    }

    #[test]
    fn first_hop_repeats_and_marks() {
        let f = frame_via(&[a("D1"), a("D2")]);
        match decide(&f, a("D1")) {
            DigipeatDecision::Repeat(out) => {
                assert!(out.digipeaters[0].repeated);
                assert!(!out.digipeaters[1].repeated);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn second_hop_waits_its_turn() {
        let f = frame_via(&[a("D1"), a("D2")]);
        // D2 hears the original transmission but must not repeat yet.
        assert_eq!(decide(&f, a("D2")), DigipeatDecision::NotForUs);
    }

    #[test]
    fn chain_completes_in_order() {
        let path = [a("D1"), a("D2"), a("D3")];
        let mut f = frame_via(&path);
        for hop in path {
            match decide(&f, hop) {
                DigipeatDecision::Repeat(out) => f = *out,
                other => panic!("at {hop}: {other:?}"),
            }
        }
        assert!(f.fully_repeated());
        assert_eq!(decide(&f, a("DEST")), DigipeatDecision::Deliverable);
    }

    #[test]
    fn unrelated_station_ignores() {
        let f = frame_via(&[a("D1")]);
        assert_eq!(decide(&f, a("NOBODY")), DigipeatDecision::NotForUs);
    }

    #[test]
    fn already_repeated_entry_is_not_repeated_again() {
        let mut f = frame_via(&[a("D1"), a("D2")]);
        f.digipeaters[0].repeated = true;
        // D1 hears its own repeat (or a copy); its entry is done.
        assert_eq!(decide(&f, a("D1")), DigipeatDecision::NotForUs);
        assert!(matches!(decide(&f, a("D2")), DigipeatDecision::Repeat(_)));
    }

    #[test]
    fn ssid_distinguishes_stations() {
        let f = frame_via(&[a("D1-7")]);
        assert_eq!(decide(&f, a("D1")), DigipeatDecision::NotForUs);
        assert!(matches!(decide(&f, a("D1-7")), DigipeatDecision::Repeat(_)));
    }
}
