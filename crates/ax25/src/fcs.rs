//! The AX.25 frame check sequence (CRC-16/X.25, a.k.a. CRC-CCITT).
//!
//! On real hardware the FCS is computed by the HDLC chip in the TNC — the
//! paper notes the KISS code "calculates the necessary checksums" (§2.1) —
//! so KISS frames on the serial line carry **no** FCS. The radio-channel
//! model in this workspace appends it on the air side so corruption (from
//! collisions or bit errors) is detected exactly where the real system
//! detects it: in the receiving TNC.

/// Computes the CRC-16/X.25 over `data` (poly 0x1021 reflected = 0x8408,
/// init 0xFFFF, final XOR 0xFFFF), returned in the little-endian bit order
/// AX.25 transmits.
///
/// # Examples
///
/// ```
/// use ax25::fcs::crc16_x25;
///
/// // The classic check value: CRC of "123456789" is 0x906E.
/// assert_eq!(crc16_x25(b"123456789"), 0x906E);
/// ```
pub fn crc16_x25(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte);
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x8408;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// Appends the two FCS octets (low byte first, per HDLC) to `frame`.
pub fn append_fcs(frame: &mut Vec<u8>) {
    let crc = crc16_x25(frame);
    frame.push((crc & 0xFF) as u8);
    frame.push((crc >> 8) as u8);
}

/// Checks and strips a trailing FCS; returns the frame body on success.
pub fn verify_and_strip_fcs(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 2 {
        return None;
    }
    let (body, fcs) = frame.split_at(frame.len() - 2);
    let expect = crc16_x25(body);
    let got = u16::from(fcs[0]) | (u16::from(fcs[1]) << 8);
    (expect == got).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc16_x25(b"123456789"), 0x906E);
    }

    #[test]
    fn empty_input() {
        // CRC-16/X.25 of the empty string is 0x0000.
        assert_eq!(crc16_x25(b""), 0x0000);
    }

    #[test]
    fn append_then_verify_roundtrips() {
        let mut f = b"the quick brown fox".to_vec();
        append_fcs(&mut f);
        assert_eq!(
            verify_and_strip_fcs(&f),
            Some(b"the quick brown fox".as_ref())
        );
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let mut f = b"payload bytes".to_vec();
        append_fcs(&mut f);
        for bit in 0..f.len() * 8 {
            let mut corrupted = f.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert!(
                verify_and_strip_fcs(&corrupted).is_none(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn short_frames_rejected() {
        assert!(verify_and_strip_fcs(&[]).is_none());
        assert!(verify_and_strip_fcs(&[0x12]).is_none());
    }
}
