//! The AX.25 frame check sequence (CRC-16/X.25, a.k.a. CRC-CCITT).
//!
//! On real hardware the FCS is computed by the HDLC chip in the TNC — the
//! paper notes the KISS code "calculates the necessary checksums" (§2.1) —
//! so KISS frames on the serial line carry **no** FCS. The radio-channel
//! model in this workspace appends it on the air side so corruption (from
//! collisions or bit errors) is detected exactly where the real system
//! detects it: in the receiving TNC.

/// Builds the Sarwate byte table: `T0[b]` is the CRC register after
/// clocking byte `b` through the reflected polynomial from a zero register.
const fn sarwate_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut byte = 0;
    while byte < 256 {
        let mut crc = byte as u16;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x8408
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[byte] = crc;
        byte += 1;
    }
    table
}

/// Builds the slice-by-8 tables: `T[k][b]` is byte `b`'s contribution after
/// `k` further zero bytes, i.e. `T0[b]` advanced `k` times through the
/// Sarwate step `crc' = (crc >> 8) ^ T0[crc & 0xFF]`.
const fn slice_tables() -> [[u16; 256]; 8] {
    let t0 = sarwate_table();
    let mut tables = [[0u16; 256]; 8];
    tables[0] = t0;
    let mut k = 1;
    while k < 8 {
        let mut byte = 0;
        while byte < 256 {
            let prev = tables[k - 1][byte];
            tables[k][byte] = (prev >> 8) ^ t0[(prev & 0xFF) as usize];
            byte += 1;
        }
        k += 1;
    }
    tables
}

/// Slice-by-8 tables, built at compile time (no build.rs): 8 × 256 × u16.
const TABLES: [[u16; 256]; 8] = slice_tables();

/// Computes the CRC-16/X.25 over `data` (poly 0x1021 reflected = 0x8408,
/// init 0xFFFF, final XOR 0xFFFF), returned in the little-endian bit order
/// AX.25 transmits.
///
/// Slice-by-8 (Sarwate's table method widened the way the Linux net stack
/// does for CRC32): eight input bytes fold into the register per step, the
/// CRC xored into the first two and each byte's contribution looked up in
/// the table matching its distance from the end of the chunk. The bitwise
/// loop survives as [`crc16_x25_ref`], the executable spec the
/// differential proptest checks this against (DESIGN.md §9).
///
/// # Examples
///
/// ```
/// use ax25::fcs::crc16_x25;
///
/// // The classic check value: CRC of "123456789" is 0x906E.
/// assert_eq!(crc16_x25(b"123456789"), 0x906E);
/// ```
pub fn crc16_x25(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let b0 = c[0] ^ (crc & 0xFF) as u8;
        let b1 = c[1] ^ (crc >> 8) as u8;
        crc = TABLES[7][b0 as usize]
            ^ TABLES[6][b1 as usize]
            ^ TABLES[5][c[2] as usize]
            ^ TABLES[4][c[3] as usize]
            ^ TABLES[3][c[4] as usize]
            ^ TABLES[2][c[5] as usize]
            ^ TABLES[1][c[6] as usize]
            ^ TABLES[0][c[7] as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u16::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Bitwise reference for [`crc16_x25`]: the executable spec the table
/// kernel is differentially tested against (DESIGN.md §9).
pub fn crc16_x25_ref(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte);
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x8408;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// Appends the two FCS octets (low byte first, per HDLC) to `frame`.
pub fn append_fcs(frame: &mut Vec<u8>) {
    let crc = crc16_x25(frame);
    frame.push((crc & 0xFF) as u8);
    frame.push((crc >> 8) as u8);
}

/// Checks and strips a trailing FCS; returns the frame body on success.
pub fn verify_and_strip_fcs(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 2 {
        return None;
    }
    let (body, fcs) = frame.split_at(frame.len() - 2);
    let expect = crc16_x25(body);
    let got = u16::from(fcs[0]) | (u16::from(fcs[1]) << 8);
    (expect == got).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc16_x25(b"123456789"), 0x906E);
    }

    #[test]
    fn empty_input() {
        // CRC-16/X.25 of the empty string is 0x0000.
        assert_eq!(crc16_x25(b""), 0x0000);
    }

    #[test]
    fn append_then_verify_roundtrips() {
        let mut f = b"the quick brown fox".to_vec();
        append_fcs(&mut f);
        assert_eq!(
            verify_and_strip_fcs(&f),
            Some(b"the quick brown fox".as_ref())
        );
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let mut f = b"payload bytes".to_vec();
        append_fcs(&mut f);
        for bit in 0..f.len() * 8 {
            let mut corrupted = f.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert!(
                verify_and_strip_fcs(&corrupted).is_none(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn short_frames_rejected() {
        assert!(verify_and_strip_fcs(&[]).is_none());
        assert!(verify_and_strip_fcs(&[0x12]).is_none());
    }

    #[test]
    fn sliced_matches_bitwise_reference() {
        // Every length through several chunk widths, pseudo-random content:
        // exercises the slice-by-8 main loop and the Sarwate tail together.
        let mut x: u64 = 0xB504_F333_F9DE_6484;
        let data: Vec<u8> = (0..67)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc16_x25(&data[..len]),
                crc16_x25_ref(&data[..len]),
                "len {len}"
            );
        }
    }
}
