//! Callsigns, SSIDs, and the 7-byte shifted AX.25 address encoding.
//!
//! The paper (§2.3): *"AX.25 addresses look like amateur radio callsigns
//! followed by a 4 bit system ID."* On the wire each address occupies
//! seven octets — six callsign characters (space padded) shifted left one
//! bit, then an SSID octet holding the 4-bit SSID, two reserved bits, the
//! C (command/response) or H (has-been-repeated) bit, and the HDLC
//! extension bit that marks the last address in the field.

use std::fmt;
use std::str::FromStr;

use crate::Ax25Error;

/// A six-character amateur radio callsign (uppercase letters and digits,
/// space padded internally).
///
/// # Examples
///
/// ```
/// use ax25::addr::Callsign;
///
/// let c: Callsign = "N7AKR".parse().unwrap();
/// assert_eq!(c.to_string(), "N7AKR");
/// assert!("toolongcall".parse::<Callsign>().is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Callsign([u8; 6]);

impl Callsign {
    /// Creates a callsign, validating length (1–6) and characters
    /// (uppercase letters and digits; lowercase input is upcased).
    pub fn new(s: &str) -> Result<Callsign, Ax25Error> {
        let s = s.trim();
        if s.is_empty() || s.len() > 6 {
            return Err(Ax25Error::BadCallsign(s.to_string()));
        }
        let mut out = [b' '; 6];
        for (i, ch) in s.chars().enumerate() {
            let up = ch.to_ascii_uppercase();
            if !(up.is_ascii_uppercase() || up.is_ascii_digit()) {
                return Err(Ax25Error::BadCallsign(s.to_string()));
            }
            out[i] = up as u8;
        }
        Ok(Callsign(out))
    }

    /// The space-padded six bytes.
    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }

    /// Builds a callsign from six raw (unshifted) bytes as found on the
    /// wire after decoding.
    ///
    /// Allocation-free on success: the driver's per-frame receive path
    /// peeks at addresses for every frame heard on a promiscuous TNC, so
    /// this must not touch the heap just to reject someone else's traffic.
    pub(crate) fn from_raw(raw: [u8; 6]) -> Result<Callsign, Ax25Error> {
        let mut end = 6;
        while end > 0 && raw[end - 1] == b' ' {
            end -= 1;
        }
        if end == 0 {
            return Err(Ax25Error::BadCallsign(String::new()));
        }
        let mut out = [b' '; 6];
        for (i, &b) in raw[..end].iter().enumerate() {
            let up = b.to_ascii_uppercase();
            if !(up.is_ascii_uppercase() || up.is_ascii_digit()) {
                return Err(Ax25Error::BadCallsign(
                    raw.iter().map(|&b| b as char).collect(),
                ));
            }
            out[i] = up;
        }
        Ok(Callsign(out))
    }
}

impl FromStr for Callsign {
    type Err = Ax25Error;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Callsign::new(s)
    }
}

impl fmt::Display for Callsign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in self.0.iter() {
            if b == b' ' {
                break;
            }
            write!(f, "{}", b as char)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Callsign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A full AX.25 link address: callsign plus 4-bit SSID.
///
/// # Examples
///
/// ```
/// use ax25::addr::Ax25Addr;
///
/// let a: Ax25Addr = "N7AKR-3".parse().unwrap();
/// assert_eq!(a.ssid, 3);
/// assert_eq!(a.to_string(), "N7AKR-3");
/// let b: Ax25Addr = "KB7DZ".parse().unwrap();
/// assert_eq!(b.ssid, 0);
/// assert_eq!(b.to_string(), "KB7DZ");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ax25Addr {
    /// The station callsign.
    pub call: Callsign,
    /// The 4-bit "system ID" distinguishing stations under one callsign.
    pub ssid: u8,
}

impl Ax25Addr {
    /// Creates an address, validating the SSID range.
    pub fn new(call: Callsign, ssid: u8) -> Result<Ax25Addr, Ax25Error> {
        if ssid > 15 {
            return Err(Ax25Error::BadSsid(ssid));
        }
        Ok(Ax25Addr { call, ssid })
    }

    /// Convenience constructor that panics on invalid input; for literals
    /// in tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a valid `CALL` or `CALL-SSID` string.
    pub fn parse_or_panic(s: &str) -> Ax25Addr {
        s.parse().expect("invalid AX.25 address literal")
    }

    /// The conventional CQ/broadcast destination address.
    pub fn broadcast() -> Ax25Addr {
        Ax25Addr {
            call: Callsign::new("QST").expect("QST is valid"),
            ssid: 0,
        }
    }

    /// Encodes into the 7-byte shifted wire form.
    ///
    /// `c_or_h` is the C bit (for destination/source) or H bit (for
    /// digipeaters); `last` sets the HDLC extension bit terminating the
    /// address field.
    pub fn encode(&self, c_or_h: bool, last: bool) -> [u8; 7] {
        let mut out = [0u8; 7];
        for (i, &b) in self.call.as_bytes().iter().enumerate() {
            out[i] = b << 1;
        }
        // SSID octet: C/H bit | reserved (11) | SSID | extension.
        out[6] = (u8::from(c_or_h) << 7) | 0b0110_0000 | (self.ssid << 1) | u8::from(last);
        out
    }

    /// Decodes a 7-byte wire address; returns the address, its C/H bit,
    /// and whether the extension bit marked it as last.
    pub fn decode(raw: &[u8]) -> Result<(Ax25Addr, bool, bool), Ax25Error> {
        if raw.len() < 7 {
            return Err(Ax25Error::Malformed("address shorter than 7 octets"));
        }
        let mut call = [0u8; 6];
        for i in 0..6 {
            if raw[i] & 1 != 0 {
                return Err(Ax25Error::Malformed("extension bit set inside callsign"));
            }
            call[i] = raw[i] >> 1;
        }
        let ssid_octet = raw[6];
        let addr = Ax25Addr {
            call: Callsign::from_raw(call)?,
            ssid: (ssid_octet >> 1) & 0x0F,
        };
        Ok((addr, ssid_octet & 0x80 != 0, ssid_octet & 0x01 != 0))
    }
}

impl FromStr for Ax25Addr {
    type Err = Ax25Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('-') {
            Some((call, ssid)) => {
                let ssid: u8 = ssid
                    .parse()
                    .map_err(|_| Ax25Error::BadCallsign(s.to_string()))?;
                Ax25Addr::new(Callsign::new(call)?, ssid)
            }
            None => Ax25Addr::new(Callsign::new(s)?, 0),
        }
    }
}

impl fmt::Display for Ax25Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ssid == 0 {
            write!(f, "{}", self.call)
        } else {
            write!(f, "{}-{}", self.call, self.ssid)
        }
    }
}

impl fmt::Debug for Ax25Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callsign_validation() {
        assert!(Callsign::new("N7AKR").is_ok());
        assert!(Callsign::new("w1goh").is_ok(), "lowercase is upcased");
        assert!(Callsign::new("").is_err());
        assert!(Callsign::new("TOOLONG7").is_err());
        assert!(Callsign::new("BAD*").is_err());
        assert_eq!(Callsign::new("kg7k").unwrap().to_string(), "KG7K");
    }

    #[test]
    fn addr_parse_and_display() {
        let a: Ax25Addr = "KD7NM-15".parse().unwrap();
        assert_eq!(a.ssid, 15);
        assert_eq!(a.to_string(), "KD7NM-15");
        assert!("KD7NM-16".parse::<Ax25Addr>().is_err());
        assert!("KD7NM-x".parse::<Ax25Addr>().is_err());
        assert_eq!("KD7NM-0".parse::<Ax25Addr>().unwrap().to_string(), "KD7NM");
    }

    #[test]
    fn wire_encoding_shifts_left() {
        let a = Ax25Addr::parse_or_panic("AB1C-5");
        let w = a.encode(true, false);
        assert_eq!(w[0], b'A' << 1);
        assert_eq!(w[1], b'B' << 1);
        assert_eq!(w[2], b'1' << 1);
        assert_eq!(w[3], b'C' << 1);
        assert_eq!(w[4], b' ' << 1);
        assert_eq!(w[5], b' ' << 1);
        // C=1, reserved=11, ssid=0101, ext=0 -> 1110_1010.
        assert_eq!(w[6], 0b1110_1010);
    }

    #[test]
    fn wire_roundtrip_all_flag_combos() {
        let a = Ax25Addr::parse_or_panic("W1GOH-7");
        for c in [false, true] {
            for last in [false, true] {
                let w = a.encode(c, last);
                let (back, got_c, got_last) = Ax25Addr::decode(&w).unwrap();
                assert_eq!(back, a);
                assert_eq!(got_c, c);
                assert_eq!(got_last, last);
            }
        }
    }

    #[test]
    fn decode_rejects_short_and_corrupt() {
        assert!(Ax25Addr::decode(&[0u8; 6]).is_err());
        let a = Ax25Addr::parse_or_panic("N7AKR");
        let mut w = a.encode(false, false);
        w[2] |= 1; // extension bit inside callsign
        assert!(Ax25Addr::decode(&w).is_err());
    }

    #[test]
    fn broadcast_is_qst() {
        assert_eq!(Ax25Addr::broadcast().to_string(), "QST");
    }

    #[test]
    fn ssid_range_enforced() {
        let c = Callsign::new("K3MC").unwrap();
        assert!(Ax25Addr::new(c, 15).is_ok());
        assert!(Ax25Addr::new(c, 16).is_err());
    }

    #[test]
    fn ordering_is_stable_for_map_keys() {
        let a = Ax25Addr::parse_or_panic("AAA");
        let b = Ax25Addr::parse_or_panic("AAB");
        assert!(a < b);
        let a1 = Ax25Addr::parse_or_panic("AAA-1");
        assert!(a < a1);
    }
}
