//! AX.25 v2.0, the standard amateur packet-radio link layer protocol.
//!
//! The paper's whole project is putting this protocol into the Ultrix
//! kernel: AX.25 (Fox, ARRL 1984) is *"a modified version of X.25"* whose
//! link addresses are amateur radio callsigns and whose address field can
//! carry a **source route** of up to eight digipeaters (§1). This crate
//! implements:
//!
//! * [`addr`] — callsigns, SSIDs, and the shifted 7-byte address encoding
//!   with its C/H/extension bits;
//! * [`frame`] — the frame codec: address field (destination, source, up
//!   to [`MAX_DIGIPEATERS`] digipeaters), the modulo-8 control field
//!   (I/S/U frames), the PID byte that the paper's driver demultiplexes on
//!   (§2.2), and the info field;
//! * [`fcs`] — the CRC-CCITT frame check sequence that the KISS TNC
//!   computes on the air side (§2.1: the KISS code "sends and receives
//!   data and calculates the necessary checksums");
//! * [`digipeat`] — the relay-station rule (§1's digipeaters);
//! * [`conn`] — the connected-mode (level 2) state machine used by
//!   terminal users and by the paper's §2.4 application-layer gateway.
//!
//! # Examples
//!
//! ```
//! use ax25::addr::Ax25Addr;
//! use ax25::frame::{Frame, Pid};
//!
//! let src: Ax25Addr = "N7AKR-1".parse().unwrap();
//! let dst: Ax25Addr = "KB7DZ".parse().unwrap();
//! let frame = Frame::ui(dst, src, Pid::Ip, b"packet".to_vec());
//! let bytes = frame.encode();
//! let back = Frame::decode(&bytes).unwrap();
//! assert_eq!(back, frame);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod conn;
pub mod digipeat;
pub mod fcs;
pub mod frame;

pub use addr::{Ax25Addr, Callsign};
pub use frame::{Frame, FrameKind, Pid};

/// AX.25 allows at most eight digipeaters in the address field (§1 of the
/// paper: "the specification of up to eight digipeaters through which a
/// packet is to pass").
pub const MAX_DIGIPEATERS: usize = 8;

/// Default maximum info-field length (AX.25 N1 default, 256 octets).
pub const MAX_INFO_LEN: usize = 256;

/// Errors from AX.25 parsing and encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ax25Error {
    /// A callsign was empty, too long, or contained invalid characters.
    BadCallsign(String),
    /// An SSID was outside 0–15.
    BadSsid(u8),
    /// The frame was too short or structurally malformed.
    Malformed(&'static str),
    /// More than [`MAX_DIGIPEATERS`] digipeaters.
    TooManyDigipeaters(usize),
    /// Info field exceeded the configured maximum.
    InfoTooLong(usize),
    /// The frame check sequence did not verify.
    BadFcs,
}

impl std::fmt::Display for Ax25Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ax25Error::BadCallsign(s) => write!(f, "invalid callsign: {s:?}"),
            Ax25Error::BadSsid(s) => write!(f, "invalid SSID: {s}"),
            Ax25Error::Malformed(what) => write!(f, "malformed frame: {what}"),
            Ax25Error::TooManyDigipeaters(n) => {
                write!(
                    f,
                    "{n} digipeaters exceeds the maximum of {MAX_DIGIPEATERS}"
                )
            }
            Ax25Error::InfoTooLong(n) => write!(f, "info field of {n} octets too long"),
            Ax25Error::BadFcs => write!(f, "frame check sequence mismatch"),
        }
    }
}

impl std::error::Error for Ax25Error {}
