//! The AX.25 frame codec: address field, control field, PID, info.
//!
//! The driver in the paper (§2.2) looks at exactly three things when a
//! frame arrives: the destination address ("its own, or the broadcast
//! address"), the protocol ID field (IP goes to the IP input queue), and —
//! for everything else — the raw frame is diverted to a tty queue. This
//! module gives those fields first-class types.

use std::fmt;

use sim::pktbuf::ByteSink;
use sim::wire::Codec;

use crate::addr::Ax25Addr;
use crate::{Ax25Error, MAX_DIGIPEATERS, MAX_INFO_LEN};

/// One digipeater entry in the source route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digipeater {
    /// The relay station's address.
    pub addr: Ax25Addr,
    /// The H ("has been repeated") bit.
    pub repeated: bool,
}

impl Digipeater {
    /// A not-yet-traversed digipeater entry.
    pub fn pending(addr: Ax25Addr) -> Digipeater {
        Digipeater {
            addr,
            repeated: false,
        }
    }
}

/// The layer-3 protocol identifier carried by I and UI frames.
///
/// The values are the standard AX.25 PID assignments; `Ip` and `Arp` are
/// the two the paper's driver dispatches on, `NetRom` is the backbone
/// protocol its §2.4 mentions, and `Text` (no layer 3) is what plain
/// keyboard-to-keyboard users send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pid {
    /// 0xF0 — no layer 3 (keyboard text, BBS traffic).
    Text,
    /// 0xCC — ARPA Internet Protocol.
    Ip,
    /// 0xCD — ARPA Address Resolution Protocol.
    Arp,
    /// 0xCF — NET/ROM network layer.
    NetRom,
    /// 0x06 — RFC 1144 Van Jacobson compressed TCP/IP.
    CompressedTcp,
    /// 0x07 — RFC 1144 uncompressed TCP/IP (decompressor refresh).
    UncompressedTcp,
    /// Any other assignment, carried through opaquely.
    Other(u8),
}

impl Pid {
    /// Wire value.
    pub fn code(self) -> u8 {
        match self {
            Pid::Text => 0xF0,
            Pid::Ip => 0xCC,
            Pid::Arp => 0xCD,
            Pid::NetRom => 0xCF,
            Pid::CompressedTcp => 0x06,
            Pid::UncompressedTcp => 0x07,
            Pid::Other(v) => v,
        }
    }

    /// Decodes a wire value.
    pub fn from_code(v: u8) -> Pid {
        match v {
            0xF0 => Pid::Text,
            0xCC => Pid::Ip,
            0xCD => Pid::Arp,
            0xCF => Pid::NetRom,
            0x06 => Pid::CompressedTcp,
            0x07 => Pid::UncompressedTcp,
            other => Pid::Other(other),
        }
    }
}

/// The decoded control field (modulo-8 operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Information frame: sequenced connected-mode data.
    I {
        /// Send sequence number N(S).
        ns: u8,
        /// Receive sequence number N(R).
        nr: u8,
        /// Poll bit.
        poll: bool,
    },
    /// Receive Ready: acknowledgement up to N(R)-1.
    Rr {
        /// Receive sequence number N(R).
        nr: u8,
        /// Poll/final bit.
        pf: bool,
    },
    /// Receive Not Ready: flow control off.
    Rnr {
        /// Receive sequence number N(R).
        nr: u8,
        /// Poll/final bit.
        pf: bool,
    },
    /// Reject: request retransmission from N(R).
    Rej {
        /// Receive sequence number N(R).
        nr: u8,
        /// Poll/final bit.
        pf: bool,
    },
    /// Set Asynchronous Balanced Mode — connection request.
    Sabm {
        /// Poll bit.
        poll: bool,
    },
    /// Disconnect request.
    Disc {
        /// Poll bit.
        poll: bool,
    },
    /// Unnumbered Acknowledge.
    Ua {
        /// Final bit.
        fin: bool,
    },
    /// Disconnected Mode — refusal / not connected.
    Dm {
        /// Final bit.
        fin: bool,
    },
    /// Frame Reject (protocol error report).
    Frmr {
        /// Final bit.
        fin: bool,
    },
    /// Unnumbered Information — the datagram frame carrying IP (§2.2).
    Ui {
        /// Poll/final bit.
        pf: bool,
    },
}

impl FrameKind {
    /// True for the two kinds that carry a PID and info field.
    pub fn has_pid(self) -> bool {
        matches!(self, FrameKind::I { .. } | FrameKind::Ui { .. })
    }

    /// Encodes to the control octet.
    pub fn encode(self) -> u8 {
        let pf = |b: bool| u8::from(b) << 4;
        match self {
            FrameKind::I { ns, nr, poll } => (nr << 5) | pf(poll) | (ns << 1),
            FrameKind::Rr { nr, pf: p } => (nr << 5) | pf(p) | 0x01,
            FrameKind::Rnr { nr, pf: p } => (nr << 5) | pf(p) | 0x05,
            FrameKind::Rej { nr, pf: p } => (nr << 5) | pf(p) | 0x09,
            FrameKind::Sabm { poll } => 0x2F | pf(poll),
            FrameKind::Disc { poll } => 0x43 | pf(poll),
            FrameKind::Ua { fin } => 0x63 | pf(fin),
            FrameKind::Dm { fin } => 0x0F | pf(fin),
            FrameKind::Frmr { fin } => 0x87 | pf(fin),
            FrameKind::Ui { pf: p } => 0x03 | pf(p),
        }
    }

    /// Decodes a control octet.
    pub fn decode(ctl: u8) -> Result<FrameKind, Ax25Error> {
        let pf = ctl & 0x10 != 0;
        if ctl & 0x01 == 0 {
            return Ok(FrameKind::I {
                ns: (ctl >> 1) & 0x07,
                nr: ctl >> 5,
                poll: pf,
            });
        }
        if ctl & 0x03 == 0x01 {
            let nr = ctl >> 5;
            return match (ctl >> 2) & 0x03 {
                0 => Ok(FrameKind::Rr { nr, pf }),
                1 => Ok(FrameKind::Rnr { nr, pf }),
                2 => Ok(FrameKind::Rej { nr, pf }),
                _ => Err(Ax25Error::Malformed("SREJ is not used in AX.25 v2.0")),
            };
        }
        // Unnumbered: mask out the P/F bit.
        match ctl & !0x10 {
            0x2F => Ok(FrameKind::Sabm { poll: pf }),
            0x43 => Ok(FrameKind::Disc { poll: pf }),
            0x63 => Ok(FrameKind::Ua { fin: pf }),
            0x0F => Ok(FrameKind::Dm { fin: pf }),
            0x87 => Ok(FrameKind::Frmr { fin: pf }),
            0x03 => Ok(FrameKind::Ui { pf }),
            _ => Err(Ax25Error::Malformed("unknown U-frame control octet")),
        }
    }
}

/// A complete AX.25 frame (without FCS — see [`crate::fcs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Destination link address.
    pub dest: Ax25Addr,
    /// Source link address.
    pub source: Ax25Addr,
    /// Source-routed digipeater path, at most [`MAX_DIGIPEATERS`] entries.
    pub digipeaters: Vec<Digipeater>,
    /// Command (true) / response (false), from the C bits.
    pub command: bool,
    /// The control field.
    pub kind: FrameKind,
    /// PID; present only when [`FrameKind::has_pid`].
    pub pid: Option<Pid>,
    /// The info field; non-empty only for I/UI (and FRMR diagnostics).
    pub info: Vec<u8>,
}

impl Frame {
    /// Builds a UI datagram frame — the workhorse of the paper's gateway:
    /// every encapsulated IP packet travels as a UI frame with [`Pid::Ip`].
    pub fn ui(dest: Ax25Addr, source: Ax25Addr, pid: Pid, info: Vec<u8>) -> Frame {
        Frame {
            dest,
            source,
            digipeaters: Vec::new(),
            command: true,
            kind: FrameKind::Ui { pf: false },
            pid: Some(pid),
            info,
        }
    }

    /// Builds an unnumbered control frame (SABM/DISC/UA/DM/FRMR).
    pub fn control(dest: Ax25Addr, source: Ax25Addr, command: bool, kind: FrameKind) -> Frame {
        Frame {
            dest,
            source,
            digipeaters: Vec::new(),
            command,
            kind,
            pid: None,
            info: Vec::new(),
        }
    }

    /// Sets the digipeater path (builder style).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_DIGIPEATERS`] entries are given.
    pub fn via(mut self, path: &[Ax25Addr]) -> Frame {
        assert!(path.len() <= MAX_DIGIPEATERS, "too many digipeaters");
        self.digipeaters = path.iter().copied().map(Digipeater::pending).collect();
        self
    }

    /// True once every digipeater hop has been traversed (or there are
    /// none): only then may the destination accept the frame.
    pub fn fully_repeated(&self) -> bool {
        self.digipeaters.iter().all(|d| d.repeated)
    }

    /// Total encoded length in octets (without FCS).
    pub fn encoded_len(&self) -> usize {
        14 + 7 * self.digipeaters.len() + 1 + usize::from(self.kind.has_pid()) + self.info.len()
    }

    /// Encodes the frame (KISS payload form: no flags, no FCS).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Appends the wire encoding to any [`ByteSink`] — a pooled
    /// [`PacketBuf`](sim::PacketBuf) on the datapath, a `Vec<u8>` in tests.
    pub fn encode_into(&self, out: &mut impl ByteSink) {
        // C bits: command sets dest-C, response sets source-C (AX.25 v2).
        let last_in_field = self.digipeaters.is_empty();
        out.put_slice(&self.dest.encode(self.command, false));
        out.put_slice(&self.source.encode(!self.command, last_in_field));
        for (i, d) in self.digipeaters.iter().enumerate() {
            let last = i == self.digipeaters.len() - 1;
            out.put_slice(&d.addr.encode(d.repeated, last));
        }
        out.put(self.kind.encode());
        if self.kind.has_pid() {
            out.put(self.pid.unwrap_or(Pid::Text).code());
        }
        out.put_slice(&self.info);
    }

    /// Decodes a frame from KISS payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<Frame, Ax25Error> {
        if bytes.len() < 15 {
            return Err(Ax25Error::Malformed("frame shorter than minimum"));
        }
        let (dest, dest_c, dest_last) = Ax25Addr::decode(&bytes[0..7])?;
        if dest_last {
            return Err(Ax25Error::Malformed("address field ends at destination"));
        }
        let (source, src_c, mut last) = Ax25Addr::decode(&bytes[7..14])?;
        let mut pos = 14;
        let mut digipeaters = Vec::new();
        while !last {
            if digipeaters.len() == MAX_DIGIPEATERS {
                return Err(Ax25Error::TooManyDigipeaters(MAX_DIGIPEATERS + 1));
            }
            if bytes.len() < pos + 7 {
                return Err(Ax25Error::Malformed("truncated digipeater list"));
            }
            let (addr, repeated, is_last) = Ax25Addr::decode(&bytes[pos..pos + 7])?;
            digipeaters.push(Digipeater { addr, repeated });
            pos += 7;
            last = is_last;
        }
        if bytes.len() <= pos {
            return Err(Ax25Error::Malformed("missing control field"));
        }
        let kind = FrameKind::decode(bytes[pos])?;
        pos += 1;
        let pid = if kind.has_pid() {
            if bytes.len() <= pos {
                return Err(Ax25Error::Malformed("missing PID"));
            }
            let p = Pid::from_code(bytes[pos]);
            pos += 1;
            Some(p)
        } else {
            None
        };
        let info = bytes[pos..].to_vec();
        if info.len() > MAX_INFO_LEN {
            return Err(Ax25Error::InfoTooLong(info.len()));
        }
        // AX.25 v2: command iff dest C set and source C clear; older v1
        // frames set both the same, treated as commands here.
        let command = dest_c || !src_c;
        Ok(Frame {
            dest,
            source,
            digipeaters,
            command,
            kind,
            pid,
            info,
        })
    }
}

impl Codec for Frame {
    type Error = Ax25Error;

    fn encode_into(&self, out: &mut impl ByteSink) {
        Frame::encode_into(self, out);
    }

    fn decode(bytes: &[u8]) -> Result<Frame, Ax25Error> {
        Frame::decode(bytes)
    }
}

/// The header fields of an AX.25 frame, validated without allocating.
///
/// The paper's driver inspects every frame heard on the channel — under a
/// promiscuous TNC that is *every* frame on the air (§3) — but acts on only
/// the few addressed to it. [`FrameHeader::peek`] performs the complete
/// structural validation of [`Frame::decode`] (addresses, digipeater list,
/// control octet, PID presence, info length) while touching no heap memory,
/// so the interrupt-side filter can drop someone else's traffic for free
/// and pay for a full decode only on frames it will actually deliver.
///
/// # Examples
///
/// ```
/// use ax25::addr::Ax25Addr;
/// use ax25::frame::{Frame, FrameHeader, Pid};
///
/// let dst = Ax25Addr::parse_or_panic("KB7DZ");
/// let src = Ax25Addr::parse_or_panic("N7AKR-1");
/// let bytes = Frame::ui(dst, src, Pid::Ip, vec![1, 2, 3]).encode();
///
/// let hdr = FrameHeader::peek(&bytes).unwrap();
/// assert_eq!(hdr.dest, dst);
/// assert_eq!(hdr.pid, Some(Pid::Ip));
/// assert!(hdr.fully_repeated);
/// assert_eq!(&bytes[hdr.info_start..], &[1, 2, 3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Destination link address.
    pub dest: Ax25Addr,
    /// Source link address.
    pub source: Ax25Addr,
    /// Command (true) / response (false), from the C bits.
    pub command: bool,
    /// The decoded control field.
    pub kind: FrameKind,
    /// PID; present only when [`FrameKind::has_pid`].
    pub pid: Option<Pid>,
    /// Number of digipeaters in the address field.
    pub num_digipeaters: usize,
    /// True once every digipeater hop has been traversed (or there are
    /// none): only then may the destination accept the frame.
    pub fully_repeated: bool,
    /// Byte offset where the info field begins (equals `bytes.len()` when
    /// the frame carries no info).
    pub info_start: usize,
}

impl FrameHeader {
    /// Validates `bytes` as a complete AX.25 frame and returns its header
    /// fields, without allocating.
    ///
    /// `peek(b).is_ok()` exactly when [`Frame::decode`]`(b).is_ok()`, and
    /// on success the fields agree with the decoded frame — so a receive
    /// path may classify (bad frame / not repeated / not for us) on the
    /// peek alone and reserve the allocating decode for accepted frames.
    pub fn peek(bytes: &[u8]) -> Result<FrameHeader, Ax25Error> {
        if bytes.len() < 15 {
            return Err(Ax25Error::Malformed("frame shorter than minimum"));
        }
        let (dest, dest_c, dest_last) = Ax25Addr::decode(&bytes[0..7])?;
        if dest_last {
            return Err(Ax25Error::Malformed("address field ends at destination"));
        }
        let (source, src_c, mut last) = Ax25Addr::decode(&bytes[7..14])?;
        let mut pos = 14;
        let mut num_digipeaters = 0;
        let mut fully_repeated = true;
        while !last {
            if num_digipeaters == MAX_DIGIPEATERS {
                return Err(Ax25Error::TooManyDigipeaters(MAX_DIGIPEATERS + 1));
            }
            if bytes.len() < pos + 7 {
                return Err(Ax25Error::Malformed("truncated digipeater list"));
            }
            let (_, repeated, is_last) = Ax25Addr::decode(&bytes[pos..pos + 7])?;
            fully_repeated &= repeated;
            num_digipeaters += 1;
            pos += 7;
            last = is_last;
        }
        if bytes.len() <= pos {
            return Err(Ax25Error::Malformed("missing control field"));
        }
        let kind = FrameKind::decode(bytes[pos])?;
        pos += 1;
        let pid = if kind.has_pid() {
            if bytes.len() <= pos {
                return Err(Ax25Error::Malformed("missing PID"));
            }
            let p = Pid::from_code(bytes[pos]);
            pos += 1;
            Some(p)
        } else {
            None
        };
        if bytes.len() - pos > MAX_INFO_LEN {
            return Err(Ax25Error::InfoTooLong(bytes.len() - pos));
        }
        let command = dest_c || !src_c;
        Ok(FrameHeader {
            dest,
            source,
            command,
            kind,
            pid,
            num_digipeaters,
            fully_repeated,
            info_start: pos,
        })
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}>{}", self.source, self.dest)?;
        for d in &self.digipeaters {
            write!(f, ",{}{}", d.addr, if d.repeated { "*" } else { "" })?;
        }
        write!(f, " {:?}", self.kind)?;
        if let Some(pid) = self.pid {
            write!(f, " pid={pid:?}")?;
        }
        if !self.info.is_empty() {
            write!(f, " [{}B]", self.info.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ax25Addr {
        Ax25Addr::parse_or_panic(s)
    }

    #[test]
    fn ui_frame_roundtrip() {
        let f = Frame::ui(a("KB7DZ"), a("N7AKR-1"), Pid::Ip, vec![1, 2, 3]);
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn digipeater_path_roundtrip() {
        let f = Frame::ui(a("KB7DZ"), a("N7AKR"), Pid::Text, b"hi".to_vec()).via(&[
            a("WA6BEV-1"),
            a("K3MC-2"),
            a("KD7NM-3"),
        ]);
        let bytes = f.encode();
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back.digipeaters.len(), 3);
        assert_eq!(back.digipeaters[1].addr, a("K3MC-2"));
        assert!(!back.fully_repeated());
        assert_eq!(back, f);
    }

    #[test]
    fn max_digipeaters_roundtrip() {
        let path: Vec<Ax25Addr> = (0..8).map(|i| a(&format!("D{i}"))).collect();
        let f = Frame::ui(a("B"), a("A"), Pid::Text, vec![]).via(&path);
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back.digipeaters.len(), 8);
    }

    #[test]
    #[should_panic]
    fn nine_digipeaters_panics() {
        let path: Vec<Ax25Addr> = (0..9).map(|i| a(&format!("D{i}"))).collect();
        let _ = Frame::ui(a("B"), a("A"), Pid::Text, vec![]).via(&path);
    }

    #[test]
    fn control_field_all_kinds_roundtrip() {
        let kinds = [
            FrameKind::I {
                ns: 5,
                nr: 3,
                poll: true,
            },
            FrameKind::I {
                ns: 0,
                nr: 7,
                poll: false,
            },
            FrameKind::Rr { nr: 2, pf: false },
            FrameKind::Rnr { nr: 6, pf: true },
            FrameKind::Rej { nr: 1, pf: true },
            FrameKind::Sabm { poll: true },
            FrameKind::Disc { poll: false },
            FrameKind::Ua { fin: true },
            FrameKind::Dm { fin: false },
            FrameKind::Frmr { fin: true },
            FrameKind::Ui { pf: false },
        ];
        for k in kinds {
            assert_eq!(FrameKind::decode(k.encode()).unwrap(), k, "{k:?}");
        }
    }

    #[test]
    fn pid_codes_roundtrip() {
        for p in [
            Pid::Text,
            Pid::Ip,
            Pid::Arp,
            Pid::NetRom,
            Pid::CompressedTcp,
            Pid::UncompressedTcp,
            Pid::Other(0x08),
        ] {
            assert_eq!(Pid::from_code(p.code()), p);
        }
        // The RFC 1144 assignments must decode to the named variants, not
        // fall through to `Other`.
        assert_eq!(Pid::from_code(0x06), Pid::CompressedTcp);
        assert_eq!(Pid::from_code(0x07), Pid::UncompressedTcp);
    }

    #[test]
    fn unknown_pid_frames_decode_and_roundtrip() {
        // An unassigned PID must carry through opaquely — the driver
        // diverts such frames to the §2.4 tty queue, so decode can never
        // panic or reject on the PID byte alone.
        for code in [0x00u8, 0x05, 0x42, 0xFE] {
            let f = Frame::ui(a("KB7DZ"), a("N7AKR"), Pid::from_code(code), b"??".to_vec());
            let bytes = f.encode();
            let back = Frame::decode(&bytes).expect("unknown PID decodes");
            assert_eq!(back.pid.map(Pid::code), Some(code));
            assert_eq!(back.info, b"??");
            let hdr = FrameHeader::peek(&bytes).expect("peek too");
            assert_eq!(hdr.pid.map(Pid::code), Some(code));
        }
    }

    #[test]
    fn command_response_bits() {
        let cmd = Frame::control(a("B"), a("A"), true, FrameKind::Sabm { poll: true });
        let back = Frame::decode(&cmd.encode()).unwrap();
        assert!(back.command);

        let rsp = Frame::control(a("A"), a("B"), false, FrameKind::Ua { fin: true });
        let back = Frame::decode(&rsp.encode()).unwrap();
        assert!(!back.command);
    }

    #[test]
    fn s_frames_have_no_pid_or_info() {
        let f = Frame::control(a("B"), a("A"), false, FrameKind::Rr { nr: 4, pf: true });
        let bytes = f.encode();
        assert_eq!(bytes.len(), 15);
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back.pid, None);
        assert!(back.info.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Frame::decode(&[]).is_err());
        assert!(Frame::decode(&[0u8; 10]).is_err());
        // 15 zero bytes: address extension bits are zero -> endless address
        // field -> truncated digipeater list.
        assert!(Frame::decode(&[0u8; 15]).is_err());
    }

    #[test]
    fn decode_rejects_oversize_info() {
        let mut f = Frame::ui(a("B"), a("A"), Pid::Ip, vec![0u8; MAX_INFO_LEN]);
        assert!(Frame::decode(&f.encode()).is_ok());
        f.info.push(0);
        assert!(matches!(
            Frame::decode(&f.encode()),
            Err(Ax25Error::InfoTooLong(_))
        ));
    }

    #[test]
    fn encode_into_matches_encode() {
        let f = Frame::ui(a("KB7DZ"), a("N7AKR-1"), Pid::Ip, vec![9; 40]).via(&[a("K3MC-2")]);
        let mut sink = sim::PacketBuf::new();
        f.encode_into(&mut sink);
        assert_eq!(sink.as_slice(), &f.encode()[..]);
        // Codec trait surface agrees with the inherent methods.
        assert_eq!(Codec::encode(&f), f.encode());
        assert_eq!(<Frame as Codec>::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn peek_agrees_with_decode_on_valid_frames() {
        let mut f = Frame::ui(a("KB7DZ"), a("N7AKR-1"), Pid::Ip, vec![1, 2, 3])
            .via(&[a("WA6BEV-1"), a("K3MC-2")]);
        f.digipeaters[0].repeated = true;
        let bytes = f.encode();
        let hdr = FrameHeader::peek(&bytes).unwrap();
        assert_eq!(hdr.dest, f.dest);
        assert_eq!(hdr.source, f.source);
        assert_eq!(hdr.command, f.command);
        assert_eq!(hdr.kind, f.kind);
        assert_eq!(hdr.pid, f.pid);
        assert_eq!(hdr.num_digipeaters, 2);
        assert_eq!(hdr.fully_repeated, f.fully_repeated());
        assert_eq!(&bytes[hdr.info_start..], &f.info[..]);

        f.digipeaters[1].repeated = true;
        let hdr = FrameHeader::peek(&f.encode()).unwrap();
        assert!(hdr.fully_repeated);
    }

    #[test]
    fn peek_rejects_what_decode_rejects() {
        for bad in [&[][..], &[0u8; 10], &[0u8; 15]] {
            assert!(FrameHeader::peek(bad).is_err());
            assert!(Frame::decode(bad).is_err());
        }
        let mut f = Frame::ui(a("B"), a("A"), Pid::Ip, vec![0u8; MAX_INFO_LEN]);
        assert!(FrameHeader::peek(&f.encode()).is_ok());
        f.info.push(0);
        assert!(matches!(
            FrameHeader::peek(&f.encode()),
            Err(Ax25Error::InfoTooLong(_))
        ));
    }

    #[test]
    fn peek_control_frame_has_no_pid_and_empty_info() {
        let f = Frame::control(a("B"), a("A"), false, FrameKind::Rr { nr: 4, pf: true });
        let bytes = f.encode();
        let hdr = FrameHeader::peek(&bytes).unwrap();
        assert_eq!(hdr.pid, None);
        assert_eq!(hdr.info_start, bytes.len());
        assert!(!hdr.command);
    }

    #[test]
    fn display_shows_path_and_repeats() {
        let mut f = Frame::ui(a("KB7DZ"), a("N7AKR"), Pid::Ip, vec![0; 4]).via(&[a("K3MC")]);
        f.digipeaters[0].repeated = true;
        let s = f.to_string();
        assert!(s.contains("N7AKR>KB7DZ"), "{s}");
        assert!(s.contains("K3MC*"), "{s}");
        assert!(s.contains("[4B]"), "{s}");
    }
}
