//! An ICMP echo workload with RTT recording.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::StackAction;
use sim::stats::Latency;
use sim::{SimDuration, SimTime};

/// Results of a ping run.
#[derive(Debug, Default)]
pub struct PingReport {
    /// Echo requests sent.
    pub sent: u32,
    /// Replies received.
    pub received: u32,
    /// Round-trip times of received replies.
    pub rtts: Latency,
}

impl PingReport {
    /// Fraction of requests answered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            f64::from(self.received) / f64::from(self.sent)
        }
    }
}

/// A scripted `ping` process.
pub struct Pinger {
    dst: Ipv4Addr,
    id: u16,
    count: u32,
    interval: SimDuration,
    payload_len: usize,
    start_delay: SimDuration,
    next_at: Option<SimTime>,
    next_seq: u16,
    in_flight: HashMap<u16, SimTime>,
    report: crate::Shared<PingReport>,
}

impl Pinger {
    /// Pings `dst` `count` times, one request every `interval`, with
    /// `payload_len` data bytes; `id` disambiguates concurrent pingers.
    pub fn new(
        dst: Ipv4Addr,
        id: u16,
        count: u32,
        interval: SimDuration,
        payload_len: usize,
    ) -> Pinger {
        Pinger {
            dst,
            id,
            count,
            interval,
            payload_len,
            start_delay: SimDuration::ZERO,
            next_at: None,
            next_seq: 1,
            in_flight: HashMap::new(),
            report: crate::shared(PingReport::default()),
        }
    }

    /// Delays the first request by `delay` after start. Staggered starts
    /// keep a many-pinger scenario (E15's mesh) from synchronizing every
    /// station's first CSMA contention on the same instant.
    pub fn delayed(mut self, delay: SimDuration) -> Pinger {
        self.start_delay = delay;
        self
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<PingReport> {
        self.report.clone()
    }
}

impl App for Pinger {
    fn on_start(&mut self, now: SimTime, _host: &mut Host) {
        self.next_at = Some(now + self.start_delay);
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        while let Some(at) = self.next_at {
            if at > now {
                break;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            host.ping(now, self.dst, self.id, seq, self.payload_len);
            self.in_flight.insert(seq, now);
            let mut r = self.report.borrow_mut();
            r.sent += 1;
            self.next_at = if r.sent < self.count {
                Some(at + self.interval)
            } else {
                None
            };
        }
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, _host: &mut Host) {
        if let StackAction::PingReply { id, seq, .. } = event {
            if *id == self.id {
                if let Some(sent_at) = self.in_flight.remove(seq) {
                    let mut r = self.report.borrow_mut();
                    r.received += 1;
                    r.rtts.record(now.saturating_since(sent_at));
                }
            }
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.next_at
    }
}
