//! A file transfer in the spirit of FTP (single-connection GET).
//!
//! §2.3: "Since then we have used the gateway for file transfer…". The
//! protocol here is a deliberately simple GET: the client sends
//! `GET <name>\n`, the server answers `OK <len>\n` followed by the file
//! bytes and closes. File contents are a deterministic pattern seeded by
//! the name, so the client can verify every byte.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::{SockId, StackAction};
use sim::{SimDuration, SimTime};

/// Deterministic file contents: byte `i` of file `name`.
fn file_byte(name: &str, i: usize) -> u8 {
    let seed: u32 = name.bytes().fold(0x811C9DC5u32, |h, b| {
        (h ^ u32::from(b)).wrapping_mul(16777619)
    });
    ((seed as usize).wrapping_add(i.wrapping_mul(131)) % 251) as u8
}

/// File server counters.
#[derive(Debug, Default)]
pub struct FileServerReport {
    /// GETs served.
    pub serves: u64,
    /// Octets shipped.
    pub bytes_sent: u64,
    /// Requests for unknown files.
    pub not_found: u64,
}

/// The file server: name → size catalogue.
pub struct FileServer {
    port: u16,
    catalogue: HashMap<String, usize>,
    sessions: HashMap<SockId, Vec<u8>>,
    /// Sends in progress: socket → (name, next offset, size).
    sending: HashMap<SockId, (String, usize, usize)>,
    report: crate::Shared<FileServerReport>,
}

impl FileServer {
    /// Creates a server for `port` with the given catalogue.
    pub fn new(port: u16, files: &[(&str, usize)]) -> FileServer {
        FileServer {
            port,
            catalogue: files.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
            sessions: HashMap::new(),
            sending: HashMap::new(),
            report: crate::shared(FileServerReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<FileServerReport> {
        self.report.clone()
    }

    fn pump_send(&mut self, now: SimTime, sock: SockId, host: &mut Host) {
        let Some((name, offset, size)) = self.sending.get_mut(&sock) else {
            return;
        };
        while *offset < *size {
            let cap = host.stack.tcp_send_capacity(sock);
            if cap == 0 {
                return;
            }
            let n = cap.min(*size - *offset).min(2048);
            let chunk: Vec<u8> = (*offset..*offset + n).map(|i| file_byte(name, i)).collect();
            let accepted = host.tcp_send(now, sock, &chunk);
            *offset += accepted;
            self.report.borrow_mut().bytes_sent += accepted as u64;
            if accepted == 0 {
                return;
            }
        }
        self.sending.remove(&sock);
        host.tcp_close(now, sock);
    }
}

impl App for FileServer {
    fn on_start(&mut self, _now: SimTime, host: &mut Host) {
        host.stack.tcp_listen(self.port).expect("ftp port");
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpAccepted { sock, .. } => {
                self.sessions.insert(*sock, Vec::new());
            }
            StackAction::TcpReadable(sock) => {
                let data = host.tcp_recv(now, *sock);
                let Some(buf) = self.sessions.get_mut(sock) else {
                    return;
                };
                buf.extend_from_slice(&data);
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line).trim().to_string();
                    if let Some(name) = line.strip_prefix("GET ") {
                        match self.catalogue.get(name) {
                            Some(&size) => {
                                self.report.borrow_mut().serves += 1;
                                let header = format!("OK {size}\n");
                                host.tcp_send(now, *sock, header.as_bytes());
                                self.sending.insert(*sock, (name.to_string(), 0, size));
                                self.pump_send(now, *sock, host);
                            }
                            None => {
                                self.report.borrow_mut().not_found += 1;
                                host.tcp_send(now, *sock, b"ERR no such file\n");
                                host.tcp_close(now, *sock);
                            }
                        }
                    }
                }
            }
            StackAction::TcpPeerClosed(sock)
                if self.sessions.remove(sock).is_some() && !self.sending.contains_key(sock) =>
            {
                host.tcp_close(now, *sock);
            }
            StackAction::TcpClosed { sock, .. } => {
                self.sessions.remove(sock);
                self.sending.remove(sock);
            }
            _ => {}
        }
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        let socks: Vec<SockId> = self.sending.keys().copied().collect();
        for sock in socks {
            self.pump_send(now, sock, host);
        }
    }
}

/// Results of one GET.
#[derive(Debug, Default)]
pub struct FileClientReport {
    /// Announced size from the OK header.
    pub announced: usize,
    /// Octets of body received.
    pub received: usize,
    /// Every byte matched the expected pattern.
    pub intact: bool,
    /// Transfer completed (EOF after full body).
    pub done: bool,
    /// Server said "no such file".
    pub not_found: bool,
    /// When the connect was issued.
    pub started_at: Option<SimTime>,
    /// When the transfer completed.
    pub finished_at: Option<SimTime>,
}

impl FileClientReport {
    /// Transfer duration, if complete.
    pub fn duration(&self) -> Option<SimDuration> {
        Some(self.finished_at?.saturating_since(self.started_at?))
    }
}

/// A one-file GET client.
pub struct FileClient {
    dst: Ipv4Addr,
    port: u16,
    name: String,
    sock: Option<SockId>,
    buf: Vec<u8>,
    header_done: bool,
    mismatch: bool,
    report: crate::Shared<FileClientReport>,
}

impl FileClient {
    /// Fetches `name` from `dst:port`.
    pub fn new(dst: Ipv4Addr, port: u16, name: &str) -> FileClient {
        FileClient {
            dst,
            port,
            name: name.to_string(),
            sock: None,
            buf: Vec::new(),
            header_done: false,
            mismatch: false,
            report: crate::shared(FileClientReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<FileClientReport> {
        self.report.clone()
    }
}

impl App for FileClient {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.report.borrow_mut().started_at = Some(now);
        self.sock = host.tcp_connect(now, self.dst, self.port).ok();
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpConnected(sock) if Some(*sock) == self.sock => {
                let req = format!("GET {}\n", self.name);
                host.tcp_send(now, *sock, req.as_bytes());
            }
            StackAction::TcpReadable(sock) if Some(*sock) == self.sock => {
                let data = host.tcp_recv(now, *sock);
                self.buf.extend_from_slice(&data);
                if !self.header_done {
                    if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = self.buf.drain(..=pos).collect();
                        let line = String::from_utf8_lossy(&line).trim().to_string();
                        self.header_done = true;
                        if let Some(size) = line.strip_prefix("OK ") {
                            self.report.borrow_mut().announced = size.parse().unwrap_or(0);
                        } else {
                            self.report.borrow_mut().not_found = true;
                        }
                    }
                }
                if self.header_done {
                    let mut r = self.report.borrow_mut();
                    for b in self.buf.drain(..) {
                        if b != file_byte(&self.name, r.received) {
                            self.mismatch = true;
                        }
                        r.received += 1;
                    }
                }
            }
            StackAction::TcpPeerClosed(sock) if Some(*sock) == self.sock => {
                host.tcp_close(now, *sock);
                let mut r = self.report.borrow_mut();
                r.finished_at = Some(now);
                r.intact = !self.mismatch && r.received == r.announced;
                r.done = r.intact && r.announced > 0;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_bytes_are_deterministic_and_name_dependent() {
        assert_eq!(file_byte("a.txt", 5), file_byte("a.txt", 5));
        let a: Vec<u8> = (0..64).map(|i| file_byte("a.txt", i)).collect();
        let b: Vec<u8> = (0..64).map(|i| file_byte("b.txt", i)).collect();
        assert_ne!(a, b);
    }
}
