//! A file transfer in the spirit of FTP (single-connection GET).
//!
//! §2.3: "Since then we have used the gateway for file transfer…". The
//! protocol here is a deliberately simple GET: the client sends
//! `GET <name>\n`, the server answers `OK <len>\n` followed by the file
//! bytes and closes. File contents are a deterministic pattern seeded by
//! the name, so the client can verify every byte.
//!
//! Both ends are [`SocketProgram`]s (DESIGN.md §10): the server accepts on
//! ACCEPTABLE edges and pumps its send queue from `on_tick` (exactly the
//! cadence the raw version pumped from `App::poll`); the client sends its
//! GET on the first WRITABLE edge and finishes on EOF.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::StackAction;
use sim::{SimDuration, SimTime};
use socket::{Readiness, SocketHandle};

use crate::sockapp::{SockApp, SockCtx, SocketProgram};

/// Deterministic file contents: byte `i` of file `name`. Public so
/// out-of-crate clients (the `workload` fleet) can verify transfers
/// byte-for-byte without carrying the file.
pub fn file_byte(name: &str, i: usize) -> u8 {
    let seed: u32 = name.bytes().fold(0x811C9DC5u32, |h, b| {
        (h ^ u32::from(b)).wrapping_mul(16777619)
    });
    ((seed as usize).wrapping_add(i.wrapping_mul(131)) % 251) as u8
}

/// File server counters.
#[derive(Debug, Default)]
pub struct FileServerReport {
    /// GETs served.
    pub serves: u64,
    /// Octets shipped.
    pub bytes_sent: u64,
    /// Requests for unknown files.
    pub not_found: u64,
}

/// The socket program behind [`FileServer`].
struct FileServerProgram {
    port: u16,
    listener: Option<SocketHandle>,
    catalogue: HashMap<String, usize>,
    sessions: HashMap<SocketHandle, Vec<u8>>,
    /// Sends in progress, FIFO: (handle, name, next offset, size).
    /// A `Vec` rather than a map so the `on_tick` pump visits sessions
    /// in accept order — map iteration order would differ run to run
    /// and break the sharded engine's digest-equivalence contract once
    /// several transfers overlap.
    sending: Vec<(SocketHandle, String, usize, usize)>,
    report: crate::Shared<FileServerReport>,
}

impl FileServerProgram {
    fn pump_send(&mut self, now: SimTime, h: SocketHandle, cx: &mut SockCtx<'_>) {
        let Some((_, name, offset, size)) = self.sending.iter_mut().find(|(s, ..)| *s == h) else {
            return;
        };
        while *offset < *size {
            let cap = cx.host.sock_send_capacity(h);
            if cap == 0 {
                return;
            }
            let n = cap.min(*size - *offset).min(2048);
            let chunk: Vec<u8> = (*offset..*offset + n).map(|i| file_byte(name, i)).collect();
            let accepted = cx.host.sock_send(now, h, &chunk).unwrap_or(0);
            *offset += accepted;
            self.report.borrow_mut().bytes_sent += accepted as u64;
            if accepted == 0 {
                return;
            }
        }
        self.sending.retain(|(s, ..)| *s != h);
        self.sessions.remove(&h);
        cx.close(now, h);
    }
}

impl SocketProgram for FileServerProgram {
    fn on_start(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        self.listener = Some(cx.listen(now, self.port, None).expect("ftp port"));
    }

    fn on_ready(&mut self, now: SimTime, h: SocketHandle, ready: Readiness, cx: &mut SockCtx<'_>) {
        if Some(h) == self.listener {
            while let Ok(sess) = cx.accept(now, h) {
                self.sessions.insert(sess, Vec::new());
            }
            return;
        }
        if ready.error() {
            self.sessions.remove(&h);
            self.sending.retain(|(s, ..)| *s != h);
            cx.close(now, h);
            return;
        }
        if ready.readable() {
            let data = cx.host.sock_recv(now, h).unwrap_or_default();
            if let Some(buf) = self.sessions.get_mut(&h) {
                buf.extend_from_slice(&data);
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line).trim().to_string();
                    if let Some(name) = line.strip_prefix("GET ") {
                        match self.catalogue.get(name) {
                            Some(&size) => {
                                self.report.borrow_mut().serves += 1;
                                let header = format!("OK {size}\n");
                                let _ = cx.host.sock_send(now, h, header.as_bytes());
                                self.sending.push((h, name.to_string(), 0, size));
                                self.pump_send(now, h, cx);
                            }
                            None => {
                                self.report.borrow_mut().not_found += 1;
                                let _ = cx.host.sock_send(now, h, b"ERR no such file\n");
                                self.sessions.remove(&h);
                                cx.close(now, h);
                            }
                        }
                    }
                }
            }
            return;
        }
        if ready.eof()
            && self.sessions.remove(&h).is_some()
            && !self.sending.iter().any(|(s, ..)| *s == h)
        {
            cx.close(now, h);
        }
    }

    fn on_tick(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        let handles: Vec<SocketHandle> = self.sending.iter().map(|(s, ..)| *s).collect();
        for h in handles {
            self.pump_send(now, h, cx);
        }
    }
}

/// The file server: name → size catalogue (socket-layer implementation).
pub struct FileServer {
    inner: SockApp<FileServerProgram>,
    report: crate::Shared<FileServerReport>,
}

impl FileServer {
    /// Creates a server for `port` with the given catalogue.
    pub fn new(port: u16, files: &[(&str, usize)]) -> FileServer {
        let report = crate::shared(FileServerReport::default());
        FileServer {
            inner: SockApp::new(FileServerProgram {
                port,
                listener: None,
                catalogue: files.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
                sessions: HashMap::new(),
                sending: Vec::new(),
                report: report.clone(),
            }),
            report,
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<FileServerReport> {
        self.report.clone()
    }
}

impl App for FileServer {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.inner.on_start(now, host);
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        self.inner.on_event(now, event, host);
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        self.inner.poll(now, host);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.inner.next_deadline()
    }
}

/// Results of one GET.
#[derive(Debug, Default)]
pub struct FileClientReport {
    /// Announced size from the OK header.
    pub announced: usize,
    /// Octets of body received.
    pub received: usize,
    /// Every byte matched the expected pattern.
    pub intact: bool,
    /// Transfer completed (EOF after full body).
    pub done: bool,
    /// Server said "no such file".
    pub not_found: bool,
    /// When the connect was issued.
    pub started_at: Option<SimTime>,
    /// When the transfer completed.
    pub finished_at: Option<SimTime>,
}

impl FileClientReport {
    /// Transfer duration, if complete.
    pub fn duration(&self) -> Option<SimDuration> {
        Some(self.finished_at?.saturating_since(self.started_at?))
    }
}

/// The socket program behind [`FileClient`].
struct FileClientProgram {
    dst: Ipv4Addr,
    port: u16,
    name: String,
    sock: Option<SocketHandle>,
    sent_req: bool,
    buf: Vec<u8>,
    header_done: bool,
    mismatch: bool,
    report: crate::Shared<FileClientReport>,
}

impl SocketProgram for FileClientProgram {
    fn on_start(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        self.report.borrow_mut().started_at = Some(now);
        self.sock = cx.connect(now, self.dst, self.port).ok();
    }

    fn on_ready(&mut self, now: SimTime, h: SocketHandle, ready: Readiness, cx: &mut SockCtx<'_>) {
        if Some(h) != self.sock {
            return;
        }
        if ready.error() {
            cx.close(now, h);
            self.sock = None;
            return;
        }
        if !self.sent_req && ready.writable() {
            self.sent_req = true;
            let req = format!("GET {}\n", self.name);
            let _ = cx.host.sock_send(now, h, req.as_bytes());
            return;
        }
        if ready.readable() {
            let data = cx.host.sock_recv(now, h).unwrap_or_default();
            self.buf.extend_from_slice(&data);
            if !self.header_done {
                if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = self.buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line).trim().to_string();
                    self.header_done = true;
                    if let Some(size) = line.strip_prefix("OK ") {
                        self.report.borrow_mut().announced = size.parse().unwrap_or(0);
                    } else {
                        self.report.borrow_mut().not_found = true;
                    }
                }
            }
            if self.header_done {
                let mut r = self.report.borrow_mut();
                for b in self.buf.drain(..) {
                    if b != file_byte(&self.name, r.received) {
                        self.mismatch = true;
                    }
                    r.received += 1;
                }
            }
            return;
        }
        if ready.eof() {
            cx.close(now, h);
            self.sock = None;
            let mut r = self.report.borrow_mut();
            r.finished_at = Some(now);
            r.intact = !self.mismatch && r.received == r.announced;
            r.done = r.intact && r.announced > 0;
        }
    }
}

/// A one-file GET client (socket-layer implementation).
pub struct FileClient {
    inner: SockApp<FileClientProgram>,
    report: crate::Shared<FileClientReport>,
}

impl FileClient {
    /// Fetches `name` from `dst:port`.
    pub fn new(dst: Ipv4Addr, port: u16, name: &str) -> FileClient {
        let report = crate::shared(FileClientReport::default());
        FileClient {
            inner: SockApp::new(FileClientProgram {
                dst,
                port,
                name: name.to_string(),
                sock: None,
                sent_req: false,
                buf: Vec::new(),
                header_done: false,
                mismatch: false,
                report: report.clone(),
            }),
            report,
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<FileClientReport> {
        self.report.clone()
    }
}

impl App for FileClient {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.inner.on_start(now, host);
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        self.inner.on_event(now, event, host);
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        self.inner.poll(now, host);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.inner.next_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_bytes_are_deterministic_and_name_dependent() {
        assert_eq!(file_byte("a.txt", 5), file_byte("a.txt", 5));
        let a: Vec<u8> = (0..64).map(|i| file_byte("a.txt", i)).collect();
        let b: Vec<u8> = (0..64).map(|i| file_byte("b.txt", i)).collect();
        assert_ne!(a, b);
    }
}
