//! Scripted application endpoints for the testbed.
//!
//! §2.3 of the paper validates the gateway by using it: *"we were able to
//! telnet from an isolated IBM PC to a system that was on our Ethernet by
//! way of the new gateway. Since then we have used the gateway for file
//! transfer, electronic mail, and remote login in both directions."*
//! These modules script those uses as [`gateway::world::App`]
//! implementations, so the end-to-end experiments (E6) are repeatable:
//!
//! * [`ping`] — an ICMP echo workload with RTT recording (E1, E4, E7);
//! * [`echo`] — a TCP echo server;
//! * [`bulk`] — a bulk TCP sender/sink pair with retransmission
//!   accounting (E2, E3);
//! * [`telnet`] — a login-style interactive session (remote login);
//! * [`typist`] — a stop-and-wait keystroke/echo client (E13's
//!   interactive workload for VJ header compression);
//! * [`ftp`] — a file transfer with integrity checking;
//! * [`smtp`] — electronic mail exchange;
//! * [`callbook`] — §5's proposed distributed callbook over UDP;
//! * [`ax25chat`] — connected-mode AX.25 endpoints: the BBS and terminal
//!   users that the §2.4 application gateway serves;
//! * [`sockapp`] — the socket-program runtime ([`sockapp::SockApp`]
//!   schedules a [`sockapp::SocketProgram`] over poll/select readiness);
//! * [`dns`] — a stub resolver and an authoritative A-record server for
//!   the AMPRnet callsign zone, both socket programs (E14).
//!
//! Each app publishes its results through a [`Shared`] report handle that
//! survives the app being boxed into the world.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

pub mod ax25chat;
pub mod bulk;
pub mod callbook;
pub mod dns;
pub mod echo;
pub mod ftp;
pub mod ping;
pub mod smtp;
pub mod sockapp;
pub mod telnet;
pub mod typist;

/// Shared, interiorly mutable report cell (single-threaded simulation).
pub type Shared<T> = Rc<RefCell<T>>;

/// Creates a [`Shared`] report.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}
