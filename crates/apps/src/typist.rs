//! A keystroke-at-a-time interactive client: the E13 workload.
//!
//! Models a human at a remote-echo terminal — the traffic RFC 1144 was
//! invented for: one character per segment, stop-and-wait (the next key
//! is not struck until the previous one echoes back), every echo's
//! round-trip time recorded. Pointed at an [`crate::echo::EchoServer`],
//! each keystroke costs two TCP data segments plus an ack on the radio
//! link, so header bytes dominate the airtime — exactly the regime where
//! VJ compression pays.
//!
//! Ported to the socket layer (DESIGN.md §10): the typist is a
//! [`SocketProgram`] — connect, strike on the first WRITABLE edge, strike
//! again on each READABLE echo, shutdown after the last echo, finish on
//! the HANGUP edge when the connection is fully torn down (the same
//! instant the raw API reported `TcpClosed`, so session timings match
//! the pre-socket reports exactly).

use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::StackAction;
use sim::{SimDuration, SimTime};
use socket::{Readiness, SocketHandle};

use crate::sockapp::{SockApp, SockCtx, SocketProgram};

/// Results of a typing session.
#[derive(Debug, Default)]
pub struct TypistReport {
    /// Keystrokes sent.
    pub sent: usize,
    /// Keystrokes whose echo came back.
    pub echoed: usize,
    /// When the connection opened.
    pub started_at: Option<SimTime>,
    /// When the session closed.
    pub finished_at: Option<SimTime>,
    /// Sum of per-keystroke round-trip times.
    pub rtt_total: SimDuration,
    /// Slowest single echo.
    pub rtt_max: SimDuration,
    /// All keystrokes echoed and the connection closed cleanly.
    pub done: bool,
}

impl TypistReport {
    /// Mean keystroke round-trip time, if any echoes arrived.
    pub fn mean_rtt(&self) -> Option<SimDuration> {
        (self.echoed > 0)
            .then(|| SimDuration::from_secs_f64(self.rtt_total.as_secs_f64() / self.echoed as f64))
    }

    /// Wall-clock session length (connect to close).
    pub fn session(&self) -> Option<SimDuration> {
        Some(self.finished_at? - self.started_at?)
    }

    /// Keystrokes echoed per second of session time.
    pub fn chars_per_sec(&self) -> f64 {
        match self.session() {
            Some(d) if d.as_secs_f64() > 0.0 => self.echoed as f64 / d.as_secs_f64(),
            _ => 0.0,
        }
    }
}

/// The socket program behind [`Typist`].
struct TypistProgram {
    dst: Ipv4Addr,
    port: u16,
    count: usize,
    sock: Option<SocketHandle>,
    started: bool,
    sent_at: Option<SimTime>,
    awaiting: usize,
    report: crate::Shared<TypistReport>,
}

impl TypistProgram {
    fn strike(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        let Some(sock) = self.sock else { return };
        let r = self.report.borrow().sent;
        if r >= self.count {
            return;
        }
        let key = [b'a' + (r % 26) as u8];
        let _ = cx.host.sock_send(now, sock, &key);
        self.report.borrow_mut().sent += 1;
        self.sent_at = Some(now);
        self.awaiting = 1;
    }

    fn finish(&mut self, now: SimTime, h: SocketHandle, cx: &mut SockCtx<'_>) {
        {
            let mut r = self.report.borrow_mut();
            r.finished_at = Some(now);
            r.done = r.echoed == self.count;
        }
        cx.close(now, h);
        self.sock = None;
    }
}

impl SocketProgram for TypistProgram {
    fn on_start(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        self.sock = cx.connect(now, self.dst, self.port).ok();
    }

    fn on_ready(&mut self, now: SimTime, h: SocketHandle, ready: Readiness, cx: &mut SockCtx<'_>) {
        if Some(h) != self.sock {
            return;
        }
        if ready.error() {
            self.finish(now, h, cx);
            return;
        }
        if !self.started && ready.writable() {
            self.started = true;
            self.report.borrow_mut().started_at = Some(now);
            self.strike(now, cx);
            return;
        }
        if ready.readable() {
            let data = cx.host.sock_recv(now, h).unwrap_or_default();
            if !data.is_empty() && self.awaiting > 0 {
                // Stop-and-wait: one outstanding key, so any readable
                // data completes it.
                self.awaiting = 0;
                {
                    let mut r = self.report.borrow_mut();
                    r.echoed += 1;
                    if let Some(t0) = self.sent_at.take() {
                        let rtt = now - t0;
                        r.rtt_total += rtt;
                        if rtt > r.rtt_max {
                            r.rtt_max = rtt;
                        }
                    }
                }
                if self.report.borrow().sent >= self.count {
                    // Last echo in hand: half-close, let the server's FIN
                    // and TIME_WAIT run out, and finish on the HANGUP
                    // edge below.
                    let _ = cx.host.sock_shutdown(now, h);
                } else {
                    self.strike(now, cx);
                }
            }
            return;
        }
        if ready.hangup() {
            self.finish(now, h, cx);
        }
    }
}

/// A stop-and-wait keystroke client (socket-layer implementation).
pub struct Typist {
    inner: SockApp<TypistProgram>,
    report: crate::Shared<TypistReport>,
}

impl Typist {
    /// A typist who will strike `count` keys against `dst:port`.
    pub fn new(dst: Ipv4Addr, port: u16, count: usize) -> Typist {
        let report = crate::shared(TypistReport::default());
        Typist {
            inner: SockApp::new(TypistProgram {
                dst,
                port,
                count,
                sock: None,
                started: false,
                sent_at: None,
                awaiting: 0,
                report: report.clone(),
            }),
            report,
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<TypistReport> {
        self.report.clone()
    }
}

impl App for Typist {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.inner.on_start(now, host);
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        self.inner.on_event(now, event, host);
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        self.inner.poll(now, host);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.inner.next_deadline()
    }
}
