//! A keystroke-at-a-time interactive client: the E13 workload.
//!
//! Models a human at a remote-echo terminal — the traffic RFC 1144 was
//! invented for: one character per segment, stop-and-wait (the next key
//! is not struck until the previous one echoes back), every echo's
//! round-trip time recorded. Pointed at an [`crate::echo::EchoServer`],
//! each keystroke costs two TCP data segments plus an ack on the radio
//! link, so header bytes dominate the airtime — exactly the regime where
//! VJ compression pays.

use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::{SockId, StackAction};
use sim::{SimDuration, SimTime};

/// Results of a typing session.
#[derive(Debug, Default)]
pub struct TypistReport {
    /// Keystrokes sent.
    pub sent: usize,
    /// Keystrokes whose echo came back.
    pub echoed: usize,
    /// When the connection opened.
    pub started_at: Option<SimTime>,
    /// When the session closed.
    pub finished_at: Option<SimTime>,
    /// Sum of per-keystroke round-trip times.
    pub rtt_total: SimDuration,
    /// Slowest single echo.
    pub rtt_max: SimDuration,
    /// All keystrokes echoed and the connection closed cleanly.
    pub done: bool,
}

impl TypistReport {
    /// Mean keystroke round-trip time, if any echoes arrived.
    pub fn mean_rtt(&self) -> Option<SimDuration> {
        (self.echoed > 0)
            .then(|| SimDuration::from_secs_f64(self.rtt_total.as_secs_f64() / self.echoed as f64))
    }

    /// Wall-clock session length (connect to close).
    pub fn session(&self) -> Option<SimDuration> {
        Some(self.finished_at? - self.started_at?)
    }

    /// Keystrokes echoed per second of session time.
    pub fn chars_per_sec(&self) -> f64 {
        match self.session() {
            Some(d) if d.as_secs_f64() > 0.0 => self.echoed as f64 / d.as_secs_f64(),
            _ => 0.0,
        }
    }
}

/// A stop-and-wait keystroke client.
pub struct Typist {
    dst: Ipv4Addr,
    port: u16,
    count: usize,
    sock: Option<SockId>,
    sent_at: Option<SimTime>,
    awaiting: usize,
    report: crate::Shared<TypistReport>,
}

impl Typist {
    /// A typist who will strike `count` keys against `dst:port`.
    pub fn new(dst: Ipv4Addr, port: u16, count: usize) -> Typist {
        Typist {
            dst,
            port,
            count,
            sock: None,
            sent_at: None,
            awaiting: 0,
            report: crate::shared(TypistReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<TypistReport> {
        self.report.clone()
    }

    fn strike(&mut self, now: SimTime, host: &mut Host) {
        let Some(sock) = self.sock else { return };
        let r = self.report.borrow().sent;
        if r >= self.count {
            return;
        }
        let key = [b'a' + (r % 26) as u8];
        host.tcp_send(now, sock, &key);
        self.report.borrow_mut().sent += 1;
        self.sent_at = Some(now);
        self.awaiting = 1;
    }
}

impl App for Typist {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.sock = host.tcp_connect(now, self.dst, self.port).ok();
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpConnected(sock) if Some(*sock) == self.sock => {
                self.report.borrow_mut().started_at = Some(now);
                self.strike(now, host);
            }
            StackAction::TcpReadable(sock) if Some(*sock) == self.sock => {
                let data = host.tcp_recv(now, *sock);
                if data.is_empty() || self.awaiting == 0 {
                    return;
                }
                // Stop-and-wait: one outstanding key, so any readable
                // data completes it.
                self.awaiting = 0;
                {
                    let mut r = self.report.borrow_mut();
                    r.echoed += 1;
                    if let Some(t0) = self.sent_at.take() {
                        let rtt = now - t0;
                        r.rtt_total += rtt;
                        if rtt > r.rtt_max {
                            r.rtt_max = rtt;
                        }
                    }
                }
                if self.report.borrow().sent >= self.count {
                    host.tcp_close(now, *sock);
                } else {
                    self.strike(now, host);
                }
            }
            StackAction::TcpClosed { sock, .. } if Some(*sock) == self.sock => {
                let mut r = self.report.borrow_mut();
                r.finished_at = Some(now);
                r.done = r.echoed == self.count;
            }
            StackAction::TcpPeerClosed(sock) if Some(*sock) == self.sock => {
                host.tcp_close(now, *sock);
            }
            _ => {}
        }
    }
}
