//! Electronic mail: a minimal SMTP exchange.
//!
//! §2.3's third service ("electronic mail"). The dialogue is the classic
//! HELO / MAIL FROM / RCPT TO / DATA / "." / QUIT, enough to move one
//! message across the gateway in either direction.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::{SockId, StackAction};
use sim::SimTime;

/// One delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mail {
    /// Envelope sender.
    pub from: String,
    /// Envelope recipient.
    pub to: String,
    /// Message body lines.
    pub body: Vec<String>,
}

/// Server-side mailbox and counters.
#[derive(Debug, Default)]
pub struct SmtpServerReport {
    /// Messages accepted.
    pub mailbox: Vec<Mail>,
    /// Sessions seen.
    pub sessions: u64,
}

#[derive(Debug, Default)]
struct SmtpSession {
    buf: Vec<u8>,
    from: String,
    to: String,
    in_data: bool,
    body: Vec<String>,
}

/// A minimal SMTP server.
pub struct SmtpServer {
    port: u16,
    hostname: String,
    sessions: HashMap<SockId, SmtpSession>,
    report: crate::Shared<SmtpServerReport>,
}

impl SmtpServer {
    /// Creates a server on `port` announcing `hostname`.
    pub fn new(port: u16, hostname: &str) -> SmtpServer {
        SmtpServer {
            port,
            hostname: hostname.to_string(),
            sessions: HashMap::new(),
            report: crate::shared(SmtpServerReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<SmtpServerReport> {
        self.report.clone()
    }

    fn handle_line(&mut self, sock: SockId, line: &str) -> (String, bool) {
        let session = self.sessions.entry(sock).or_default();
        if session.in_data {
            if line == "." {
                session.in_data = false;
                let mail = Mail {
                    from: session.from.clone(),
                    to: session.to.clone(),
                    body: std::mem::take(&mut session.body),
                };
                self.report.borrow_mut().mailbox.push(mail);
                return ("250 Ok: queued\r\n".to_string(), false);
            }
            session.body.push(line.to_string());
            return (String::new(), false);
        }
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("HELO") {
            (format!("250 {} Hello\r\n", self.hostname), false)
        } else if upper.starts_with("MAIL FROM:") {
            session.from = line[10..].trim().to_string();
            ("250 Ok\r\n".to_string(), false)
        } else if upper.starts_with("RCPT TO:") {
            session.to = line[8..].trim().to_string();
            ("250 Ok\r\n".to_string(), false)
        } else if upper.starts_with("DATA") {
            session.in_data = true;
            ("354 End data with .\r\n".to_string(), false)
        } else if upper.starts_with("QUIT") {
            ("221 Bye\r\n".to_string(), true)
        } else {
            ("500 Unrecognized\r\n".to_string(), false)
        }
    }
}

impl App for SmtpServer {
    fn on_start(&mut self, _now: SimTime, host: &mut Host) {
        host.stack.tcp_listen(self.port).expect("smtp port");
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpAccepted { sock, .. } => {
                self.report.borrow_mut().sessions += 1;
                self.sessions.insert(*sock, SmtpSession::default());
                let banner = format!("220 {} SMTP ready\r\n", self.hostname);
                host.tcp_send(now, *sock, banner.as_bytes());
            }
            StackAction::TcpReadable(sock) => {
                if !self.sessions.contains_key(sock) {
                    return;
                }
                let data = host.tcp_recv(now, *sock);
                self.sessions
                    .get_mut(sock)
                    .expect("checked")
                    .buf
                    .extend_from_slice(&data);
                while let Some(session) = self.sessions.get_mut(sock) {
                    let Some(pos) = session.buf.iter().position(|&b| b == b'\n') else {
                        break;
                    };
                    let raw: Vec<u8> = session.buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&raw).trim_end().to_string();
                    let (reply, close) = self.handle_line(*sock, &line);
                    if !reply.is_empty() {
                        host.tcp_send(now, *sock, reply.as_bytes());
                    }
                    if close {
                        host.tcp_close(now, *sock);
                        self.sessions.remove(sock);
                        break;
                    }
                }
            }
            StackAction::TcpPeerClosed(sock) if self.sessions.remove(sock).is_some() => {
                host.tcp_close(now, *sock);
            }
            _ => {}
        }
    }
}

/// Client-side outcome.
#[derive(Debug, Default)]
pub struct SmtpClientReport {
    /// Server replies, in order.
    pub replies: Vec<String>,
    /// The message was accepted (250 after DATA).
    pub delivered: bool,
    /// Session finished.
    pub done: bool,
    /// When it finished.
    pub finished_at: Option<SimTime>,
}

/// A client that submits one message.
pub struct SmtpClient {
    dst: Ipv4Addr,
    port: u16,
    mail: Mail,
    sock: Option<SockId>,
    buf: Vec<u8>,
    step: usize,
    report: crate::Shared<SmtpClientReport>,
}

impl SmtpClient {
    /// Sends `mail` to `dst:port`.
    pub fn new(dst: Ipv4Addr, port: u16, mail: Mail) -> SmtpClient {
        SmtpClient {
            dst,
            port,
            mail,
            sock: None,
            buf: Vec::new(),
            step: 0,
            report: crate::shared(SmtpClientReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<SmtpClientReport> {
        self.report.clone()
    }

    fn next_command(&mut self) -> Option<String> {
        let cmd = match self.step {
            0 => Some("HELO pc.ampr.org\r\n".to_string()),
            1 => Some(format!("MAIL FROM:{}\r\n", self.mail.from)),
            2 => Some(format!("RCPT TO:{}\r\n", self.mail.to)),
            3 => Some("DATA\r\n".to_string()),
            4 => {
                let mut s = String::new();
                for line in &self.mail.body {
                    s.push_str(line);
                    s.push_str("\r\n");
                }
                s.push_str(".\r\n");
                Some(s)
            }
            5 => Some("QUIT\r\n".to_string()),
            _ => None,
        };
        self.step += 1;
        cmd
    }
}

impl App for SmtpClient {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.sock = host.tcp_connect(now, self.dst, self.port).ok();
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpReadable(sock) if Some(*sock) == self.sock => {
                let data = host.tcp_recv(now, *sock);
                self.buf.extend_from_slice(&data);
                while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                    let raw: Vec<u8> = self.buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&raw).trim_end().to_string();
                    {
                        let mut r = self.report.borrow_mut();
                        // "250 Ok: queued" after the DATA body means delivery.
                        if self.step == 5 && line.starts_with("250") {
                            r.delivered = true;
                        }
                        r.replies.push(line.clone());
                    }
                    // Every server reply advances the script one command.
                    if line.starts_with("2") || line.starts_with("3") {
                        if let Some(cmd) = self.next_command() {
                            host.tcp_send(now, *sock, cmd.as_bytes());
                        }
                    }
                    if line.starts_with("221") {
                        host.tcp_close(now, *sock);
                        let mut r = self.report.borrow_mut();
                        r.done = true;
                        r.finished_at = Some(now);
                    }
                }
            }
            _ => {}
        }
    }
}
