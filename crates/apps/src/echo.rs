//! A TCP echo server: everything received goes straight back.

use std::collections::HashSet;

use gateway::world::App;
use gateway::Host;
use netstack::stack::{SockId, StackAction};
use sim::SimTime;

/// Echo server counters.
#[derive(Debug, Default)]
pub struct EchoReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Octets echoed.
    pub bytes_echoed: u64,
}

/// A TCP echo server on one port.
pub struct EchoServer {
    port: u16,
    socks: HashSet<SockId>,
    report: crate::Shared<EchoReport>,
}

impl EchoServer {
    /// Creates a server for `port`.
    pub fn new(port: u16) -> EchoServer {
        EchoServer {
            port,
            socks: HashSet::new(),
            report: crate::shared(EchoReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<EchoReport> {
        self.report.clone()
    }
}

impl App for EchoServer {
    fn on_start(&mut self, _now: SimTime, host: &mut Host) {
        host.stack
            .tcp_listen(self.port)
            .expect("echo port available");
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpAccepted { sock, .. } => {
                self.socks.insert(*sock);
                self.report.borrow_mut().accepted += 1;
            }
            StackAction::TcpReadable(sock) if self.socks.contains(sock) => {
                let data = host.tcp_recv(now, *sock);
                if !data.is_empty() {
                    self.report.borrow_mut().bytes_echoed += data.len() as u64;
                    host.tcp_send(now, *sock, &data);
                }
            }
            StackAction::TcpPeerClosed(sock) if self.socks.contains(sock) => {
                host.tcp_close(now, *sock);
            }
            StackAction::TcpClosed { sock, .. } => {
                self.socks.remove(sock);
            }
            _ => {}
        }
    }
}
