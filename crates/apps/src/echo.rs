//! A TCP echo server: everything received goes straight back.
//!
//! Two implementations live here on purpose. [`EchoServer`] is the
//! production app, a [`SocketProgram`] on the BSD-style socket layer (DESIGN.md §10).
//! [`RawEchoServer`] is the pre-socket original driving
//! `NetStack::tcp_*` directly — kept as the executable reference for the
//! differential test (`tests/socket_differential.rs`) that proves the
//! ported server produces byte-identical wire traffic.

use std::collections::HashSet;

use gateway::world::App;
use gateway::Host;
use netstack::stack::{SockId, StackAction};
use sim::SimTime;
use socket::{Readiness, SocketHandle};

use crate::sockapp::{SockApp, SockCtx, SocketProgram};

/// Echo server counters.
#[derive(Debug, Default)]
pub struct EchoReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Octets echoed.
    pub bytes_echoed: u64,
}

/// The socket-program behind [`EchoServer`].
struct EchoProgram {
    port: u16,
    listener: Option<SocketHandle>,
    report: crate::Shared<EchoReport>,
}

impl SocketProgram for EchoProgram {
    fn on_start(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        self.listener = Some(
            cx.listen(now, self.port, None)
                .expect("echo port available"),
        );
    }

    fn on_ready(&mut self, now: SimTime, h: SocketHandle, ready: Readiness, cx: &mut SockCtx<'_>) {
        if Some(h) == self.listener {
            while let Ok(_sess) = cx.accept(now, h) {
                self.report.borrow_mut().accepted += 1;
            }
            return;
        }
        if ready.readable() {
            match cx.host.sock_recv(now, h) {
                Ok(data) if !data.is_empty() => {
                    self.report.borrow_mut().bytes_echoed += data.len() as u64;
                    let _ = cx.host.sock_send(now, h, &data);
                }
                _ => {}
            }
        }
        if ready.eof() || ready.error() {
            cx.close(now, h);
        }
    }
}

/// A TCP echo server on one port (socket-layer implementation).
pub struct EchoServer {
    inner: SockApp<EchoProgram>,
    report: crate::Shared<EchoReport>,
}

impl EchoServer {
    /// Creates a server for `port`.
    pub fn new(port: u16) -> EchoServer {
        let report = crate::shared(EchoReport::default());
        EchoServer {
            inner: SockApp::new(EchoProgram {
                port,
                listener: None,
                report: report.clone(),
            }),
            report,
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<EchoReport> {
        self.report.clone()
    }
}

impl App for EchoServer {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.inner.on_start(now, host);
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        self.inner.on_event(now, event, host);
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        self.inner.poll(now, host);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.inner.next_deadline()
    }
}

/// The pre-socket echo server, kept verbatim as the raw-API reference.
pub struct RawEchoServer {
    port: u16,
    socks: HashSet<SockId>,
    report: crate::Shared<EchoReport>,
}

impl RawEchoServer {
    /// Creates a server for `port`.
    pub fn new(port: u16) -> RawEchoServer {
        RawEchoServer {
            port,
            socks: HashSet::new(),
            report: crate::shared(EchoReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<EchoReport> {
        self.report.clone()
    }
}

impl App for RawEchoServer {
    fn on_start(&mut self, _now: SimTime, host: &mut Host) {
        host.stack
            .tcp_listen(self.port)
            .expect("echo port available");
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpAccepted { sock, .. } => {
                self.socks.insert(*sock);
                self.report.borrow_mut().accepted += 1;
            }
            StackAction::TcpReadable(sock) if self.socks.contains(sock) => {
                let data = host.tcp_recv(now, *sock);
                if !data.is_empty() {
                    self.report.borrow_mut().bytes_echoed += data.len() as u64;
                    host.tcp_send(now, *sock, &data);
                }
            }
            StackAction::TcpPeerClosed(sock) if self.socks.contains(sock) => {
                host.tcp_close(now, *sock);
            }
            StackAction::TcpClosed { sock, .. } => {
                self.socks.remove(sock);
            }
            _ => {}
        }
    }
}
