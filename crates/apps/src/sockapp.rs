//! The socket-program runtime: schedules a [`SocketProgram`] as a world
//! [`App`].
//!
//! A socket program never sees raw [`netstack::stack::StackAction`]s.
//! Instead it watches [`SocketHandle`]s and the runtime calls
//! [`SocketProgram::on_ready`] with a [`Readiness`] mask whenever a
//! watched handle's readiness changes — the `select(2)` loop a 4.3BSD
//! daemon would run, inverted for the event-driven world.
//!
//! Delivery contract:
//!
//! * **Edge-triggered** for every handle: a bit newly turning on is
//!   delivered exactly once; the program must drain (recv until
//!   `WouldBlock`, accept until `WouldBlock`) before returning.
//! * **Level-triggered re-delivery** for handles in blocking mode (the
//!   default): while any bit is set, the program is re-notified on every
//!   scheduler visit. This is the cooperative emulation of a process
//!   sleeping in a blocked syscall — it cannot miss a wakeup, at the cost
//!   of spurious calls it must tolerate. Nonblocking handles
//!   ([`gateway::Host::sock_set_nonblocking`]) get edges only.
//! * [`SocketProgram::on_tick`] runs on every scheduler visit (bulk
//!   pumps, request pickup) and [`SocketProgram::next_wakeup`] arms a
//!   real deadline — the runtime itself never busy-polls.

use gateway::world::App;
use gateway::Host;
use netstack::stack::StackAction;
use sim::SimTime;
use socket::{Readiness, SockError, SocketHandle};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The capability a socket program acts through: the owning host plus
/// the runtime's watch list. Handles created through the `SockCtx` verbs
/// are watched automatically; [`SockCtx::close`] unwatches.
pub struct SockCtx<'a> {
    /// The owning host (full socket API available as `sock_*` methods).
    pub host: &'a mut Host,
    watched: &'a mut Vec<SocketHandle>,
}

impl SockCtx<'_> {
    /// Adds a handle to the runtime's watch list.
    pub fn watch(&mut self, h: SocketHandle) {
        if !self.watched.contains(&h) {
            self.watched.push(h);
        }
    }

    /// Removes a handle from the watch list.
    pub fn unwatch(&mut self, h: SocketHandle) {
        self.watched.retain(|&w| w != h);
    }

    /// Opens a watched listener.
    pub fn listen(
        &mut self,
        now: SimTime,
        port: u16,
        backlog: Option<usize>,
    ) -> Result<SocketHandle, SockError> {
        let h = self.host.sock_listen(now, port, backlog)?;
        self.watch(h);
        Ok(h)
    }

    /// Starts a watched active open.
    pub fn connect(
        &mut self,
        now: SimTime,
        dst: Ipv4Addr,
        port: u16,
    ) -> Result<SocketHandle, SockError> {
        let h = self.host.sock_connect(now, dst, port)?;
        self.watch(h);
        Ok(h)
    }

    /// Accepts one connection off a watched listener; the new stream is
    /// watched too.
    pub fn accept(
        &mut self,
        now: SimTime,
        listener: SocketHandle,
    ) -> Result<SocketHandle, SockError> {
        let h = self.host.sock_accept(now, listener)?;
        self.watch(h);
        Ok(h)
    }

    /// Opens a watched datagram socket.
    pub fn bind_udp(&mut self, now: SimTime, port: u16) -> Result<SocketHandle, SockError> {
        let h = self.host.sock_bind_udp(now, port)?;
        self.watch(h);
        Ok(h)
    }

    /// Closes and unwatches a handle.
    pub fn close(&mut self, now: SimTime, h: SocketHandle) {
        self.unwatch(h);
        self.host.sock_close(now, h);
    }
}

/// An event-driven socket program — the portable part of an application.
///
/// All methods receive a [`SockCtx`] granting access to the owning host's
/// socket API and the runtime watch list.
pub trait SocketProgram {
    /// Called once when the world starts the app. Open sockets here.
    fn on_start(&mut self, now: SimTime, cx: &mut SockCtx<'_>);

    /// A watched handle has (new) readiness. `ready` is the full current
    /// mask, not just the changed bits.
    fn on_ready(&mut self, now: SimTime, h: SocketHandle, ready: Readiness, cx: &mut SockCtx<'_>);

    /// Runs on every scheduler visit, before readiness delivery: bulk
    /// pumps, picking up queued requests from shared state, timers.
    fn on_tick(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        let _ = (now, cx);
    }

    /// An absolute wake-up time; the runtime folds it into the host's
    /// deadline so `on_tick` runs then without busy-polling.
    fn next_wakeup(&self) -> Option<SimTime> {
        None
    }
}

/// Adapter: runs a [`SocketProgram`] as a world [`App`].
pub struct SockApp<P: SocketProgram> {
    program: P,
    watched: Vec<SocketHandle>,
    last: HashMap<SocketHandle, u8>,
}

impl<P: SocketProgram> SockApp<P> {
    /// Wraps a program for scheduling.
    pub fn new(program: P) -> SockApp<P> {
        SockApp {
            program,
            watched: Vec::new(),
            last: HashMap::new(),
        }
    }

    /// The wrapped program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Computes readiness for every watched handle and delivers edges
    /// (plus level re-delivery for blocking handles), iterating until no
    /// handle's mask changes — so a handler that drains a socket sees the
    /// follow-on EOF edge within the same instant.
    fn deliver(&mut self, now: SimTime, host: &mut Host) {
        let SockApp {
            program,
            watched,
            last,
        } = self;
        for round in 0..64 {
            let mut any = false;
            let mut idx = 0;
            while idx < watched.len() {
                let h = watched[idx];
                let mask = host.sock_poll(h);
                let prev = last.get(&h).copied().unwrap_or(0);
                let rising = mask.bits() & !prev;
                let level = round == 0 && !host.sockets.is_nonblocking(h) && !mask.is_empty();
                last.insert(h, mask.bits());
                if rising != 0 || level {
                    any = true;
                    let mut cx = SockCtx {
                        host: &mut *host,
                        watched: &mut *watched,
                    };
                    program.on_ready(now, h, mask, &mut cx);
                }
                // The handler may have unwatched this (or any) handle;
                // only advance when the slot still holds `h`.
                if watched.get(idx) == Some(&h) {
                    idx += 1;
                }
            }
            if !any {
                return;
            }
        }
        panic!("socket program did not settle its readiness edges");
    }
}

impl<P: SocketProgram> App for SockApp<P> {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        {
            let SockApp {
                program, watched, ..
            } = &mut *self;
            let mut cx = SockCtx {
                host: &mut *host,
                watched,
            };
            program.on_start(now, &mut cx);
        }
        self.deliver(now, host);
    }

    fn on_event(&mut self, _now: SimTime, _event: &StackAction, _host: &mut Host) {
        // Socket programs never see raw stack actions: the scheduler
        // guarantees a poll after every on_event, and poll delivers
        // readiness computed from the post-event socket state.
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        {
            let SockApp {
                program, watched, ..
            } = &mut *self;
            let mut cx = SockCtx {
                host: &mut *host,
                watched,
            };
            program.on_tick(now, &mut cx);
        }
        self.deliver(now, host);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.program.next_wakeup()
    }
}
