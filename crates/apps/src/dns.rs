//! A userspace DNS resolver and name server over the socket layer.
//!
//! The socket layer's capstone application: once the gateway mesh can carry UDP
//! end to end, hosts should not need to memorise 44.x.y.z addresses.
//! [`DnsServer`] serves an A-record subset of RFC 1035 from a static
//! zone (the AMPRnet callsign→address table a coordinator would
//! publish), and [`Resolver`] is the stub clients link against:
//! cache-with-TTL, retry-with-deadline, and a [`ResolverCore`] handle
//! that other apps (or the experiment driver) query.
//!
//! The wire format is real RFC 1035 — 12-byte header, QNAME label
//! sequence, QTYPE/QCLASS, answers with the classic `0xC00C` compression
//! pointer back to the question name — restricted to QTYPE=A, QCLASS=IN,
//! one question per message. NXDOMAIN is RCODE 3.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::StackAction;
use sim::{SimDuration, SimTime};
use socket::{Readiness, SocketHandle};

use crate::sockapp::{SockApp, SockCtx, SocketProgram};

/// The well-known DNS port.
pub const DNS_PORT: u16 = 53;

/// How long the stub waits for an answer before retransmitting.
const RETRY_AFTER: SimDuration = SimDuration::from_secs(5);

/// Transmissions per query before the stub gives up.
const MAX_TRIES: u32 = 4;

// ---------------------------------------------------------------------------
// Wire codec (RFC 1035 subset: one A/IN question, one answer)
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn get_u16(buf: &[u8], at: usize) -> Option<u16> {
    Some(u16::from_be_bytes([*buf.get(at)?, *buf.get(at + 1)?]))
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let label = &label.as_bytes()[..label.len().min(63)];
        out.push(label.len() as u8);
        out.extend_from_slice(label);
    }
    out.push(0);
}

/// Reads a label sequence at `at`; returns (lower-cased name, next offset).
/// A compression pointer terminates the walk (the target is not chased —
/// the only pointer this codec emits is `0xC00C`, the question name).
fn get_name(buf: &[u8], at: usize) -> Option<(String, usize)> {
    let mut name = String::new();
    let mut pos = at;
    loop {
        let len = *buf.get(pos)? as usize;
        if len & 0xC0 == 0xC0 {
            return Some((name, pos + 2));
        }
        if len == 0 {
            return Some((name, pos + 1));
        }
        let label = buf.get(pos + 1..pos + 1 + len)?;
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(&String::from_utf8_lossy(label).to_ascii_lowercase());
        pos += 1 + len;
    }
}

/// Encodes a standard query for the A record of `name`.
pub fn encode_query(id: u16, name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(17 + name.len());
    put_u16(&mut out, id);
    put_u16(&mut out, 0x0100); // RD
    put_u16(&mut out, 1); // QDCOUNT
    put_u16(&mut out, 0);
    put_u16(&mut out, 0);
    put_u16(&mut out, 0);
    put_name(&mut out, name);
    put_u16(&mut out, 1); // QTYPE=A
    put_u16(&mut out, 1); // QCLASS=IN
    out
}

/// Decodes a query: (id, name). `None` on anything but one A/IN question.
pub fn decode_query(buf: &[u8]) -> Option<(u16, String)> {
    let id = get_u16(buf, 0)?;
    let flags = get_u16(buf, 2)?;
    if flags & 0x8000 != 0 || get_u16(buf, 4)? != 1 {
        return None;
    }
    let (name, after) = get_name(buf, 12)?;
    if get_u16(buf, after)? != 1 || get_u16(buf, after + 2)? != 1 {
        return None;
    }
    Some((id, name))
}

/// Encodes a response to the query for `name`: an A record if
/// `answer` is `Some((addr, ttl))`, NXDOMAIN otherwise.
pub fn encode_response(id: u16, name: &str, answer: Option<(Ipv4Addr, u32)>) -> Vec<u8> {
    let mut out = Vec::with_capacity(33 + name.len());
    put_u16(&mut out, id);
    // QR | AA | RD | RA, plus RCODE 3 when the name is not ours.
    let rcode = if answer.is_some() { 0 } else { 3 };
    put_u16(&mut out, 0x8580 | rcode);
    put_u16(&mut out, 1); // QDCOUNT: question echoed
    put_u16(&mut out, u16::from(answer.is_some())); // ANCOUNT
    put_u16(&mut out, 0);
    put_u16(&mut out, 0);
    put_name(&mut out, name);
    put_u16(&mut out, 1);
    put_u16(&mut out, 1);
    if let Some((addr, ttl)) = answer {
        put_u16(&mut out, 0xC00C); // pointer to the question name
        put_u16(&mut out, 1); // TYPE=A
        put_u16(&mut out, 1); // CLASS=IN
        out.extend_from_slice(&ttl.to_be_bytes());
        put_u16(&mut out, 4); // RDLENGTH
        out.extend_from_slice(&addr.octets());
    }
    out
}

/// A decoded answer record: `Some((addr, ttl))`, or `None` for
/// NXDOMAIN / no answer.
pub type DnsAnswer = Option<(Ipv4Addr, u32)>;

/// Decodes a response into (id, name, answer).
pub fn decode_response(buf: &[u8]) -> Option<(u16, String, DnsAnswer)> {
    let id = get_u16(buf, 0)?;
    let flags = get_u16(buf, 2)?;
    if flags & 0x8000 == 0 {
        return None;
    }
    let (name, mut pos) = get_name(buf, 12)?;
    pos += 4; // QTYPE + QCLASS
    if flags & 0x000F != 0 || get_u16(buf, 6)? == 0 {
        return Some((id, name, None));
    }
    let (_aname, apos) = get_name(buf, pos)?;
    let rtype = get_u16(buf, apos)?;
    let ttl = u32::from_be_bytes([
        *buf.get(apos + 4)?,
        *buf.get(apos + 5)?,
        *buf.get(apos + 6)?,
        *buf.get(apos + 7)?,
    ]);
    let rdlen = get_u16(buf, apos + 8)? as usize;
    if rtype != 1 || rdlen != 4 {
        return Some((id, name, None));
    }
    let rd = buf.get(apos + 10..apos + 14)?;
    let addr = Ipv4Addr::new(rd[0], rd[1], rd[2], rd[3]);
    Some((id, name, Some((addr, ttl))))
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Name server counters.
#[derive(Debug, Default)]
pub struct DnsServerReport {
    /// Queries received and parsed.
    pub queries: u64,
    /// Answered with an A record.
    pub answered: u64,
    /// Answered NXDOMAIN.
    pub nxdomain: u64,
    /// Datagrams that would not parse as a query.
    pub malformed: u64,
}

struct DnsServerProgram {
    zone: HashMap<String, Ipv4Addr>,
    ttl: u32,
    sock: Option<SocketHandle>,
    report: crate::Shared<DnsServerReport>,
}

impl SocketProgram for DnsServerProgram {
    fn on_start(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        self.sock = Some(cx.bind_udp(now, DNS_PORT).expect("port 53 free"));
    }

    fn on_ready(&mut self, now: SimTime, h: SocketHandle, ready: Readiness, cx: &mut SockCtx<'_>) {
        if Some(h) != self.sock || !ready.readable() {
            return;
        }
        while let Ok((src, sport, dgram)) = cx.host.sock_recv_from(h) {
            let Some((id, name)) = decode_query(dgram.as_slice()) else {
                self.report.borrow_mut().malformed += 1;
                continue;
            };
            let answer = self.zone.get(&name).map(|&a| (a, self.ttl));
            {
                let mut r = self.report.borrow_mut();
                r.queries += 1;
                if answer.is_some() {
                    r.answered += 1;
                } else {
                    r.nxdomain += 1;
                }
            }
            let resp = encode_response(id, &name, answer);
            let _ = cx.host.sock_send_to(now, h, src, sport, resp);
        }
    }
}

/// An authoritative A-record server for a static zone on UDP port 53.
pub struct DnsServer {
    inner: SockApp<DnsServerProgram>,
    report: crate::Shared<DnsServerReport>,
}

impl DnsServer {
    /// Serves `zone` (name → address) with the given answer TTL.
    pub fn new(zone: &[(&str, Ipv4Addr)], ttl: SimDuration) -> DnsServer {
        let report = crate::shared(DnsServerReport::default());
        DnsServer {
            inner: SockApp::new(DnsServerProgram {
                zone: zone
                    .iter()
                    .map(|(n, a)| (n.to_ascii_lowercase(), *a))
                    .collect(),
                ttl: ttl.as_secs_f64() as u32,
                sock: None,
                report: report.clone(),
            }),
            report,
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<DnsServerReport> {
        self.report.clone()
    }
}

impl App for DnsServer {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.inner.on_start(now, host);
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        self.inner.on_event(now, event, host);
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        self.inner.poll(now, host);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.inner.next_deadline()
    }
}

// ---------------------------------------------------------------------------
// Stub resolver
// ---------------------------------------------------------------------------

/// Resolver statistics.
#[derive(Debug, Default)]
pub struct ResolverStats {
    /// Query datagrams transmitted (including retries).
    pub queries_sent: u64,
    /// Answers accepted.
    pub answers: u64,
    /// Lookups served straight from the cache.
    pub from_cache: u64,
    /// Retransmissions.
    pub retries: u64,
    /// Lookups abandoned after [`MAX_TRIES`].
    pub failures: u64,
}

/// The shared half of the stub resolver: applications and drivers call
/// [`ResolverCore::resolve`]/[`ResolverCore::result`] on this; the
/// [`Resolver`] app drains the request queue onto the wire.
#[derive(Debug)]
pub struct ResolverCore {
    server: Ipv4Addr,
    cache: HashMap<String, (Ipv4Addr, SimTime)>,
    pending: Vec<String>,
    results: HashMap<String, Option<Ipv4Addr>>,
    /// Running counters.
    pub stats: ResolverStats,
}

impl ResolverCore {
    /// A core pointed at `server`.
    pub fn new(server: Ipv4Addr) -> crate::Shared<ResolverCore> {
        crate::shared(ResolverCore {
            server,
            cache: HashMap::new(),
            pending: Vec::new(),
            results: HashMap::new(),
            stats: ResolverStats::default(),
        })
    }

    /// Non-blocking lookup: a cached, unexpired answer comes back
    /// immediately; otherwise the name is queued for the wire and the
    /// caller polls [`ResolverCore::result`] later.
    pub fn resolve(&mut self, name: &str, now: SimTime) -> Option<Ipv4Addr> {
        let name = name.to_ascii_lowercase();
        if let Some(&(addr, expiry)) = self.cache.get(&name) {
            if now < expiry {
                self.stats.from_cache += 1;
                return Some(addr);
            }
            self.cache.remove(&name);
        }
        if !self.pending.contains(&name) && !self.results.contains_key(&name) {
            self.pending.push(name);
        }
        None
    }

    /// The outcome of a queued lookup: `None` = still in flight,
    /// `Some(None)` = NXDOMAIN or timed out, `Some(Some(addr))` = answer.
    pub fn result(&self, name: &str) -> Option<Option<Ipv4Addr>> {
        self.results.get(&name.to_ascii_lowercase()).copied()
    }
}

struct InFlight {
    name: String,
    deadline: SimTime,
    tries: u32,
}

struct ResolverProgram {
    core: crate::Shared<ResolverCore>,
    port: u16,
    sock: Option<SocketHandle>,
    next_id: u16,
    in_flight: HashMap<u16, InFlight>,
}

impl ResolverProgram {
    fn transmit(&mut self, now: SimTime, id: u16, cx: &mut SockCtx<'_>) {
        let Some(sock) = self.sock else { return };
        let Some(q) = self.in_flight.get_mut(&id) else {
            return;
        };
        q.deadline = now + RETRY_AFTER;
        q.tries += 1;
        let server = self.core.borrow().server;
        let query = encode_query(id, &q.name);
        self.core.borrow_mut().stats.queries_sent += 1;
        let _ = cx.host.sock_send_to(now, sock, server, DNS_PORT, query);
    }
}

impl SocketProgram for ResolverProgram {
    fn on_start(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        self.sock = Some(cx.bind_udp(now, self.port).expect("resolver port free"));
    }

    fn on_ready(&mut self, now: SimTime, h: SocketHandle, ready: Readiness, cx: &mut SockCtx<'_>) {
        if Some(h) != self.sock || !ready.readable() {
            return;
        }
        while let Ok((_src, _sport, dgram)) = cx.host.sock_recv_from(h) {
            let Some((id, name, answer)) = decode_response(dgram.as_slice()) else {
                continue;
            };
            let Some(q) = self.in_flight.remove(&id) else {
                continue;
            };
            if q.name != name {
                self.in_flight.insert(id, q);
                continue;
            }
            let mut core = self.core.borrow_mut();
            core.stats.answers += 1;
            if let Some((addr, ttl)) = answer {
                core.cache.insert(
                    name.clone(),
                    (addr, now + SimDuration::from_secs(u64::from(ttl))),
                );
                core.results.insert(name, Some(addr));
            } else {
                core.results.insert(name, None);
            }
        }
    }

    fn on_tick(&mut self, now: SimTime, cx: &mut SockCtx<'_>) {
        // New requests queued by consumers since the last visit.
        let pending = std::mem::take(&mut self.core.borrow_mut().pending);
        for name in pending {
            let id = self.next_id;
            self.next_id = self.next_id.wrapping_add(1);
            self.in_flight.insert(
                id,
                InFlight {
                    name,
                    deadline: now,
                    tries: 0,
                },
            );
            self.transmit(now, id, cx);
        }
        // Retries and give-ups.
        let expired: Vec<u16> = self
            .in_flight
            .iter()
            .filter(|(_, q)| q.deadline <= now && q.tries > 0)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            if self.in_flight[&id].tries >= MAX_TRIES {
                let q = self.in_flight.remove(&id).unwrap();
                let mut core = self.core.borrow_mut();
                core.stats.failures += 1;
                core.results.insert(q.name, None);
            } else {
                self.core.borrow_mut().stats.retries += 1;
                self.transmit(now, id, cx);
            }
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        let queued = (!self.core.borrow().pending.is_empty()).then_some(SimTime::ZERO);
        let retry = self.in_flight.values().map(|q| q.deadline).min();
        match (queued, retry) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// The stub resolver app: owns the UDP socket, drains the
/// [`ResolverCore`] request queue, retries on a timer.
pub struct Resolver {
    inner: SockApp<ResolverProgram>,
    core: crate::Shared<ResolverCore>,
}

impl Resolver {
    /// A resolver querying `server`, bound to local `port`.
    pub fn new(server: Ipv4Addr, port: u16) -> Resolver {
        let core = ResolverCore::new(server);
        Resolver {
            inner: SockApp::new(ResolverProgram {
                core: core.clone(),
                port,
                sock: None,
                next_id: 1,
                in_flight: HashMap::new(),
            }),
            core,
        }
    }

    /// The shared core other apps and drivers hold.
    pub fn core(&self) -> crate::Shared<ResolverCore> {
        self.core.clone()
    }
}

impl App for Resolver {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.inner.on_start(now, host);
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        self.inner.on_event(now, event, host);
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        self.inner.poll(now, host);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.inner.next_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = encode_query(0x1234, "kb7uv.ampr.org");
        let (id, name) = decode_query(&q).unwrap();
        assert_eq!(id, 0x1234);
        assert_eq!(name, "kb7uv.ampr.org");
    }

    #[test]
    fn response_roundtrip_with_answer() {
        let addr = Ipv4Addr::new(44, 56, 0, 5);
        let r = encode_response(7, "kb7uv.ampr.org", Some((addr, 300)));
        let (id, name, ans) = decode_response(&r).unwrap();
        assert_eq!(id, 7);
        assert_eq!(name, "kb7uv.ampr.org");
        assert_eq!(ans, Some((addr, 300)));
    }

    #[test]
    fn nxdomain_roundtrip() {
        let r = encode_response(9, "nosuch.ampr.org", None);
        let (id, name, ans) = decode_response(&r).unwrap();
        assert_eq!(id, 9);
        assert_eq!(name, "nosuch.ampr.org");
        assert_eq!(ans, None);
    }

    #[test]
    fn names_are_case_folded() {
        let q = encode_query(1, "KB7UV.Ampr.Org");
        let (_, name) = decode_query(&q).unwrap();
        assert_eq!(name, "kb7uv.ampr.org");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decode_query(&[]).is_none());
        assert!(decode_query(&[0xFF; 7]).is_none());
        assert!(decode_response(&[0x00; 12]).is_none());
        // A response is not a query and vice versa.
        let q = encode_query(3, "a.b");
        assert!(decode_response(&q).is_none());
        let r = encode_response(3, "a.b", None);
        assert!(decode_query(&r).is_none());
    }

    #[test]
    fn truncated_messages_are_rejected() {
        let r = encode_response(5, "host.ampr.org", Some((Ipv4Addr::new(44, 1, 2, 3), 60)));
        for cut in 1..r.len() {
            // Must never panic; short answers may decode as no-answer.
            let _ = decode_response(&r[..r.len() - cut]);
        }
    }

    #[test]
    fn resolver_core_caches_and_expires() {
        let core = ResolverCore::new(Ipv4Addr::new(44, 0, 0, 1));
        let mut c = core.borrow_mut();
        let t0 = SimTime::ZERO;
        assert_eq!(c.resolve("host.ampr.org", t0), None);
        assert_eq!(c.pending, vec!["host.ampr.org".to_string()]);
        let addr = Ipv4Addr::new(44, 56, 0, 5);
        c.cache.insert(
            "host.ampr.org".into(),
            (addr, t0 + SimDuration::from_secs(300)),
        );
        assert_eq!(c.resolve("HOST.ampr.org", t0), Some(addr));
        // Past the TTL the entry is dropped and the name re-queued.
        c.pending.clear();
        let late = t0 + SimDuration::from_secs(301);
        assert_eq!(c.resolve("host.ampr.org", late), None);
        assert!(c.cache.is_empty());
        assert_eq!(c.pending.len(), 1);
    }
}
