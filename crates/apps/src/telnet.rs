//! A telnet-style remote login: scripted client, canned login server.
//!
//! This is the paper's flagship demonstration: *"we were able to telnet
//! from an isolated IBM PC to a system that was on our Ethernet by way of
//! the new gateway"* (§2.3). The server mimics a 4.3BSD login dialogue;
//! the client walks an expect/send script and keeps a transcript.
//!
//! Unlike [`crate::echo`], [`crate::typist`], and [`crate::ftp`], this
//! module deliberately stays on the raw `NetStack::tcp_*` API: it is the
//! in-tree executable reference for event-driven stack programming
//! without the socket layer, so the two styles can be compared
//! side by side (and the raw API keeps a nontrivial exerciser).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::{SockId, StackAction};
use sim::SimTime;

/// Per-session server state.
enum LoginState {
    AwaitLogin,
    AwaitPassword,
    Shell,
}

/// Telnet server counters.
#[derive(Debug, Default)]
pub struct TelnetServerReport {
    /// Sessions accepted.
    pub sessions: u64,
    /// Commands executed at the fake shell.
    pub commands: u64,
}

/// A canned login server ("vax2").
pub struct TelnetServer {
    port: u16,
    hostname: String,
    sessions: HashMap<SockId, (LoginState, Vec<u8>)>,
    report: crate::Shared<TelnetServerReport>,
}

impl TelnetServer {
    /// Creates a server for `port` announcing `hostname`.
    pub fn new(port: u16, hostname: &str) -> TelnetServer {
        TelnetServer {
            port,
            hostname: hostname.to_string(),
            sessions: HashMap::new(),
            report: crate::shared(TelnetServerReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<TelnetServerReport> {
        self.report.clone()
    }

    fn respond(&mut self, state: &mut LoginState, line: &str) -> (String, bool) {
        match state {
            LoginState::AwaitLogin => {
                *state = LoginState::AwaitPassword;
                ("Password:".to_string(), false)
            }
            LoginState::AwaitPassword => {
                *state = LoginState::Shell;
                (
                    format!("Last login: Tue Jun 14 09:21:03\r\n{}% ", self.hostname),
                    false,
                )
            }
            LoginState::Shell => {
                self.report.borrow_mut().commands += 1;
                match line.trim() {
                    "date" => (
                        format!("Tue Jun 14 09:22:41 PDT 1988\r\n{}% ", self.hostname),
                        false,
                    ),
                    "who" => (
                        format!(
                            "bcn  ttyp0  (kb7dz via packet radio)\r\n{}% ",
                            self.hostname
                        ),
                        false,
                    ),
                    "logout" | "exit" => ("Connection closed.\r\n".to_string(), true),
                    other => (
                        format!("{other}: Command not found.\r\n{}% ", self.hostname),
                        false,
                    ),
                }
            }
        }
    }
}

impl App for TelnetServer {
    fn on_start(&mut self, _now: SimTime, host: &mut Host) {
        host.stack.tcp_listen(self.port).expect("telnet port");
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpAccepted { sock, .. } => {
                self.report.borrow_mut().sessions += 1;
                self.sessions
                    .insert(*sock, (LoginState::AwaitLogin, Vec::new()));
                let banner = format!("4.3 BSD UNIX ({})\r\n\r\nlogin: ", self.hostname);
                host.tcp_send(now, *sock, banner.as_bytes());
            }
            StackAction::TcpReadable(sock) => {
                if !self.sessions.contains_key(sock) {
                    return;
                }
                let data = host.tcp_recv(now, *sock);
                let Some((mut state, mut buf)) = self.sessions.remove(sock) else {
                    return;
                };
                buf.extend_from_slice(&data);
                let mut closing = false;
                // Terminals send \r, IP clients send \n: accept both, and
                // skip the empty remainder of a \r\n pair.
                while let Some(pos) = buf.iter().position(|&b| b == b'\n' || b == b'\r') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line).trim().to_string();
                    if line.is_empty() {
                        continue;
                    }
                    let (reply, close) = self.respond(&mut state, &line);
                    host.tcp_send(now, *sock, reply.as_bytes());
                    if close {
                        closing = true;
                        host.tcp_close(now, *sock);
                        break;
                    }
                }
                if !closing {
                    self.sessions.insert(*sock, (state, buf));
                }
            }
            StackAction::TcpPeerClosed(sock) if self.sessions.remove(sock).is_some() => {
                host.tcp_close(now, *sock);
            }
            _ => {}
        }
    }
}

/// Results of a scripted telnet session.
#[derive(Debug, Default)]
pub struct TelnetClientReport {
    /// Everything the server sent.
    pub transcript: String,
    /// Script lines actually sent.
    pub lines_sent: usize,
    /// Session finished (connection closed after script).
    pub done: bool,
    /// When the session ended.
    pub finished_at: Option<SimTime>,
}

/// A scripted telnet client: waits for each expected prompt, sends the
/// paired line.
pub struct TelnetClient {
    dst: Ipv4Addr,
    port: u16,
    /// (expect substring, line to send) pairs, in order.
    script: Vec<(String, String)>,
    step: usize,
    sock: Option<SockId>,
    /// Unmatched server output (prompts are consumed as they match).
    pending: String,
    report: crate::Shared<TelnetClientReport>,
}

impl TelnetClient {
    /// Creates a client that walks `script` against `dst:port`.
    pub fn new(dst: Ipv4Addr, port: u16, script: Vec<(&str, &str)>) -> TelnetClient {
        TelnetClient {
            dst,
            port,
            script: script
                .into_iter()
                .map(|(e, s)| (e.to_string(), s.to_string()))
                .collect(),
            step: 0,
            sock: None,
            pending: String::new(),
            report: crate::shared(TelnetClientReport::default()),
        }
    }

    /// The standard demo script: log in, run `date` and `who`, log out.
    pub fn standard_session(dst: Ipv4Addr, port: u16) -> TelnetClient {
        TelnetClient::new(
            dst,
            port,
            vec![
                ("login: ", "bcn\n"),
                ("Password:", "radio\n"),
                ("% ", "date\n"),
                ("% ", "who\n"),
                ("% ", "logout\n"),
            ],
        )
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<TelnetClientReport> {
        self.report.clone()
    }

    fn try_advance(&mut self, now: SimTime, host: &mut Host) {
        let Some(sock) = self.sock else {
            return;
        };
        while let Some((expect, send)) = self.script.get(self.step) {
            let Some(pos) = self.pending.find(expect.as_str()) else {
                break;
            };
            // Consume through the prompt so it is not matched twice.
            self.pending.drain(..pos + expect.len());
            self.report.borrow_mut().lines_sent += 1;
            let line = send.clone();
            self.step += 1;
            host.tcp_send(now, sock, line.as_bytes());
        }
    }
}

impl App for TelnetClient {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.sock = host.tcp_connect(now, self.dst, self.port).ok();
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpReadable(sock) if Some(*sock) == self.sock => {
                let data = host.tcp_recv(now, *sock);
                let text = String::from_utf8_lossy(&data).to_string();
                self.pending.push_str(&text);
                self.report.borrow_mut().transcript.push_str(&text);
                self.try_advance(now, host);
            }
            StackAction::TcpPeerClosed(sock) if Some(*sock) == self.sock => {
                host.tcp_close(now, *sock);
                let mut r = self.report.borrow_mut();
                r.done = self.step >= self.script.len();
                r.finished_at = Some(now);
            }
            _ => {}
        }
    }
}
