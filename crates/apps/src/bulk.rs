//! Bulk TCP transfer: a sender and a sink, with the retransmission
//! accounting experiment E3 lives on.

use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::{SockId, StackAction};
use netstack::tcp::{TcbStats, TcpConfig};
use sim::{SimDuration, SimTime};

/// Results of one bulk send.
#[derive(Debug, Default)]
pub struct BulkSendReport {
    /// When the connect was issued.
    pub started_at: Option<SimTime>,
    /// When every byte (and the FIN) was acknowledged.
    pub finished_at: Option<SimTime>,
    /// Octets requested.
    pub bytes: usize,
    /// Final TCB statistics (segments, retransmissions, RTO…).
    pub tcb: TcbStats,
    /// True if the connection was reset rather than closed.
    pub reset: bool,
}

impl BulkSendReport {
    /// Transfer duration, if it completed.
    pub fn duration(&self) -> Option<SimDuration> {
        Some(self.finished_at?.saturating_since(self.started_at?))
    }

    /// Goodput in bits per second, if it completed.
    pub fn goodput_bps(&self) -> Option<f64> {
        let d = self.duration()?.as_secs_f64();
        (d > 0.0).then(|| self.bytes as f64 * 8.0 / d)
    }
}

/// A one-shot bulk sender.
pub struct BulkSender {
    dst: Ipv4Addr,
    port: u16,
    total: usize,
    tcp_cfg: Option<TcpConfig>,
    start_delay: SimDuration,
    start_at: Option<SimTime>,
    sock: Option<SockId>,
    connected: bool,
    sent: usize,
    closed: bool,
    report: crate::Shared<BulkSendReport>,
}

impl BulkSender {
    /// Sends `total` octets to `dst:port` once started.
    pub fn new(dst: Ipv4Addr, port: u16, total: usize) -> BulkSender {
        BulkSender {
            dst,
            port,
            total,
            tcp_cfg: None,
            start_delay: SimDuration::ZERO,
            start_at: None,
            sock: None,
            connected: false,
            sent: 0,
            closed: false,
            report: crate::shared(BulkSendReport::default()),
        }
    }

    /// Uses a specific TCP configuration (fixed vs adaptive RTO).
    pub fn with_tcp(mut self, cfg: TcpConfig) -> BulkSender {
        self.tcp_cfg = Some(cfg);
        self
    }

    /// Delays the connect after world start.
    pub fn with_start_delay(mut self, d: SimDuration) -> BulkSender {
        self.start_delay = d;
        self
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<BulkSendReport> {
        self.report.clone()
    }

    /// The socket in use, once connected (diagnostics).
    pub fn socket(&self) -> Option<SockId> {
        self.sock
    }

    fn pattern_chunk(&self, offset: usize, len: usize) -> Vec<u8> {
        (offset..offset + len).map(|i| (i % 251) as u8).collect()
    }

    fn push_data(&mut self, now: SimTime, host: &mut Host) {
        let Some(sock) = self.sock else {
            return;
        };
        // Keep the report's TCB statistics live (diagnostics read them
        // mid-transfer; the values are final once finished_at is set).
        self.report.borrow_mut().tcb = host.stack.tcp_stats(sock);
        if !self.connected {
            return;
        }
        while self.sent < self.total {
            let cap = host.stack.tcp_send_capacity(sock);
            if cap == 0 {
                break;
            }
            let n = cap.min(self.total - self.sent).min(2048);
            let chunk = self.pattern_chunk(self.sent, n);
            let accepted = host.tcp_send(now, sock, &chunk);
            self.sent += accepted;
            if accepted == 0 {
                break;
            }
        }
        if self.sent >= self.total && !self.closed {
            self.closed = true;
            host.tcp_close(now, sock);
        }
        // Completion: everything (data + FIN) acknowledged.
        if self.closed && self.report.borrow().finished_at.is_none() {
            let backlog = host.stack.tcp_send_backlog(sock);
            let state = host.stack.tcp_state(sock);
            use netstack::tcp::TcpState;
            if backlog == 0
                && matches!(
                    state,
                    TcpState::FinWait2 | TcpState::TimeWait | TcpState::Closed
                )
            {
                let mut r = self.report.borrow_mut();
                r.finished_at = Some(now);
                r.tcb = host.stack.tcp_stats(sock);
            }
        }
    }
}

impl App for BulkSender {
    fn on_start(&mut self, now: SimTime, _host: &mut Host) {
        self.start_at = Some(now + self.start_delay);
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        if let Some(at) = self.start_at {
            if at <= now && self.sock.is_none() {
                self.start_at = None;
                let mut r = self.report.borrow_mut();
                r.started_at = Some(now);
                r.bytes = self.total;
                drop(r);
                let result = match self.tcp_cfg {
                    Some(cfg) => host.tcp_connect_with(now, self.dst, self.port, cfg),
                    None => host.tcp_connect(now, self.dst, self.port),
                };
                self.sock = result.ok();
            }
        }
        self.push_data(now, host);
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpConnected(sock) if Some(*sock) == self.sock => {
                self.connected = true;
                self.push_data(now, host);
            }
            StackAction::TcpClosed { sock, reset } if Some(*sock) == self.sock => {
                let mut r = self.report.borrow_mut();
                r.reset = *reset;
                if r.finished_at.is_none() && !reset {
                    r.finished_at = Some(now);
                }
                r.tcb = host.stack.tcp_stats(*sock);
            }
            _ => {}
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.start_at
    }
}

/// Results of a bulk sink.
#[derive(Debug, Default)]
pub struct BulkSinkReport {
    /// Octets received, verified against the sender's pattern.
    pub bytes: usize,
    /// True if any byte broke the pattern.
    pub corrupt: bool,
    /// When the peer's close completed.
    pub eof_at: Option<SimTime>,
}

/// A listener that drains and verifies one or more bulk transfers.
pub struct BulkSink {
    port: u16,
    socks: Vec<(SockId, usize)>,
    report: crate::Shared<BulkSinkReport>,
}

impl BulkSink {
    /// Listens on `port`.
    pub fn new(port: u16) -> BulkSink {
        BulkSink {
            port,
            socks: Vec::new(),
            report: crate::shared(BulkSinkReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<BulkSinkReport> {
        self.report.clone()
    }
}

impl App for BulkSink {
    fn on_start(&mut self, _now: SimTime, host: &mut Host) {
        host.stack.tcp_listen(self.port).expect("sink port");
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        match event {
            StackAction::TcpAccepted { sock, .. } => {
                self.socks.push((*sock, 0));
            }
            StackAction::TcpReadable(sock) => {
                if let Some(entry) = self.socks.iter_mut().find(|(s, _)| s == sock) {
                    let data = host.tcp_recv(now, *sock);
                    let mut r = self.report.borrow_mut();
                    for b in &data {
                        if *b != (entry.1 % 251) as u8 {
                            r.corrupt = true;
                        }
                        entry.1 += 1;
                    }
                    r.bytes += data.len();
                }
            }
            StackAction::TcpPeerClosed(sock) if self.socks.iter().any(|(s, _)| s == sock) => {
                self.report.borrow_mut().eof_at = Some(now);
                host.tcp_close(now, *sock);
            }
            _ => {}
        }
    }
}
