//! §5's distributed callbook service, over UDP.
//!
//! *"With a distributed callbook server, data for a particular country,
//! or part of a country, could be maintained on a system local to that
//! area. Given a call sign, an application running on a PC could
//! determine what area the call sign is from, and then send off a query
//! to the appropriate server."* Protocol: `?CALL` queries; a server
//! answers `OK CALL <record>`, refers with `REFER <ip>`, or `ERR`.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use gateway::world::App;
use gateway::Host;
use netstack::stack::{StackAction, UdpId};
use sim::SimTime;

/// The well-known callbook port.
pub const CALLBOOK_PORT: u16 = 1235;

/// Server counters.
#[derive(Debug, Default)]
pub struct CallbookServerReport {
    /// Queries answered from the local database.
    pub answered: u64,
    /// Queries referred elsewhere.
    pub referred: u64,
    /// Queries that failed.
    pub unknown: u64,
}

/// One region's callbook server.
pub struct CallbookServer {
    udp: Option<UdpId>,
    /// Local records: callsign → holder.
    db: HashMap<String, String>,
    /// Referrals: callsign-prefix → server address.
    referrals: Vec<(String, Ipv4Addr)>,
    report: crate::Shared<CallbookServerReport>,
}

impl CallbookServer {
    /// Creates a server with local records and prefix referrals.
    pub fn new(db: &[(&str, &str)], referrals: &[(&str, Ipv4Addr)]) -> CallbookServer {
        CallbookServer {
            udp: None,
            db: db
                .iter()
                .map(|(c, r)| (c.to_string(), r.to_string()))
                .collect(),
            referrals: referrals
                .iter()
                .map(|(p, ip)| (p.to_string(), *ip))
                .collect(),
            report: crate::shared(CallbookServerReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<CallbookServerReport> {
        self.report.clone()
    }
}

impl App for CallbookServer {
    fn on_start(&mut self, _now: SimTime, host: &mut Host) {
        self.udp = Some(host.stack.udp_bind(CALLBOOK_PORT).expect("callbook port"));
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        let StackAction::UdpReadable(udp) = event else {
            return;
        };
        if Some(*udp) != self.udp {
            return;
        }
        while let Some((src, sport, payload)) = host.stack.udp_recv(*udp) {
            let query = String::from_utf8_lossy(payload.as_slice())
                .trim()
                .to_string();
            let Some(call) = query.strip_prefix('?') else {
                continue;
            };
            let reply = if let Some(record) = self.db.get(call) {
                self.report.borrow_mut().answered += 1;
                format!("OK {call} {record}")
            } else if let Some((_, ip)) = self
                .referrals
                .iter()
                .find(|(prefix, _)| call.starts_with(prefix.as_str()))
            {
                self.report.borrow_mut().referred += 1;
                format!("REFER {ip}")
            } else {
                self.report.borrow_mut().unknown += 1;
                "ERR unknown callsign".to_string()
            };
            host.udp_send(now, *udp, src, sport, reply.into_bytes());
        }
    }
}

/// Client outcome.
#[derive(Debug, Default)]
pub struct CallbookClientReport {
    /// The final answer line, if any.
    pub answer: Option<String>,
    /// Servers contacted along the way.
    pub hops: u32,
    /// Lookup finished.
    pub done: bool,
}

/// A client that resolves one callsign, following referrals.
pub struct CallbookClient {
    first_server: Ipv4Addr,
    callsign: String,
    udp: Option<UdpId>,
    local_port: u16,
    report: crate::Shared<CallbookClientReport>,
}

impl CallbookClient {
    /// Looks up `callsign` starting at `first_server`.
    pub fn new(first_server: Ipv4Addr, callsign: &str, local_port: u16) -> CallbookClient {
        CallbookClient {
            first_server,
            callsign: callsign.to_string(),
            udp: None,
            local_port,
            report: crate::shared(CallbookClientReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<CallbookClientReport> {
        self.report.clone()
    }

    fn query(&mut self, now: SimTime, server: Ipv4Addr, host: &mut Host) {
        let Some(udp) = self.udp else {
            return;
        };
        self.report.borrow_mut().hops += 1;
        let q = format!("?{}", self.callsign);
        host.udp_send(now, udp, server, CALLBOOK_PORT, q.into_bytes());
    }
}

impl App for CallbookClient {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        self.udp = host.stack.udp_bind(self.local_port).ok();
        let server = self.first_server;
        self.query(now, server, host);
    }

    fn on_event(&mut self, now: SimTime, event: &StackAction, host: &mut Host) {
        let StackAction::UdpReadable(udp) = event else {
            return;
        };
        if Some(*udp) != self.udp {
            return;
        }
        while let Some((_src, _sport, payload)) = host.stack.udp_recv(*udp) {
            let line = String::from_utf8_lossy(payload.as_slice())
                .trim()
                .to_string();
            if let Some(target) = line.strip_prefix("REFER ") {
                if let Ok(ip) = target.parse::<Ipv4Addr>() {
                    self.query(now, ip, host);
                    continue;
                }
            }
            let mut r = self.report.borrow_mut();
            r.answer = Some(line);
            r.done = true;
        }
    }
}
