//! Connected-mode AX.25 endpoints: the BBS and terminal users.
//!
//! §1 of the paper describes the pre-IP world these users live in: they
//! *"simply typed streams of data at each other"* or connected to
//! *"packet bulletin board software"*. These apps drive the AX.25
//! level-2 connection machine over a host's tty divert queue — exactly
//! the user-space arrangement §2.4 proposes — and exercise both the BBS
//! experience and the §2.4 application gateway (a terminal user
//! connecting *through* the gateway to a TCP service).

use std::collections::HashMap;

use ax25::addr::Ax25Addr;
use ax25::conn::{ConnConfig, ConnEvent, Connection};
use gateway::world::App;
use gateway::Host;
use sim::SimTime;

/// BBS-side records.
#[derive(Debug, Default)]
pub struct BbsReport {
    /// Connections accepted.
    pub sessions: u64,
    /// Commands handled.
    pub commands: u64,
    /// Messages posted via `S`.
    pub posted: Vec<(String, String)>,
}

struct BbsSession {
    conn: Connection,
    line: Vec<u8>,
    /// Subject of a message being composed, if mid-`S`.
    composing: Option<(String, Vec<String>)>,
}

/// A packet BBS: LIST / READ n / S subject … /EX / QUIT over AX.25.
pub struct BbsServer {
    my_call: Ax25Addr,
    bulletins: Vec<(String, String)>,
    sessions: HashMap<Ax25Addr, BbsSession>,
    report: crate::Shared<BbsReport>,
}

impl BbsServer {
    /// Creates a BBS at `my_call` pre-loaded with bulletins.
    pub fn new(my_call: Ax25Addr, bulletins: &[(&str, &str)]) -> BbsServer {
        BbsServer {
            my_call,
            bulletins: bulletins
                .iter()
                .map(|(s, b)| (s.to_string(), b.to_string()))
                .collect(),
            sessions: HashMap::new(),
            report: crate::shared(BbsReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<BbsReport> {
        self.report.clone()
    }

    fn prompt() -> &'static str {
        "\rBBS> "
    }

    fn execute(&mut self, peer: Ax25Addr, line: &str) -> (String, bool) {
        self.report.borrow_mut().commands += 1;
        let session = self.sessions.get_mut(&peer).expect("session exists");
        if let Some((subject, lines)) = &mut session.composing {
            if line.trim() == "/EX" {
                let posted = (subject.clone(), lines.join("\r"));
                self.bulletins.push(posted.clone());
                self.report.borrow_mut().posted.push(posted);
                session.composing = None;
                return (format!("Message saved.{}", Self::prompt()), false);
            }
            lines.push(line.to_string());
            return (String::new(), false);
        }
        let trimmed = line.trim();
        let upper = trimmed.to_ascii_uppercase();
        if upper == "L" || upper == "LIST" {
            let mut out = String::from("\rBulletins:\r");
            for (i, (subj, _)) in self.bulletins.iter().enumerate() {
                out.push_str(&format!("{:>3} {}\r", i + 1, subj));
            }
            out.push_str(Self::prompt());
            (out, false)
        } else if let Some(n) = upper
            .strip_prefix("R ")
            .or_else(|| upper.strip_prefix("READ "))
        {
            match n.trim().parse::<usize>() {
                Ok(i) if i >= 1 && i <= self.bulletins.len() => {
                    let (subj, body) = &self.bulletins[i - 1];
                    (
                        format!("\rSubject: {subj}\r{body}\r{}", Self::prompt()),
                        false,
                    )
                }
                _ => (format!("No such message.{}", Self::prompt()), false),
            }
        } else if let Some(subject) = trimmed
            .strip_prefix("S ")
            .or_else(|| trimmed.strip_prefix("s "))
        {
            session.composing = Some((subject.to_string(), Vec::new()));
            ("Enter message, /EX to end.\r".to_string(), false)
        } else if upper == "Q" || upper == "QUIT" || upper == "B" || upper == "BYE" {
            ("73!\r".to_string(), true)
        } else {
            (format!("?Unknown command.{}", Self::prompt()), false)
        }
    }

    fn drive(&mut self, now: SimTime, peer: Ax25Addr, events: Vec<ConnEvent>, host: &mut Host) {
        for ev in events {
            match ev {
                ConnEvent::SendFrame(f) => host.send_raw_ax25(now, &f),
                ConnEvent::Established => {
                    self.report.borrow_mut().sessions += 1;
                    let greeting = format!(
                        "[BBS-{}]\rWelcome. L=list R n=read S subj=send Q=quit{}",
                        self.my_call,
                        Self::prompt()
                    );
                    let session = self.sessions.get_mut(&peer).expect("exists");
                    let evs = session.conn.send(now, greeting.as_bytes());
                    self.drive(now, peer, evs, host);
                }
                ConnEvent::Data(data) => {
                    let complete_lines: Vec<String> = {
                        let session = self.sessions.get_mut(&peer).expect("exists");
                        session.line.extend_from_slice(&data);
                        let mut lines = Vec::new();
                        while let Some(pos) =
                            session.line.iter().position(|&b| b == b'\r' || b == b'\n')
                        {
                            let raw: Vec<u8> = session.line.drain(..=pos).collect();
                            lines.push(String::from_utf8_lossy(&raw).trim_end().to_string());
                        }
                        lines
                    };
                    for line in complete_lines {
                        let (reply, quit) = self.execute(peer, &line);
                        if !reply.is_empty() {
                            let session = self.sessions.get_mut(&peer).expect("exists");
                            let evs = session.conn.send(now, reply.as_bytes());
                            self.drive(now, peer, evs, host);
                        }
                        if quit {
                            let session = self.sessions.get_mut(&peer).expect("exists");
                            let evs = session.conn.disconnect(now);
                            self.drive(now, peer, evs, host);
                        }
                    }
                }
                ConnEvent::Released(_) => {
                    self.sessions.remove(&peer);
                }
            }
        }
    }
}

impl App for BbsServer {
    fn poll(&mut self, now: SimTime, host: &mut Host) {
        for frame in host.take_tty_frames() {
            let peer = frame.source;
            self.sessions.entry(peer).or_insert_with(|| BbsSession {
                conn: Connection::new(self.my_call, peer, ConnConfig::default()),
                line: Vec::new(),
                composing: None,
            });
            let events = self
                .sessions
                .get_mut(&peer)
                .expect("just inserted")
                .conn
                .on_frame(now, &frame);
            self.drive(now, peer, events, host);
        }
        let mut due: Vec<Ax25Addr> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.conn.next_deadline().is_some_and(|t| t <= now))
            .map(|(p, _)| *p)
            .collect();
        due.sort();
        for peer in due {
            if let Some(s) = self.sessions.get_mut(&peer) {
                let events = s.conn.on_timer(now);
                self.drive(now, peer, events, host);
            }
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.sessions
            .values()
            .filter_map(|s| s.conn.next_deadline())
            .min()
    }
}

/// Terminal-user outcome.
#[derive(Debug, Default)]
pub struct TerminalReport {
    /// Everything received over the link.
    pub transcript: String,
    /// Lines sent.
    pub lines_sent: usize,
    /// The link connected.
    pub connected: bool,
    /// The link released cleanly after the script.
    pub done: bool,
}

/// A scripted keyboard user on an AX.25 connection: waits for each
/// expected substring, sends the paired line.
pub struct TerminalUser {
    my_call: Ax25Addr,
    remote: Ax25Addr,
    script: Vec<(String, String)>,
    step: usize,
    pending: String,
    conn: Option<Connection>,
    report: crate::Shared<TerminalReport>,
}

impl TerminalUser {
    /// Creates a user that connects `my_call` → `remote` and walks the
    /// expect/send `script`.
    pub fn new(my_call: Ax25Addr, remote: Ax25Addr, script: Vec<(&str, &str)>) -> TerminalUser {
        TerminalUser {
            my_call,
            remote,
            script: script
                .into_iter()
                .map(|(e, s)| (e.to_string(), s.to_string()))
                .collect(),
            step: 0,
            pending: String::new(),
            conn: None,
            report: crate::shared(TerminalReport::default()),
        }
    }

    /// The shared report handle.
    pub fn report(&self) -> crate::Shared<TerminalReport> {
        self.report.clone()
    }

    fn drive(&mut self, now: SimTime, events: Vec<ConnEvent>, host: &mut Host) {
        for ev in events {
            match ev {
                ConnEvent::SendFrame(f) => host.send_raw_ax25(now, &f),
                ConnEvent::Established => {
                    self.report.borrow_mut().connected = true;
                }
                ConnEvent::Data(data) => {
                    let text = String::from_utf8_lossy(&data).to_string();
                    self.pending.push_str(&text);
                    self.report.borrow_mut().transcript.push_str(&text);
                    self.advance_script(now, host);
                }
                ConnEvent::Released(_) => {
                    let mut r = self.report.borrow_mut();
                    r.done = self.step >= self.script.len();
                }
            }
        }
    }

    fn advance_script(&mut self, now: SimTime, host: &mut Host) {
        while let Some((expect, send)) = self.script.get(self.step).cloned() {
            let Some(pos) = self.pending.find(expect.as_str()) else {
                break;
            };
            self.pending.drain(..pos + expect.len());
            self.step += 1;
            self.report.borrow_mut().lines_sent += 1;
            let Some(conn) = &mut self.conn else { break };
            let events = conn.send(now, send.as_bytes());
            self.drive(now, events, host);
        }
    }
}

impl App for TerminalUser {
    fn on_start(&mut self, now: SimTime, host: &mut Host) {
        let mut conn = Connection::new(self.my_call, self.remote, ConnConfig::default());
        let events = conn.connect(now);
        self.conn = Some(conn);
        self.drive(now, events, host);
    }

    fn poll(&mut self, now: SimTime, host: &mut Host) {
        let frames = host.take_tty_frames();
        for frame in frames {
            if frame.source != self.remote {
                continue;
            }
            let Some(conn) = &mut self.conn else {
                continue;
            };
            let events = conn.on_frame(now, &frame);
            self.drive(now, events, host);
        }
        let due = self
            .conn
            .as_ref()
            .and_then(|c| c.next_deadline())
            .is_some_and(|t| t <= now);
        if due {
            let events = self.conn.as_mut().expect("checked").on_timer(now);
            self.drive(now, events, host);
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.conn.as_ref().and_then(|c| c.next_deadline())
    }
}
