//! Property test: two TCBs joined by an arbitrarily lossy, delayless
//! relay still deliver every byte in order, as long as the loss pattern
//! eventually lets retransmissions through.

use netstack::tcp::{Tcb, TcbEvent, TcpConfig, TcpSegment};
use proptest::prelude::*;
use sim::{SimRng, SimTime};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

fn segs(ev: Vec<TcbEvent>, out: &mut VecDeque<TcpSegment>, data: &mut Vec<u8>) {
    for e in ev {
        match e {
            TcbEvent::Transmit(s) => out.push_back(s),
            TcbEvent::DataReadable => {}
            _ => {}
        }
    }
    let _ = data;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random per-segment loss up to 40%: the transfer still completes
    /// exactly, within a bounded number of timer firings.
    #[test]
    fn lossy_link_delivers_exactly_once(
        seed in any::<u64>(),
        loss in 0.0f64..0.4,
        payload_len in 1usize..3000,
    ) {
        let a_addr = (Ipv4Addr::new(10, 0, 0, 1), 1025u16);
        let b_addr = (Ipv4Addr::new(10, 0, 0, 2), 23u16);
        let mut rng = SimRng::seed_from(seed);
        let mut now = SimTime::ZERO;

        let (mut alice, ev) = Tcb::connect(now, a_addr, b_addr, 1, TcpConfig::default());
        let mut to_bob: VecDeque<TcpSegment> = VecDeque::new();
        let mut to_alice: VecDeque<TcpSegment> = VecDeque::new();
        let mut received: Vec<u8> = Vec::new();
        let mut scratch = Vec::new();
        segs(ev, &mut to_bob, &mut scratch);

        let mut bob: Option<Tcb> = None;
        let data: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let mut queued = false;
        let mut done = false;

        // Event loop: deliver (or drop) one queued segment at a time,
        // fire timers when queues drain.
        for _ in 0..200_000 {
            if let Some(seg) = to_bob.pop_front() {
                if rng.chance(loss) {
                    continue;
                }
                #[allow(clippy::collapsible_match)]
                match &mut bob {
                    None if seg.flags.syn && !seg.flags.ack => {
                        let (b, ev) =
                            Tcb::accept(now, b_addr, a_addr, &seg, 900, TcpConfig::default());
                        bob = Some(b);
                        segs(ev, &mut to_alice, &mut scratch);
                    }
                    Some(b) => {
                        let ev = b.on_segment(now, &seg);
                        for e in ev {
                            match e {
                                TcbEvent::Transmit(s) => to_alice.push_back(s),
                                TcbEvent::DataReadable => {
                                    let (d, ev2) = b.recv(now);
                                    received.extend(d);
                                    segs(ev2, &mut to_alice, &mut scratch);
                                }
                                _ => {}
                            }
                        }
                    }
                    None => {}
                }
                continue;
            }
            if let Some(seg) = to_alice.pop_front() {
                if rng.chance(loss) {
                    continue;
                }
                let ev = alice.on_segment(now, &seg);
                for e in ev {
                    match e {
                        TcbEvent::Transmit(s) => to_bob.push_back(s),
                        TcbEvent::Connected
                            if !queued => {
                                queued = true;
                                let (n, ev2) = alice.send(now, &data);
                                prop_assert!(n <= data.len());
                                segs(ev2, &mut to_bob, &mut scratch);
                            }
                        _ => {}
                    }
                }
                continue;
            }
            // Queues empty: top up unqueued data, else fire a timer.
            if queued && alice.send_capacity() > 0 && received.len() < data.len() {
                let already = data.len() - (data.len() - received.len()).min(data.len());
                let _ = already;
            }
            if queued {
                // Keep feeding until the whole payload is buffered.
                let buffered = alice.send_backlog();
                let fed = data.len().min(received.len() + buffered + alice.send_capacity());
                if received.len() + buffered < data.len() {
                    let lo = received.len() + buffered;
                    let (_, ev2) = alice.send(now, &data[lo..fed.max(lo)]);
                    segs(ev2, &mut to_bob, &mut scratch);
                }
            }
            if received.len() >= data.len() {
                done = true;
                break;
            }
            let next = [alice.next_deadline(), bob.as_ref().and_then(|b| b.next_deadline())]
                .into_iter()
                .flatten()
                .min();
            match next {
                Some(t) => {
                    now = now.max(t);
                    let ev = alice.on_timer(now);
                    segs(ev, &mut to_bob, &mut scratch);
                    if let Some(b) = &mut bob {
                        let ev = b.on_timer(now);
                        segs(ev, &mut to_alice, &mut scratch);
                    }
                }
                None => break,
            }
        }
        prop_assert!(done, "transfer stalled: got {}/{} (loss {loss:.2})", received.len(), data.len());
        prop_assert_eq!(&received[..], &data[..], "bytes must arrive in order, exactly once");
    }
}
