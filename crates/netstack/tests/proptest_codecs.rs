//! Property tests over the netstack codecs and the fragmentation /
//! reassembly pipeline.

use netstack::icmp::{GateAuth, IcmpMessage, UnreachCode};
use netstack::ip::{fragment, FragResult, Ipv4Packet, Proto, Reassembler};
use netstack::tcp::{TcpFlags, TcpSegment};
use netstack::udp::UdpDatagram;
use proptest::prelude::*;
use sim::SimTime;
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

prop_compose! {
    fn arb_packet()(
        src in arb_ip(),
        dst in arb_ip(),
        proto in prop_oneof![Just(Proto::Icmp), Just(Proto::Tcp), Just(Proto::Udp), (0u8..=255).prop_map(Proto::from_code)],
        tos in any::<u8>(),
        id in any::<u16>(),
        ttl in 1u8..=64,
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) -> Ipv4Packet {
        let mut p = Ipv4Packet::new(src, dst, proto, payload);
        p.tos = tos;
        p.id = id;
        p.ttl = ttl;
        p
    }
}

proptest! {
    #[test]
    fn ipv4_roundtrip(p in arb_packet()) {
        let bytes = p.encode();
        prop_assert_eq!(Ipv4Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn ipv4_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Ipv4Packet::decode(&bytes);
    }

    #[test]
    fn ipv4_single_byte_corruption_never_yields_wrong_header(
        p in arb_packet(),
        idx in any::<proptest::sample::Index>(),
        delta in 1u8..=255,
    ) {
        let good = p.encode();
        let i = idx.index(netstack::ip::HEADER_LEN); // corrupt the header only
        let mut bad = good.clone();
        bad[i] = bad[i].wrapping_add(delta);
        // Either rejected, or (checksum can't catch reordered words in
        // theory, but single-byte changes it always catches) — assert
        // rejection outright.
        prop_assert!(Ipv4Packet::decode(&bad).is_err());
    }

    /// Fragmenting at any legal MTU and reassembling in any order yields
    /// the original datagram.
    #[test]
    fn fragment_reassemble_any_mtu_any_order(
        p in arb_packet(),
        mtu in 28usize..600,
        shuffle_seed in any::<u64>(),
    ) {
        prop_assume!(!p.is_fragment());
        let mut q = p.clone();
        q.dont_fragment = false;
        let frags = match fragment(q.clone(), mtu) {
            FragResult::Fits(x) => vec![x],
            FragResult::Fragmented(xs) => xs,
            FragResult::WouldFragment => unreachable!("df is clear"),
        };
        for f in &frags {
            prop_assert!(f.total_len() <= mtu.max(netstack::ip::HEADER_LEN + 8));
        }
        let mut order: Vec<usize> = (0..frags.len()).collect();
        let mut rng = sim::SimRng::seed_from(shuffle_seed);
        rng.shuffle(&mut order);
        let mut r = Reassembler::new();
        let mut done = None;
        for i in order {
            if let Some(w) = r.push(SimTime::ZERO, frags[i].clone()) {
                done = Some(w);
            }
        }
        let whole = done.expect("must reassemble");
        prop_assert_eq!(whole.payload, q.payload);
        prop_assert_eq!(whole.src, q.src);
        prop_assert_eq!(whole.dst, q.dst);
    }

    #[test]
    fn tcp_segment_roundtrip(
        src in arb_ip(), dst in arb_ip(),
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        syn in any::<bool>(), ackf in any::<bool>(), fin in any::<bool>(),
        rst in any::<bool>(), psh in any::<bool>(),
        window in any::<u16>(),
        mss in proptest::option::of(any::<u16>()),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let seg = TcpSegment {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags { syn, ack: ackf, fin, rst, psh },
            window, mss, payload,
        };
        let bytes = seg.encode(src, dst);
        prop_assert_eq!(TcpSegment::decode(&bytes, src, dst).unwrap(), seg);
    }

    #[test]
    fn tcp_decode_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..100),
        src in arb_ip(), dst in arb_ip(),
    ) {
        let _ = TcpSegment::decode(&bytes, src, dst);
    }

    #[test]
    fn udp_roundtrip(
        src in arb_ip(), dst in arb_ip(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let dg = UdpDatagram { src_port: sp, dst_port: dp, payload };
        let bytes = dg.encode(src, dst);
        prop_assert_eq!(UdpDatagram::decode(&bytes, src, dst).unwrap(), dg);
    }

    #[test]
    fn icmp_roundtrip(
        which in 0usize..6,
        id in any::<u16>(), seq in any::<u16>(),
        a in arb_ip(), b in arb_ip(),
        ttl in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        call in "[A-Z0-9]{1,6}",
        pw in "[ -~]{0,16}",
        with_auth in any::<bool>(),
    ) {
        let auth = with_auth.then_some(GateAuth { callsign: call, password: pw });
        let msg = match which {
            0 => IcmpMessage::EchoRequest { id, seq, payload },
            1 => IcmpMessage::EchoReply { id, seq, payload },
            2 => IcmpMessage::DestUnreachable { code: UnreachCode::Host, original: payload },
            3 => IcmpMessage::TimeExceeded { original: payload },
            4 => IcmpMessage::GateOpen { amateur: a, foreign: b, ttl_secs: ttl, auth },
            _ => IcmpMessage::GateClose { amateur: a, foreign: b, auth },
        };
        let bytes = msg.encode();
        prop_assert_eq!(IcmpMessage::decode(&bytes).unwrap(), msg);
    }
}
