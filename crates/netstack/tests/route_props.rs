//! Differential properties for the compiled forwarding plane
//! (DESIGN.md §14): the flat-trie fast lookup must answer exactly like
//! the linear first-match oracle over random tables and learned/static
//! churn, and a stack with the per-destination next-hop cache enabled
//! must be observationally identical — actions, stats, and tunnel-map
//! accounting — to an uncached twin, through route churn, tunnel churn,
//! and a generation-counter rollover.

use netstack::ip;
use netstack::route::{Prefix, Route, RouteSource, RouteTable};
use netstack::stack::{IfaceConfig, StackConfig, TunnelMap};
use netstack::{IfaceId, Ipv4Packet, NetStack, Proto};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Addresses clustered in a handful of /24s — amateur and foreign —
/// with tiny host parts so routes and probes collide constantly.
fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    const NETS: [u32; 5] = [
        0x2C18_0000, // 44.24.0.0
        0x2C18_0100, // 44.24.1.0
        0x2C38_0000, // 44.56.0.0
        0x805F_0100, // 128.95.1.0
        0x0A00_0000, // 10.0.0.0
    ];
    (0usize..5, 0u32..8).prop_map(|(net, host)| Ipv4Addr::from(NETS[net] | host))
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    const LENS: [u8; 5] = [0, 8, 16, 24, 32];
    (arb_addr(), 0usize..5).prop_map(|(a, l)| Prefix::new(a, LENS[l]))
}

/// Routes restricted to interfaces `0..ifaces` (the twin-stack test has
/// exactly two; pointing a route at a nonexistent interface would panic
/// identically on both twins, proving nothing).
fn arb_route_on(ifaces: usize) -> impl Strategy<Value = Route> {
    (
        arb_prefix(),
        0usize..ifaces,
        0u8..3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(prefix, iface, metric, learned, gw)| Route {
            prefix,
            via: gw.then(|| Ipv4Addr::new(128, 95, 1, 250)),
            iface: IfaceId::new(iface),
            source: if learned {
                RouteSource::Learned
            } else {
                RouteSource::Static
            },
            metric,
        })
}

/// One step of table churn.
#[derive(Debug, Clone)]
enum TableOp {
    Insert(Route),
    Remove(Prefix),
    RemoveLearned(Prefix),
}

fn arb_table_op() -> impl Strategy<Value = TableOp> {
    arb_table_op_on(3)
}

fn arb_table_op_on(ifaces: usize) -> impl Strategy<Value = TableOp> {
    // The mini-proptest `prop_oneof!` is unweighted; repeat the insert
    // arm to bias toward growing tables.
    prop_oneof![
        arb_route_on(ifaces).prop_map(TableOp::Insert),
        arb_route_on(ifaces).prop_map(TableOp::Insert),
        arb_route_on(ifaces).prop_map(TableOp::Insert),
        arb_route_on(ifaces).prop_map(TableOp::Insert),
        arb_prefix().prop_map(TableOp::Remove),
        arb_prefix().prop_map(TableOp::RemoveLearned),
    ]
}

/// A shared tunnel map with churn and hit/miss accounting, keyed by the
/// destination's /24 — the honest little sibling of the encap table.
#[derive(Debug, Default)]
struct ChurnMapInner {
    map: HashMap<Ipv4Addr, Ipv4Addr>,
    generation: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Default)]
struct ChurnMap(Rc<RefCell<ChurnMapInner>>);

impl ChurnMap {
    fn key(dst: Ipv4Addr) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(dst) & 0xFFFF_FF00)
    }

    fn learn(&self, dst: Ipv4Addr, endpoint: Ipv4Addr) {
        let mut i = self.0.borrow_mut();
        i.map.insert(Self::key(dst), endpoint);
        i.generation = i.generation.wrapping_add(1);
    }

    fn forget(&self, dst: Ipv4Addr) {
        let mut i = self.0.borrow_mut();
        if i.map.remove(&Self::key(dst)).is_some() {
            i.generation = i.generation.wrapping_add(1);
        }
    }

    fn counters(&self) -> (u64, u64) {
        let i = self.0.borrow();
        (i.hits, i.misses)
    }
}

impl TunnelMap for ChurnMap {
    fn endpoint(&mut self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
        let mut i = self.0.borrow_mut();
        let r = i.map.get(&Self::key(dst)).copied();
        if r.is_some() {
            i.hits += 1;
        } else {
            i.misses += 1;
        }
        r
    }

    fn generation(&self) -> u64 {
        self.0.borrow().generation
    }

    fn note_cached_endpoint(&mut self, hit: bool) {
        let mut i = self.0.borrow_mut();
        if hit {
            i.hits += 1;
        } else {
            i.misses += 1;
        }
    }
}

/// One step against the twin stacks.
#[derive(Debug, Clone)]
enum StackOp {
    /// `send_ip` an ICMP-ish packet (full path: tunnel consult + route).
    Send(Ipv4Addr),
    /// `send_ip` an already-IPIP packet (routed path, no tunnel consult).
    SendIpip(Ipv4Addr),
    /// `udp_send` (the socket source-selection lookup site).
    Udp(Ipv4Addr),
    /// Route churn on both twins.
    Table(TableOp),
    /// Tunnel map learns dst/24 → endpoint on both twins.
    Learn(Ipv4Addr, u8),
    /// Tunnel map forgets dst/24 on both twins.
    Forget(Ipv4Addr),
}

fn arb_stack_op() -> impl Strategy<Value = StackOp> {
    prop_oneof![
        arb_addr().prop_map(StackOp::Send),
        arb_addr().prop_map(StackOp::Send),
        arb_addr().prop_map(StackOp::Send),
        arb_addr().prop_map(StackOp::SendIpip),
        arb_addr().prop_map(StackOp::Udp),
        arb_table_op_on(2).prop_map(StackOp::Table),
        arb_table_op_on(2).prop_map(StackOp::Table),
        (arb_addr(), 1u8..4).prop_map(|(a, e)| StackOp::Learn(a, e)),
        arb_addr().prop_map(StackOp::Forget),
    ]
}

fn build_stack(fwd_cache_bits: u8, tunnels: ChurnMap) -> NetStack {
    let mut s = NetStack::new(StackConfig {
        forwarding: true,
        ipip: true,
        fwd_cache_bits,
        ..StackConfig::default()
    });
    s.add_iface(IfaceConfig {
        name: "qe0".into(),
        addr: Ipv4Addr::new(128, 95, 1, 1),
        prefix_len: 24,
        mtu: 1500,
    });
    s.add_iface(IfaceConfig {
        name: "pr0".into(),
        addr: Ipv4Addr::new(44, 24, 0, 1),
        prefix_len: 24,
        mtu: 256,
    });
    s.routes_mut().add(
        Prefix::default_route(),
        Some(Ipv4Addr::new(128, 95, 1, 250)),
        IfaceId::new(0),
    );
    s.set_tunnel_map(Box::new(tunnels));
    s
}

/// The stats fields the cache is allowed to touch are its own counters;
/// everything else must match the uncached twin exactly.
fn behavior_stats(s: &NetStack) -> (u64, u64, u64, u64, u64) {
    let st = s.stats();
    (
        st.ip_out,
        st.no_route,
        st.ipip_out,
        st.forwarded,
        st.ttl_expired,
    )
}

proptest! {
    /// Compiled LPM ≡ linear oracle: after every mutation, a probe sweep
    /// over the table's own prefixes plus strays answers identically on
    /// the fast and oracle paths.
    #[test]
    fn compiled_lookup_matches_linear_under_churn(
        ops in proptest::collection::vec(arb_table_op(), 1..80),
        probes in proptest::collection::vec(arb_addr(), 8..24),
    ) {
        let mut rt = RouteTable::new();
        for op in &ops {
            match op.clone() {
                TableOp::Insert(r) => rt.insert(r),
                TableOp::Remove(p) => { rt.remove(p); }
                TableOp::RemoveLearned(p) => { rt.remove_learned(p); }
            }
            for &dst in &probes {
                let slow = rt.lookup_route(dst).copied();
                let fast = rt.lookup_route_fast(dst).copied();
                prop_assert_eq!(
                    fast, slow,
                    "fast ≠ linear for {} after {:?} ({} routes)",
                    dst, op, rt.routes().len()
                );
            }
        }
    }

    /// A cached stack is observationally identical to an uncached twin:
    /// same egress actions in the same order, same behavioural stats,
    /// same tunnel-map hit/miss accounting — through route churn, tunnel
    /// churn, and a route-generation rollover (both twins start at
    /// u64::MAX − 2 so the counter wraps mid-stream).
    #[test]
    fn cached_stack_matches_uncached_twin(
        ops in proptest::collection::vec(arb_stack_op(), 1..120),
        cache_bits in prop_oneof![Just(2u8), Just(6u8), Just(10u8)],
    ) {
        let map_a = ChurnMap::default();
        let map_b = ChurnMap::default();
        let mut cached = build_stack(cache_bits, map_a.clone());
        let mut plain = build_stack(0, map_b.clone());
        cached.routes_mut().force_generation(u64::MAX - 2);
        plain.routes_mut().force_generation(u64::MAX - 2);
        let udp_a = cached.udp_bind(1234).unwrap();
        let udp_b = plain.udp_bind(1234).unwrap();
        for (i, op) in ops.iter().enumerate() {
            match op.clone() {
                StackOp::Send(dst) => {
                    let p = Ipv4Packet::new(Ipv4Addr::UNSPECIFIED, dst, Proto::Icmp, vec![0; 8]);
                    cached.send_ip(p.clone());
                    plain.send_ip(p);
                }
                StackOp::SendIpip(dst) => {
                    let inner =
                        Ipv4Packet::new(Ipv4Addr::new(44, 24, 0, 1), dst, Proto::Icmp, vec![0; 8])
                            .encode();
                    let p = Ipv4Packet::new(
                        Ipv4Addr::UNSPECIFIED,
                        dst,
                        Proto::Other(ip::IPIP),
                        inner,
                    );
                    cached.send_ip(p.clone());
                    plain.send_ip(p);
                }
                StackOp::Udp(dst) => {
                    cached.udp_send(udp_a, dst, 53, vec![1, 2, 3]);
                    plain.udp_send(udp_b, dst, 53, vec![1, 2, 3]);
                }
                StackOp::Table(top) => {
                    for rt in [cached.routes_mut(), plain.routes_mut()] {
                        match top.clone() {
                            TableOp::Insert(r) => rt.insert(r),
                            TableOp::Remove(p) => { rt.remove(p); }
                            TableOp::RemoveLearned(p) => { rt.remove_learned(p); }
                        }
                    }
                }
                StackOp::Learn(dst, e) => {
                    let endpoint = Ipv4Addr::new(128, 95, 1, e);
                    map_a.learn(dst, endpoint);
                    map_b.learn(dst, endpoint);
                }
                StackOp::Forget(dst) => {
                    map_a.forget(dst);
                    map_b.forget(dst);
                }
            }
            let acts_a = cached.drain_actions();
            let acts_b = plain.drain_actions();
            prop_assert_eq!(
                &acts_a, &acts_b,
                "actions diverged at step {} on {:?}", i, op
            );
            prop_assert_eq!(
                behavior_stats(&cached), behavior_stats(&plain),
                "stats diverged at step {} on {:?}", i, op
            );
            prop_assert_eq!(
                map_a.counters(), map_b.counters(),
                "tunnel accounting diverged at step {} on {:?}", i, op
            );
        }
        let st = cached.stats();
        prop_assert!(st.fwd_cache_stale <= st.fwd_cache_misses, "stale ⊆ misses");
        prop_assert_eq!(plain.stats().fwd_cache_hits, 0, "disabled cache never hits");
        prop_assert_eq!(plain.stats().fwd_cache_misses, 0, "disabled cache never probes");
    }
}
