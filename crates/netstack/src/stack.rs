//! The per-host network stack: IP input/output, demux, sockets, timers.
//!
//! One `NetStack` instance plays the role that "the existing Ultrix
//! network support" (Figure 2) plays on the MicroVAX and that the KA9Q
//! package plays on the PC: everything above the drivers and below the
//! applications. It is sans-io — drivers feed [`NetStack::input`], the
//! stack returns [`StackAction`]s, and link-layer concerns (ARP, AX.25 or
//! Ethernet encapsulation) stay in the `gateway` crate's drivers, as they
//! do in the paper.
//!
//! Forwarding is deliberately split: a packet that is not for this host
//! surfaces as [`StackAction::ForwardNeeded`], and the owner (the gateway,
//! which wants to apply §4.3 access control first) calls
//! [`NetStack::forward`] to complete it. A plain host leaves forwarding
//! disabled and the packet is dropped.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use sim::{BufPool, PacketBuf, SimTime};

use crate::fwd::{FwdCache, FwdDecision, FwdKind, FwdProbe};
use crate::icmp::{IcmpMessage, UnreachCode};
use crate::ip::{self, FragResult, Ipv4Packet, Proto, Reassembler};
use crate::route::{NextHop, Prefix, RouteTable};
use crate::tcp::{RtoPolicy, Tcb, TcbEvent, TcpConfig, TcpSegment, TcpState};
use crate::udp::UdpDatagram;
use crate::NetError;

/// Capacity of the pooled buffers that carry received UDP payloads. Most
/// datagrams in the testbed (RIP-44 updates, callbook queries, DNS) fit
/// well inside this; a larger payload simply grows its buffer once.
const UDP_RX_BUF: usize = 512;

/// Identifies an interface within one host's stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(usize);

impl IfaceId {
    /// Creates an id from an index (use the value returned by
    /// [`NetStack::add_iface`] in normal code).
    pub fn new(n: usize) -> IfaceId {
        IfaceId(n)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An interface's IP-level parameters (the link itself lives elsewhere).
#[derive(Debug, Clone)]
pub struct IfaceConfig {
    /// Name for traces ("qe0", "pr0"…).
    pub name: String,
    /// The interface's IP address.
    pub addr: Ipv4Addr,
    /// Prefix length of the attached subnet.
    pub prefix_len: u8,
    /// Link MTU in octets.
    pub mtu: usize,
}

/// A TCP socket handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockId(usize);

/// A TCP listener handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ListenerId(usize);

/// A UDP socket handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpId(usize);

/// Host-level stack configuration.
#[derive(Debug, Clone, Copy)]
pub struct StackConfig {
    /// TCP defaults for sockets created on this host (§4.1: set
    /// `tcp.rto` to [`RtoPolicy::Fixed`] to model the naive peer).
    pub tcp: TcpConfig,
    /// Surface not-for-us packets as [`StackAction::ForwardNeeded`].
    pub forwarding: bool,
    /// Answer echo requests.
    pub icmp_echo_reply: bool,
    /// Decapsulate IPIP (protocol 4) packets addressed to this host and
    /// re-run the inner packet through input. Off, protocol 4 gets the
    /// stock protocol-unreachable treatment.
    pub ipip: bool,
    /// Clamp the TCP MSS — both what a connection advertises and what it
    /// uses — to the MTU of the interface it travels over, minus the
    /// 40-byte TCP/IP header. On an AX.25 radio interface (MTU 256) that
    /// is 216, so locally originated TCP never triggers E9-style
    /// fragmentation. Off by default: the 1988 stacks did not clamp, and
    /// E9's fragmentation experiment depends on the historic behaviour.
    pub clamp_mss: bool,
    /// log2 of the per-destination next-hop cache size (see
    /// [`crate::fwd`]); 0 disables the cache. Off by default — host
    /// stacks exist by the tens of thousands in the city worlds and
    /// carry two routes; only forwarding-heavy gateways (E18) enable it.
    pub fwd_cache_bits: u8,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            tcp: TcpConfig::default(),
            forwarding: false,
            icmp_echo_reply: true,
            ipip: false,
            clamp_mss: false,
            fwd_cache_bits: 0,
        }
    }
}

/// An encapsulation table the stack consults on output *before* the plain
/// routing table: if it returns a tunnel endpoint for the destination, the
/// packet is wrapped in an outer IPIP header addressed to that endpoint
/// and routing proceeds on the outer header instead.
///
/// The implementation (the `encap` crate's shared table) owns hit/miss
/// accounting and entry expiry; the stack only asks the question. Expiry
/// is deadline-driven by the table's owner, which is why this hook takes
/// no clock.
pub trait TunnelMap: std::fmt::Debug {
    /// The tunnel endpoint whose encapsulation should carry `dst`, if any.
    fn endpoint(&mut self, dst: Ipv4Addr) -> Option<Ipv4Addr>;

    /// Bumped (wrapping) whenever the mapping changes — a learn, expiry,
    /// or static edit. The stack's next-hop cache stamps this alongside
    /// the route generation; a bump invalidates every memoized tunnel
    /// decision in O(1). The default (a constant) suits maps that never
    /// change after installation.
    fn generation(&self) -> u64 {
        0
    }

    /// Accounting hook for a memoized consultation: the next-hop cache
    /// replayed a decision that embeds this map's answer (`hit` mirrors
    /// whether [`endpoint`](Self::endpoint) had returned `Some`), so a
    /// map keeping hit/miss statistics can keep its aggregates exact
    /// without re-running the lookup. Default: no accounting.
    fn note_cached_endpoint(&mut self, hit: bool) {
        let _ = hit;
    }
}

/// Actions the stack asks its owner to perform, and events it reports.
#[derive(Debug, Clone, PartialEq)]
pub enum StackAction {
    /// Transmit `packet` on `iface` toward `next_hop` (the driver
    /// resolves the link address — ARP in this workspace).
    Egress {
        /// Output interface.
        iface: IfaceId,
        /// IP address to resolve at the link layer.
        next_hop: Ipv4Addr,
        /// The (already fragmented, if needed) packet.
        packet: Ipv4Packet,
    },
    /// A packet not addressed to this host arrived and forwarding is on;
    /// the owner should apply policy and then call [`NetStack::forward`].
    ForwardNeeded {
        /// The interface it arrived on.
        ingress: IfaceId,
        /// The packet (TTL not yet decremented).
        packet: Ipv4Packet,
    },
    /// A TCP connect completed.
    TcpConnected(SockId),
    /// A listener produced a new connection.
    TcpAccepted {
        /// The listener that matched.
        listener: ListenerId,
        /// The new socket.
        sock: SockId,
    },
    /// New data is readable on a socket.
    TcpReadable(SockId),
    /// The peer closed its direction.
    TcpPeerClosed(SockId),
    /// The connection ended.
    TcpClosed {
        /// Which socket.
        sock: SockId,
        /// True for RST terminations.
        reset: bool,
    },
    /// A datagram is readable on a UDP socket.
    UdpReadable(UdpId),
    /// An echo reply arrived for a ping this host sent.
    PingReply {
        /// Who answered.
        from: Ipv4Addr,
        /// Echo identifier.
        id: u16,
        /// Echo sequence number.
        seq: u16,
        /// Payload length.
        len: usize,
    },
    /// A gateway-control ICMP message arrived (§4.3); the gateway crate
    /// interprets it.
    GateControl {
        /// Claimed sender.
        from: Ipv4Addr,
        /// Which interface it arrived on.
        ingress: IfaceId,
        /// The message (GateOpen / GateClose).
        message: IcmpMessage,
    },
    /// An ICMP error arrived concerning traffic we sent.
    IcmpProblem {
        /// Who reported it.
        from: Ipv4Addr,
        /// The message.
        message: IcmpMessage,
    },
}

/// Stack counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackStats {
    /// IP packets received on all interfaces.
    pub ip_in: u64,
    /// IP packets (fragments counted individually) emitted.
    pub ip_out: u64,
    /// Packets surfaced for forwarding.
    pub forward_requests: u64,
    /// Packets actually forwarded.
    pub forwarded: u64,
    /// Packets dropped: not for us, forwarding off.
    pub not_for_us: u64,
    /// Packets dropped: parse/checksum failures.
    pub bad_packets: u64,
    /// Output failures: no route.
    pub no_route: u64,
    /// TTL expiries while forwarding.
    pub ttl_expired: u64,
    /// Echo requests answered.
    pub echo_replies_sent: u64,
    /// Packets wrapped in an outer IPIP header on output.
    pub ipip_out: u64,
    /// IPIP packets decapsulated on input.
    pub ipip_in: u64,
    /// SYNs refused with RST because a listener's accept queue was full.
    pub accept_overflow: u64,
    /// Next-hop cache hits (forwarding decisions replayed without a
    /// tunnel consult or table walk).
    pub fwd_cache_hits: u64,
    /// Next-hop cache misses (empty or foreign slot; the decision was
    /// computed and installed).
    pub fwd_cache_misses: u64,
    /// Misses whose slot held this destination under an old route/tunnel
    /// generation — the churn-invalidation count. Always ≤ misses.
    pub fwd_cache_stale: u64,
}

#[derive(Debug)]
struct TcpSock {
    tcb: Tcb,
    /// Listener that spawned this socket, if passive.
    parent: Option<ListenerId>,
    /// True once the application accepted (claimed) this passive socket.
    /// Claimed sockets no longer count against the listener's backlog.
    claimed: bool,
}

#[derive(Debug)]
struct Listener {
    port: u16,
    cfg: TcpConfig,
    /// Accept-queue bound: at most this many unclaimed, live children.
    /// `None` (the legacy [`NetStack::tcp_listen`] path) means unbounded.
    backlog: Option<usize>,
}

#[derive(Debug)]
struct UdpSock {
    port: u16,
    rx: VecDeque<(Ipv4Addr, u16, PacketBuf)>,
}

/// A host's network stack. See the [module docs](self).
#[derive(Debug)]
pub struct NetStack {
    cfg: StackConfig,
    ifaces: Vec<IfaceConfig>,
    routes: RouteTable,
    reasm: Reassembler,
    socks: Vec<TcpSock>,
    listeners: Vec<Listener>,
    udp: Vec<UdpSock>,
    ip_id: u16,
    iss: u32,
    next_port: u16,
    tunnels: Option<Box<dyn TunnelMap>>,
    /// Per-destination memoized forwarding decisions (see [`crate::fwd`]).
    fwd_cache: FwdCache,
    stats: StackStats,
    /// Actions produced by socket calls, awaiting [`NetStack::drain_actions`].
    pending: Vec<StackAction>,
    /// Pooled storage for received UDP payloads.
    pool: BufPool,
}

impl NetStack {
    /// Creates a stack with no interfaces.
    pub fn new(cfg: StackConfig) -> NetStack {
        NetStack {
            cfg,
            ifaces: Vec::new(),
            routes: RouteTable::new(),
            reasm: Reassembler::new(),
            socks: Vec::new(),
            listeners: Vec::new(),
            udp: Vec::new(),
            ip_id: 1,
            iss: 1_000_000,
            next_port: 1024,
            tunnels: None,
            fwd_cache: FwdCache::new(cfg.fwd_cache_bits),
            stats: StackStats::default(),
            pending: Vec::new(),
            pool: BufPool::new(UDP_RX_BUF),
        }
    }

    /// Turns IP forwarding on or off at runtime. Hosts built as plain
    /// endpoints leave it off; test and experiment harnesses that need a
    /// non-gateway box to route (E17's flood injector) flip it here.
    pub fn set_forwarding(&mut self, on: bool) {
        self.cfg.forwarding = on;
    }

    /// Takes every action the stack has produced since the last drain.
    ///
    /// Socket and output calls (`tcp_send`, `udp_send`, `ping`, …) no
    /// longer thread an `out: &mut Vec<StackAction>` through every
    /// signature; they queue their actions here instead, in the exact
    /// order they were produced. Call this after one or more operations
    /// and hand the result to the driver layer.
    pub fn drain_actions(&mut self) -> Vec<StackAction> {
        std::mem::take(&mut self.pending)
    }

    /// Appends pending actions to `out`, preserving `out`'s capacity —
    /// the zero-steady-state-allocation form of [`Self::drain_actions`].
    pub fn drain_actions_into(&mut self, out: &mut Vec<StackAction>) {
        out.append(&mut self.pending);
    }

    /// True when no produced action is awaiting a drain.
    pub fn actions_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Installs the encapsulation table consulted by the output path (see
    /// [`TunnelMap`]). Gateways participating in the tunnel mesh share the
    /// table with their route-exchange service.
    pub fn set_tunnel_map(&mut self, map: Box<dyn TunnelMap>) {
        self.tunnels = Some(map);
        // Decisions memoized without (or with the previous) map embed its
        // answers; the new map may report the same generation, so a stamp
        // comparison cannot catch the swap — drop everything instead.
        self.fwd_cache = FwdCache::new(self.cfg.fwd_cache_bits);
    }

    /// Adds an interface and its connected route.
    pub fn add_iface(&mut self, cfg: IfaceConfig) -> IfaceId {
        let id = IfaceId(self.ifaces.len());
        self.routes
            .add(Prefix::new(cfg.addr, cfg.prefix_len), None, id);
        self.ifaces.push(cfg);
        id
    }

    /// An interface's configuration.
    pub fn iface(&self, id: IfaceId) -> &IfaceConfig {
        &self.ifaces[id.0]
    }

    /// Mutable interface configuration (tests shrink MTUs, etc.).
    pub fn iface_mut(&mut self, id: IfaceId) -> &mut IfaceConfig {
        &mut self.ifaces[id.0]
    }

    /// Mutable routing table (experiments edit routes directly).
    pub fn routes_mut(&mut self) -> &mut RouteTable {
        &mut self.routes
    }

    /// The routing table.
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// True if `ip` is one of this host's addresses.
    pub fn is_local_addr(&self, ip: Ipv4Addr) -> bool {
        ip == Ipv4Addr::BROADCAST || self.ifaces.iter().any(|i| i.addr == ip)
    }

    /// Stack counters.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    // --- Output path ------------------------------------------------------

    fn next_ip_id(&mut self) -> u16 {
        let id = self.ip_id;
        self.ip_id = self.ip_id.wrapping_add(1).max(1);
        id
    }

    /// Routes, fragments, and emits a locally generated packet.
    ///
    /// The encapsulation table (if installed) is consulted *before* the
    /// routing table: a destination matched there is wrapped in an outer
    /// IPIP header toward the tunnel endpoint, and the routing decision is
    /// then made for the endpoint instead. Packets that are already IPIP
    /// and local destinations are never wrapped.
    ///
    /// The whole decision — tunnel endpoint, matched prefix, egress
    /// interface, next hop, or the absence of a route — is memoized in
    /// the per-destination cache when enabled (see [`crate::fwd`]); the
    /// uncached computation walks the compiled LPM, with the linear table
    /// scan surviving only as the differential oracle.
    pub fn send_ip(&mut self, mut packet: Ipv4Packet) {
        let dst = packet.dst;
        let wants_tunnel = packet.proto != Proto::Other(ip::IPIP) && !self.is_local_addr(dst);
        let kind = if wants_tunnel {
            FwdKind::Full
        } else {
            FwdKind::Routed
        };
        let route_gen = self.routes.generation();
        let tunnel_gen = self.tunnels.as_ref().map_or(0, |t| t.generation());
        if self.fwd_cache.enabled() {
            match self.fwd_cache.probe(dst, kind, route_gen, tunnel_gen) {
                FwdProbe::Hit(decision) => {
                    self.stats.fwd_cache_hits += 1;
                    let encap = decision.encap();
                    if wants_tunnel {
                        if let Some(tunnels) = self.tunnels.as_mut() {
                            tunnels.note_cached_endpoint(encap.is_some());
                        }
                    }
                    if encap.is_some() {
                        self.stats.ipip_out += 1;
                    }
                    match decision {
                        FwdDecision::NoRoute { .. } => self.stats.no_route += 1,
                        FwdDecision::Via {
                            iface, hop, encap, ..
                        } => {
                            if let Some(endpoint) = encap {
                                let inner = packet.encode();
                                packet = Ipv4Packet::new(
                                    Ipv4Addr::UNSPECIFIED,
                                    endpoint,
                                    Proto::Other(ip::IPIP),
                                    inner,
                                );
                            }
                            self.emit_on(iface, hop, packet);
                        }
                    }
                    return;
                }
                FwdProbe::Stale => {
                    self.stats.fwd_cache_stale += 1;
                    self.stats.fwd_cache_misses += 1;
                }
                FwdProbe::Miss => self.stats.fwd_cache_misses += 1,
            }
        }
        let mut encap = None;
        if wants_tunnel {
            if let Some(tunnels) = self.tunnels.as_mut() {
                if let Some(endpoint) = tunnels.endpoint(dst) {
                    encap = Some(endpoint);
                    self.stats.ipip_out += 1;
                    let inner = packet.encode();
                    packet = Ipv4Packet::new(
                        Ipv4Addr::UNSPECIFIED,
                        endpoint,
                        Proto::Other(ip::IPIP),
                        inner,
                    );
                }
            }
        }
        let decision = match self.routes.lookup_route_fast(packet.dst) {
            None => FwdDecision::NoRoute { encap },
            Some(r) => FwdDecision::Via {
                prefix: r.prefix,
                iface: r.iface,
                hop: r.via.unwrap_or(packet.dst),
                encap,
            },
        };
        if self.fwd_cache.enabled() {
            self.fwd_cache
                .store(dst, kind, route_gen, tunnel_gen, decision);
        }
        match decision {
            FwdDecision::NoRoute { .. } => self.stats.no_route += 1,
            FwdDecision::Via { iface, hop, .. } => self.emit_on(iface, hop, packet),
        }
    }

    /// The tail of the output path once the decision is made: source and
    /// id fill, fragmentation, egress actions.
    fn emit_on(&mut self, iface: IfaceId, hop: Ipv4Addr, mut packet: Ipv4Packet) {
        if packet.src.is_unspecified() {
            packet.src = self.ifaces[iface.0].addr;
        }
        if packet.id == 0 {
            packet.id = self.next_ip_id();
        }
        let mtu = self.ifaces[iface.0].mtu;
        match ip::fragment(packet, mtu) {
            FragResult::Fits(p) => {
                self.stats.ip_out += 1;
                self.pending.push(StackAction::Egress {
                    iface,
                    next_hop: hop,
                    packet: p,
                });
            }
            FragResult::Fragmented(ps) => {
                for p in ps {
                    self.stats.ip_out += 1;
                    self.pending.push(StackAction::Egress {
                        iface,
                        next_hop: hop,
                        packet: p,
                    });
                }
            }
            FragResult::WouldFragment => {
                self.stats.no_route += 1; // account as undeliverable
            }
        }
    }

    /// Route lookup for the socket source-selection sites (`tcp_connect`,
    /// `udp_send`): the [`FwdKind::Routed`] face of the next-hop cache —
    /// no tunnel consultation — falling back to the compiled LPM.
    fn lookup_routed(&mut self, dst: Ipv4Addr) -> Option<NextHop> {
        let route_gen = self.routes.generation();
        let tunnel_gen = self.tunnels.as_ref().map_or(0, |t| t.generation());
        if self.fwd_cache.enabled() {
            match self
                .fwd_cache
                .probe(dst, FwdKind::Routed, route_gen, tunnel_gen)
            {
                FwdProbe::Hit(decision) => {
                    self.stats.fwd_cache_hits += 1;
                    return match decision {
                        FwdDecision::NoRoute { .. } => None,
                        FwdDecision::Via { iface, hop, .. } => Some(NextHop { iface, hop }),
                    };
                }
                FwdProbe::Stale => {
                    self.stats.fwd_cache_stale += 1;
                    self.stats.fwd_cache_misses += 1;
                }
                FwdProbe::Miss => self.stats.fwd_cache_misses += 1,
            }
        }
        let decision = match self.routes.lookup_route_fast(dst) {
            None => FwdDecision::NoRoute { encap: None },
            Some(r) => FwdDecision::Via {
                prefix: r.prefix,
                iface: r.iface,
                hop: r.via.unwrap_or(dst),
                encap: None,
            },
        };
        if self.fwd_cache.enabled() {
            self.fwd_cache
                .store(dst, FwdKind::Routed, route_gen, tunnel_gen, decision);
        }
        match decision {
            FwdDecision::NoRoute { .. } => None,
            FwdDecision::Via { iface, hop, .. } => Some(NextHop { iface, hop }),
        }
    }

    /// Completes a forward the owner approved: TTL, fragmentation, egress.
    /// Emits ICMP time-exceeded back to the source on TTL expiry.
    pub fn forward(&mut self, mut packet: Ipv4Packet) {
        if packet.ttl <= 1 {
            self.stats.ttl_expired += 1;
            let quote = IcmpMessage::quote_original(&packet.encode());
            self.send_icmp(packet.src, IcmpMessage::TimeExceeded { original: quote });
            return;
        }
        packet.ttl -= 1;
        self.stats.forwarded += 1;
        self.send_ip(packet);
    }

    /// Builds and sends an ICMP message to `dst`.
    pub fn send_icmp(&mut self, dst: Ipv4Addr, msg: IcmpMessage) {
        let packet = Ipv4Packet::new(Ipv4Addr::UNSPECIFIED, dst, Proto::Icmp, msg.encode());
        self.send_ip(packet);
    }

    /// Sends an echo request (ping).
    pub fn ping(&mut self, dst: Ipv4Addr, id: u16, seq: u16, len: usize) {
        let payload = vec![0xA5; len];
        self.send_icmp(dst, IcmpMessage::EchoRequest { id, seq, payload });
    }

    // --- Input path ----------------------------------------------------------

    /// Processes an IP packet arriving on `iface`, returning the actions
    /// it produced (equivalently: processes and drains).
    pub fn input(&mut self, now: SimTime, iface: IfaceId, bytes: &[u8]) -> Vec<StackAction> {
        self.input_inner(now, iface, bytes);
        self.drain_actions()
    }

    fn input_inner(&mut self, now: SimTime, iface: IfaceId, bytes: &[u8]) {
        self.stats.ip_in += 1;
        let packet = match Ipv4Packet::decode(bytes) {
            Ok(p) => p,
            Err(_) => {
                self.stats.bad_packets += 1;
                return;
            }
        };
        if !self.is_local_addr(packet.dst) {
            if self.cfg.forwarding {
                self.stats.forward_requests += 1;
                self.pending.push(StackAction::ForwardNeeded {
                    ingress: iface,
                    packet,
                });
            } else {
                self.stats.not_for_us += 1;
            }
            return;
        }
        let Some(whole) = self.reasm.push(now, packet) else {
            return;
        };
        match whole.proto {
            Proto::Icmp => self.input_icmp(iface, &whole),
            Proto::Tcp => self.input_tcp(now, iface, &whole),
            Proto::Udp => self.input_udp(&whole),
            Proto::Other(p) if p == ip::IPIP && self.cfg.ipip => {
                // A tunnel endpoint: strip the outer header and run the
                // inner packet through input again. The inner destination
                // is usually *not* local, so it surfaces as a normal
                // ForwardNeeded and crosses the gateway's policy exactly
                // like natively routed traffic. Nesting terminates because
                // every level removes a 20-byte header.
                self.stats.ipip_in += 1;
                self.input_inner(now, iface, &whole.payload);
            }
            Proto::Other(_) => {
                // Never generate ICMP errors about broadcasts.
                if whole.dst != Ipv4Addr::BROADCAST {
                    let quote = IcmpMessage::quote_original(&whole.encode());
                    let src = whole.src;
                    self.send_icmp(
                        src,
                        IcmpMessage::DestUnreachable {
                            code: UnreachCode::Protocol,
                            original: quote,
                        },
                    );
                }
            }
        }
    }

    fn input_icmp(&mut self, iface: IfaceId, packet: &Ipv4Packet) {
        let msg = match IcmpMessage::decode(&packet.payload) {
            Ok(m) => m,
            Err(_) => {
                self.stats.bad_packets += 1;
                return;
            }
        };
        match msg {
            IcmpMessage::EchoRequest { id, seq, payload } => {
                if self.cfg.icmp_echo_reply {
                    self.stats.echo_replies_sent += 1;
                    let mut reply = Ipv4Packet::new(
                        packet.dst,
                        packet.src,
                        Proto::Icmp,
                        IcmpMessage::EchoReply { id, seq, payload }.encode(),
                    );
                    // Reply from the address they pinged.
                    reply.src = packet.dst;
                    self.send_ip(reply);
                }
            }
            IcmpMessage::EchoReply { id, seq, payload } => {
                self.pending.push(StackAction::PingReply {
                    from: packet.src,
                    id,
                    seq,
                    len: payload.len(),
                });
            }
            m @ (IcmpMessage::GateOpen { .. } | IcmpMessage::GateClose { .. }) => {
                self.pending.push(StackAction::GateControl {
                    from: packet.src,
                    ingress: iface,
                    message: m,
                });
            }
            m @ (IcmpMessage::DestUnreachable { .. } | IcmpMessage::TimeExceeded { .. }) => {
                self.pending.push(StackAction::IcmpProblem {
                    from: packet.src,
                    message: m,
                });
            }
        }
    }

    fn input_udp(&mut self, packet: &Ipv4Packet) {
        let (src_port, dst_port, payload) =
            match UdpDatagram::decode_ref(&packet.payload, packet.src, packet.dst) {
                Ok(d) => d,
                Err(_) => {
                    self.stats.bad_packets += 1;
                    return;
                }
            };
        if let Some(i) = self.udp.iter().position(|s| s.port == dst_port) {
            // Copy the payload into a pooled buffer: steady-state receive
            // recycles storage instead of allocating a fresh Vec per
            // datagram.
            let mut buf = self.pool.take();
            buf.extend_from_slice(payload);
            self.udp[i].rx.push_back((packet.src, src_port, buf));
            self.pending.push(StackAction::UdpReadable(UdpId(i)));
        } else if packet.dst != Ipv4Addr::BROADCAST {
            // Broadcasts to an unbound port are silently ignored — a
            // subnet full of hosts must not answer every announcement
            // with a port-unreachable storm.
            let quote = IcmpMessage::quote_original(&packet.encode());
            let src = packet.src;
            self.send_icmp(
                src,
                IcmpMessage::DestUnreachable {
                    code: UnreachCode::Port,
                    original: quote,
                },
            );
        }
    }

    fn input_tcp(&mut self, now: SimTime, iface: IfaceId, packet: &Ipv4Packet) {
        let seg = match TcpSegment::decode(&packet.payload, packet.src, packet.dst) {
            Ok(s) => s,
            Err(_) => {
                self.stats.bad_packets += 1;
                return;
            }
        };
        // Exact connection match first.
        let found = self.socks.iter().position(|s| {
            s.tcb.state() != TcpState::Closed
                && s.tcb.local() == (packet.dst, seg.dst_port)
                && s.tcb.remote() == (packet.src, seg.src_port)
        });
        if let Some(i) = found {
            let events = self.socks[i].tcb.on_segment(now, &seg);
            self.drive(SockId(i), events);
            return;
        }
        // Listener match for a fresh SYN.
        if seg.flags.syn && !seg.flags.ack {
            if let Some(li) = self.listeners.iter().position(|l| l.port == seg.dst_port) {
                // Accept-queue bound: a listener created with
                // `tcp_listen_with` refuses fresh SYNs once it already
                // holds `backlog` live, unclaimed children. The refusal
                // is an RST — the 4.3BSD tcp_input drop, visible to the
                // peer — rather than a silent drop, so the simulation
                // surfaces overload immediately instead of after a
                // retransmission timeout.
                if let Some(backlog) = self.listeners[li].backlog {
                    let queued = self
                        .socks
                        .iter()
                        .filter(|s| {
                            s.parent == Some(ListenerId(li))
                                && !s.claimed
                                && s.tcb.state() != TcpState::Closed
                        })
                        .count();
                    if queued >= backlog {
                        self.stats.accept_overflow += 1;
                        self.send_rst(packet, &seg);
                        return;
                    }
                }
                let iss = self.next_iss();
                let mut cfg = self.listeners[li].cfg;
                if self.cfg.clamp_mss {
                    cfg.mss = clamped_mss(cfg.mss, self.ifaces[iface.0].mtu);
                }
                let (tcb, events) = Tcb::accept(
                    now,
                    (packet.dst, seg.dst_port),
                    (packet.src, seg.src_port),
                    &seg,
                    iss,
                    cfg,
                );
                let sock = SockId(self.socks.len());
                self.socks.push(TcpSock {
                    tcb,
                    parent: Some(ListenerId(li)),
                    claimed: false,
                });
                self.drive(sock, events);
                return;
            }
        }
        // No takers: RST (unless the stray segment was itself a RST).
        if !seg.flags.rst {
            self.send_rst(packet, &seg);
        }
    }

    /// Answers a segment nobody wants with the standard RST.
    fn send_rst(&mut self, packet: &Ipv4Packet, seg: &TcpSegment) {
        let rst = TcpSegment {
            src_port: seg.dst_port,
            dst_port: seg.src_port,
            seq: if seg.flags.ack { seg.ack } else { 0 },
            ack: seg.seq.wrapping_add(seg.seq_len()),
            flags: crate::tcp::TcpFlags {
                rst: true,
                ack: true,
                ..Default::default()
            },
            window: 0,
            mss: None,
            payload: Vec::new(),
        };
        let bytes = rst.encode(packet.dst, packet.src);
        let mut p = Ipv4Packet::new(packet.dst, packet.src, Proto::Tcp, bytes);
        p.src = packet.dst;
        self.send_ip(p);
    }

    // --- TCP socket API ---------------------------------------------------------

    fn next_iss(&mut self) -> u32 {
        // 4.3BSD-style: a deterministic, monotonically advancing ISS.
        self.iss = self.iss.wrapping_add(64_000);
        self.iss
    }

    fn alloc_port(&mut self) -> u16 {
        loop {
            let p = self.next_port;
            self.next_port = if self.next_port >= 65_000 {
                1024
            } else {
                self.next_port + 1
            };
            let used = self
                .socks
                .iter()
                .any(|s| s.tcb.state() != TcpState::Closed && s.tcb.local().1 == p)
                || self.listeners.iter().any(|l| l.port == p);
            if !used {
                return p;
            }
        }
    }

    /// Opens a TCP connection; the SYN lands in the pending-action queue
    /// (see [`Self::drain_actions`]).
    pub fn tcp_connect(
        &mut self,
        now: SimTime,
        dst: Ipv4Addr,
        dst_port: u16,
    ) -> Result<SockId, NetError> {
        let Some(NextHop { iface, .. }) = self.lookup_routed(dst) else {
            return Err(NetError::NoRoute(dst));
        };
        let local_ip = self.ifaces[iface.0].addr;
        let port = self.alloc_port();
        let iss = self.next_iss();
        let mut tcp_cfg = self.cfg.tcp;
        if self.cfg.clamp_mss {
            tcp_cfg.mss = clamped_mss(tcp_cfg.mss, self.ifaces[iface.0].mtu);
        }
        let (tcb, events) = Tcb::connect(now, (local_ip, port), (dst, dst_port), iss, tcp_cfg);
        let sock = SockId(self.socks.len());
        self.socks.push(TcpSock {
            tcb,
            parent: None,
            claimed: true,
        });
        self.drive(sock, events);
        Ok(sock)
    }

    /// Opens a TCP connection with a specific configuration (experiments
    /// use this to pit fixed against adaptive RTO).
    pub fn tcp_connect_with(
        &mut self,
        now: SimTime,
        dst: Ipv4Addr,
        dst_port: u16,
        cfg: TcpConfig,
    ) -> Result<SockId, NetError> {
        let saved = self.cfg.tcp;
        self.cfg.tcp = cfg;
        let r = self.tcp_connect(now, dst, dst_port);
        self.cfg.tcp = saved;
        r
    }

    /// Starts listening on `port` with an unbounded accept queue (the
    /// legacy shape every pre-socket-layer app relies on).
    pub fn tcp_listen(&mut self, port: u16) -> Result<ListenerId, NetError> {
        self.listen_inner(port, None)
    }

    /// Starts listening on `port`, refusing (RST) fresh SYNs whenever
    /// `backlog` accepted-but-unclaimed connections are already queued.
    /// A `backlog` of 0 refuses everything — the classic closed shop.
    pub fn tcp_listen_with(&mut self, port: u16, backlog: usize) -> Result<ListenerId, NetError> {
        self.listen_inner(port, Some(backlog))
    }

    fn listen_inner(&mut self, port: u16, backlog: Option<usize>) -> Result<ListenerId, NetError> {
        if self.listeners.iter().any(|l| l.port == port) {
            return Err(NetError::InUse);
        }
        let id = ListenerId(self.listeners.len());
        self.listeners.push(Listener {
            port,
            cfg: self.cfg.tcp,
            backlog,
        });
        Ok(id)
    }

    /// Marks a passively opened socket as accepted by the application: it
    /// stops counting against its listener's backlog. Idempotent; unknown
    /// handles are ignored.
    pub fn tcp_claim(&mut self, sock: SockId) {
        if let Some(s) = self.socks.get_mut(sock.0) {
            s.claimed = true;
        }
    }

    /// Queues data on a socket; returns octets accepted.
    pub fn tcp_send(&mut self, now: SimTime, sock: SockId, data: &[u8]) -> usize {
        let Some(s) = self.socks.get_mut(sock.0) else {
            return 0;
        };
        let (n, events) = s.tcb.send(now, data);
        self.drive(sock, events);
        n
    }

    /// Drains readable data from a socket.
    pub fn tcp_recv(&mut self, now: SimTime, sock: SockId) -> Vec<u8> {
        let Some(s) = self.socks.get_mut(sock.0) else {
            return Vec::new();
        };
        let (data, events) = s.tcb.recv(now);
        self.drive(sock, events);
        data
    }

    /// Closes the send direction of a socket.
    pub fn tcp_close(&mut self, now: SimTime, sock: SockId) {
        let Some(s) = self.socks.get_mut(sock.0) else {
            return;
        };
        let events = s.tcb.close(now);
        self.drive(sock, events);
    }

    /// Aborts a socket with RST.
    pub fn tcp_abort(&mut self, now: SimTime, sock: SockId) {
        let Some(s) = self.socks.get_mut(sock.0) else {
            return;
        };
        let events = s.tcb.abort(now);
        self.drive(sock, events);
    }

    /// A socket's connection state.
    pub fn tcp_state(&self, sock: SockId) -> TcpState {
        self.socks
            .get(sock.0)
            .map(|s| s.tcb.state())
            .unwrap_or(TcpState::Closed)
    }

    /// Free space in a socket's send buffer.
    pub fn tcp_send_capacity(&self, sock: SockId) -> usize {
        self.socks
            .get(sock.0)
            .map(|s| s.tcb.send_capacity())
            .unwrap_or(0)
    }

    /// Unacknowledged + unsent octets held by a socket.
    pub fn tcp_send_backlog(&self, sock: SockId) -> usize {
        self.socks
            .get(sock.0)
            .map(|s| s.tcb.send_backlog())
            .unwrap_or(0)
    }

    /// Octets buffered and ready for [`Self::tcp_recv`].
    pub fn tcp_recv_available(&self, sock: SockId) -> usize {
        self.socks
            .get(sock.0)
            .map(|s| s.tcb.recv_available())
            .unwrap_or(0)
    }

    /// True when the peer closed and all data was drained.
    pub fn tcp_at_eof(&self, sock: SockId) -> bool {
        self.socks.get(sock.0).is_some_and(|s| s.tcb.at_eof())
    }

    /// The local (address, port) of a socket.
    pub fn tcp_local(&self, sock: SockId) -> Option<(Ipv4Addr, u16)> {
        self.socks.get(sock.0).map(|s| s.tcb.local())
    }

    /// The remote (address, port) of a socket.
    pub fn tcp_remote(&self, sock: SockId) -> Option<(Ipv4Addr, u16)> {
        self.socks.get(sock.0).map(|s| s.tcb.remote())
    }

    /// Statistics of a socket's TCB.
    pub fn tcp_stats(&self, sock: SockId) -> crate::tcp::TcbStats {
        self.socks
            .get(sock.0)
            .map(|s| s.tcb.stats())
            .unwrap_or_default()
    }

    // --- UDP socket API -----------------------------------------------------------

    /// Binds a UDP socket to `port`.
    pub fn udp_bind(&mut self, port: u16) -> Result<UdpId, NetError> {
        if self.udp.iter().any(|s| s.port == port) {
            return Err(NetError::InUse);
        }
        let id = UdpId(self.udp.len());
        self.udp.push(UdpSock {
            port,
            rx: VecDeque::new(),
        });
        Ok(id)
    }

    /// Sends a datagram from a bound socket.
    pub fn udp_send(&mut self, udp: UdpId, dst: Ipv4Addr, dst_port: u16, payload: Vec<u8>) {
        let src_port = self.udp[udp.0].port;
        let Some(NextHop { iface, .. }) = self.lookup_routed(dst) else {
            self.stats.no_route += 1;
            return;
        };
        let src = self.ifaces[iface.0].addr;
        let dg = UdpDatagram {
            src_port,
            dst_port,
            payload,
        };
        let mut p = Ipv4Packet::new(src, dst, Proto::Udp, dg.encode(src, dst));
        p.src = src;
        self.send_ip(p);
    }

    /// Sends a limited-broadcast (255.255.255.255) datagram out of one
    /// specific interface, bypassing the routing table — a broadcast has
    /// no route; the caller names the link. The drivers map the broadcast
    /// next hop to their link-layer broadcast address without ARP.
    pub fn udp_send_broadcast(
        &mut self,
        udp: UdpId,
        iface: IfaceId,
        dst_port: u16,
        payload: Vec<u8>,
    ) {
        let src_port = self.udp[udp.0].port;
        let src = self.ifaces[iface.0].addr;
        let dst = Ipv4Addr::BROADCAST;
        let dg = UdpDatagram {
            src_port,
            dst_port,
            payload,
        };
        let mut p = Ipv4Packet::new(src, dst, Proto::Udp, dg.encode(src, dst));
        p.id = self.next_ip_id();
        // Broadcasts stay on the link.
        p.ttl = 1;
        self.stats.ip_out += 1;
        self.pending.push(StackAction::Egress {
            iface,
            next_hop: dst,
            packet: p,
        });
    }

    /// Pops the oldest received datagram: `(source, source port, payload)`.
    /// The payload rides in a pooled buffer that returns its storage to
    /// the stack's pool when dropped; call in a `while let Some(...)` loop
    /// to drain. Unknown handles return `None`.
    pub fn udp_recv(&mut self, udp: UdpId) -> Option<(Ipv4Addr, u16, PacketBuf)> {
        self.udp.get_mut(udp.0)?.rx.pop_front()
    }

    /// Queued datagrams awaiting [`Self::udp_recv`].
    pub fn udp_rx_queued(&self, udp: UdpId) -> usize {
        self.udp.get(udp.0).map(|s| s.rx.len()).unwrap_or(0)
    }

    // --- Timers -----------------------------------------------------------------

    /// Earliest deadline across sockets and reassembly.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let tcp = self
            .socks
            .iter()
            .filter_map(|s| s.tcb.next_deadline())
            .min();
        let reasm = self.reasm.next_deadline();
        match (tcp, reasm) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fires expired timers, returning the actions they produced
    /// (equivalently: fires and drains).
    pub fn poll(&mut self, now: SimTime) -> Vec<StackAction> {
        self.reasm.expire(now);
        for i in 0..self.socks.len() {
            if self.socks[i].tcb.next_deadline().is_some_and(|t| t <= now) {
                let events = self.socks[i].tcb.on_timer(now);
                self.drive(SockId(i), events);
            }
        }
        self.drain_actions()
    }

    // --- Internals --------------------------------------------------------------

    /// Maps TCB events to stack actions, wrapping segments in IP.
    fn drive(&mut self, sock: SockId, events: Vec<TcbEvent>) {
        let (local, remote, parent) = {
            let s = &self.socks[sock.0];
            (s.tcb.local(), s.tcb.remote(), s.parent)
        };
        for ev in events {
            match ev {
                TcbEvent::Transmit(seg) => {
                    let bytes = seg.encode(local.0, remote.0);
                    let mut p = Ipv4Packet::new(local.0, remote.0, Proto::Tcp, bytes);
                    p.src = local.0;
                    self.send_ip(p);
                }
                TcbEvent::Connected => match parent {
                    Some(listener) => self
                        .pending
                        .push(StackAction::TcpAccepted { listener, sock }),
                    None => self.pending.push(StackAction::TcpConnected(sock)),
                },
                TcbEvent::DataReadable => self.pending.push(StackAction::TcpReadable(sock)),
                TcbEvent::PeerClosed => self.pending.push(StackAction::TcpPeerClosed(sock)),
                TcbEvent::Closed { reset } => {
                    self.pending.push(StackAction::TcpClosed { sock, reset })
                }
            }
        }
    }
}

/// Largest segment `mtu` can carry without IP fragmentation: the MTU minus
/// the 40 bytes of TCP/IP header, with a floor of 1 for degenerate
/// interfaces. On the AX.25 radio MTU of 256 this yields 216.
fn clamped_mss(mss: u16, mtu: usize) -> u16 {
    let cap = mtu.saturating_sub(40).clamp(1, usize::from(u16::MAX)) as u16;
    mss.min(cap)
}

/// Convenience: the RTO policy of the classic misbehaving fast-side host
/// in §4.1 — a constant 1.5 s regardless of the path.
pub fn fixed_rto_config() -> TcpConfig {
    TcpConfig {
        rto: RtoPolicy::Fixed(sim::SimDuration::from_millis(1500)),
        ..TcpConfig::default()
    }
}

impl NetStack {
    /// Creates a single-interface host stack with an optional default
    /// route — the shape of every plain host in the testbed.
    pub fn simple_host(
        addr: Ipv4Addr,
        prefix_len: u8,
        mtu: usize,
        gateway: Option<Ipv4Addr>,
    ) -> (NetStack, IfaceId) {
        let mut st = NetStack::new(StackConfig::default());
        let ifid = st.add_iface(IfaceConfig {
            name: "if0".into(),
            addr,
            prefix_len,
            mtu,
        });
        if let Some(gw) = gateway {
            st.routes_mut().add(Prefix::default_route(), Some(gw), ifid);
        }
        (st, ifid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    fn ipa(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    /// A two-host wire: delivers Egress actions directly to the peer.
    struct Wire {
        a: NetStack,
        b: NetStack,
        a_if: IfaceId,
        b_if: IfaceId,
        /// Non-egress actions collected per side.
        a_ev: Vec<StackAction>,
        b_ev: Vec<StackAction>,
    }

    impl Wire {
        fn new() -> Wire {
            let (a, a_if) = NetStack::simple_host(ipa(1), 24, 1500, None);
            let (b, b_if) = NetStack::simple_host(ipa(2), 24, 1500, None);
            Wire {
                a,
                b,
                a_if,
                b_if,
                a_ev: Vec::new(),
                b_ev: Vec::new(),
            }
        }

        /// Pumps actions until quiet.
        fn run(
            &mut self,
            now: SimTime,
            mut from_a: Vec<StackAction>,
            mut from_b: Vec<StackAction>,
        ) {
            for _ in 0..10_000 {
                if from_a.is_empty() && from_b.is_empty() {
                    return;
                }
                let mut next_a = Vec::new();
                let mut next_b = Vec::new();
                for act in from_a.drain(..) {
                    match act {
                        StackAction::Egress { packet, .. } => {
                            next_b.extend(self.b.input(now, self.b_if, &packet.encode()));
                        }
                        other => self.a_ev.push(other),
                    }
                }
                for act in from_b.drain(..) {
                    match act {
                        StackAction::Egress { packet, .. } => {
                            next_a.extend(self.a.input(now, self.a_if, &packet.encode()));
                        }
                        other => self.b_ev.push(other),
                    }
                }
                from_a = next_a;
                from_b = next_b;
            }
            panic!("wire did not settle");
        }
    }

    #[test]
    fn ping_across_a_wire() {
        let mut w = Wire::new();
        w.a.ping(ipa(2), 7, 1, 56);
        let out = w.a.drain_actions();
        w.run(SimTime::ZERO, out, vec![]);
        assert_eq!(
            w.a_ev,
            vec![StackAction::PingReply {
                from: ipa(2),
                id: 7,
                seq: 1,
                len: 56
            }]
        );
        assert_eq!(w.b.stats().echo_replies_sent, 1);
    }

    #[test]
    fn tcp_connect_accept_and_exchange() {
        let mut w = Wire::new();
        let now = SimTime::ZERO;
        w.b.tcp_listen(23).unwrap();
        let ca = w.a.tcp_connect(now, ipa(2), 23).unwrap();
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        assert!(w.a_ev.contains(&StackAction::TcpConnected(ca)));
        let accepted = w
            .b_ev
            .iter()
            .find_map(|e| match e {
                StackAction::TcpAccepted { sock, .. } => Some(*sock),
                _ => None,
            })
            .expect("accept");
        // a -> b data.
        let n = w.a.tcp_send(now, ca, b"login: guest");
        assert_eq!(n, 12);
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        assert!(w.b_ev.contains(&StackAction::TcpReadable(accepted)));
        let data = w.b.tcp_recv(now, accepted);
        assert_eq!(data, b"login: guest");
        let acks = w.b.drain_actions();
        w.run(now, vec![], acks);
        // b -> a data.
        w.b.tcp_send(now, accepted, b"welcome");
        let out = w.b.drain_actions();
        w.run(now, vec![], out);
        let data = w.a.tcp_recv(now, ca);
        assert_eq!(data, b"welcome");
    }

    /// The TCP segment inside the first Egress action.
    fn first_egress_segment(out: &[StackAction]) -> TcpSegment {
        out.iter()
            .find_map(|e| match e {
                StackAction::Egress { packet, .. } => {
                    Some(TcpSegment::decode(&packet.payload, packet.src, packet.dst).unwrap())
                }
                _ => None,
            })
            .expect("an egress segment")
    }

    #[test]
    fn clamp_mss_caps_connect_advertisement_to_radio_mtu() {
        for (clamp, want) in [(false, TcpConfig::default().mss), (true, 216)] {
            let mut st = NetStack::new(StackConfig {
                clamp_mss: clamp,
                ..StackConfig::default()
            });
            let ifid = st.add_iface(IfaceConfig {
                name: "pr0".into(),
                addr: ipa(1),
                prefix_len: 24,
                mtu: 256,
            });
            let _ = ifid;
            st.tcp_connect(SimTime::ZERO, ipa(2), 23).unwrap();
            let out = st.drain_actions();
            let syn = first_egress_segment(&out);
            assert!(syn.flags.syn);
            assert_eq!(syn.mss, Some(want), "clamp={clamp}");
        }
    }

    #[test]
    fn clamp_mss_caps_accept_advertisement_on_the_ingress_iface() {
        for (clamp, want) in [(false, TcpConfig::default().mss), (true, 216)] {
            let mut st = NetStack::new(StackConfig {
                clamp_mss: clamp,
                ..StackConfig::default()
            });
            let ifid = st.add_iface(IfaceConfig {
                name: "pr0".into(),
                addr: ipa(2),
                prefix_len: 24,
                mtu: 256,
            });
            st.tcp_listen(23).unwrap();
            let syn = TcpSegment {
                src_port: 1024,
                dst_port: 23,
                seq: 1000,
                ack: 0,
                flags: crate::tcp::TcpFlags {
                    syn: true,
                    ..Default::default()
                },
                window: 4096,
                mss: Some(TcpConfig::default().mss),
                payload: Vec::new(),
            };
            let bytes = syn.encode(ipa(1), ipa(2));
            let packet = Ipv4Packet::new(ipa(1), ipa(2), Proto::Tcp, bytes);
            let out = st.input(SimTime::ZERO, ifid, &packet.encode());
            let synack = first_egress_segment(&out);
            assert!(synack.flags.syn && synack.flags.ack);
            assert_eq!(synack.mss, Some(want), "clamp={clamp}");
        }
    }

    #[test]
    fn clamped_connection_never_emits_fragmentable_segments() {
        // A bulk send over a 256-MTU interface with the clamp on must
        // produce only unfragmented, MTU-sized-or-smaller packets.
        let mut st = NetStack::new(StackConfig {
            clamp_mss: true,
            ..StackConfig::default()
        });
        st.add_iface(IfaceConfig {
            name: "pr0".into(),
            addr: ipa(1),
            prefix_len: 24,
            mtu: 256,
        });
        let now = SimTime::ZERO;
        let sock = st.tcp_connect(now, ipa(2), 23).unwrap();
        let out = st.drain_actions();
        // Complete the handshake by hand so the window opens.
        let syn = first_egress_segment(&out);
        let synack = TcpSegment {
            src_port: 23,
            dst_port: syn.src_port,
            seq: 5000,
            ack: syn.seq.wrapping_add(1),
            flags: crate::tcp::TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
            window: 8192,
            mss: Some(1460),
            payload: Vec::new(),
        };
        let bytes = synack.encode(ipa(2), ipa(1));
        let packet = Ipv4Packet::new(ipa(2), ipa(1), Proto::Tcp, bytes);
        let mut actions = st.input(now, ifid_of(&st), &packet.encode());
        st.tcp_send(now, sock, &vec![0xAB; 1000]);
        st.drain_actions_into(&mut actions);
        let mut saw_data = false;
        for a in &actions {
            if let StackAction::Egress { packet, .. } = a {
                assert!(packet.encode().len() <= 256, "fits the radio MTU");
                assert!(!packet.is_fragment(), "never fragmented");
                saw_data |= packet.payload.len() > 20;
            }
        }
        assert!(saw_data, "the send actually produced segments");
    }

    fn ifid_of(_st: &NetStack) -> IfaceId {
        IfaceId(0)
    }

    #[test]
    fn tcp_close_sequence_via_stack() {
        let mut w = Wire::new();
        let now = SimTime::ZERO;
        w.b.tcp_listen(23).unwrap();
        let ca = w.a.tcp_connect(now, ipa(2), 23).unwrap();
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        let accepted = w
            .b_ev
            .iter()
            .find_map(|e| match e {
                StackAction::TcpAccepted { sock, .. } => Some(*sock),
                _ => None,
            })
            .unwrap();
        w.a.tcp_close(now, ca);
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        assert!(w.b_ev.contains(&StackAction::TcpPeerClosed(accepted)));
        w.b.tcp_close(now, accepted);
        let out = w.b.drain_actions();
        w.run(now, vec![], out);
        assert!(w
            .b_ev
            .iter()
            .any(|e| matches!(e, StackAction::TcpClosed { reset: false, .. })));
        assert_eq!(w.a.tcp_state(ca), TcpState::TimeWait);
    }

    #[test]
    fn syn_to_closed_port_draws_rst() {
        let mut w = Wire::new();
        let now = SimTime::ZERO;
        let ca = w.a.tcp_connect(now, ipa(2), 9999).unwrap();
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        assert!(w
            .a_ev
            .iter()
            .any(|e| matches!(e, StackAction::TcpClosed { reset: true, .. })));
        assert_eq!(w.a.tcp_state(ca), TcpState::Closed);
    }

    #[test]
    fn listen_backlog_overflows_with_rst_until_claimed() {
        let mut w = Wire::new();
        let now = SimTime::ZERO;
        w.b.tcp_listen_with(23, 1).unwrap();
        // First connection fills the queue of one.
        let c1 = w.a.tcp_connect(now, ipa(2), 23).unwrap();
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        assert!(w.a_ev.contains(&StackAction::TcpConnected(c1)));
        let queued = w
            .b_ev
            .iter()
            .find_map(|e| match e {
                StackAction::TcpAccepted { sock, .. } => Some(*sock),
                _ => None,
            })
            .expect("first connection queued");
        // Second SYN overflows: refused with RST, counted.
        let c2 = w.a.tcp_connect(now, ipa(2), 23).unwrap();
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        assert!(w.a_ev.contains(&StackAction::TcpClosed {
            sock: c2,
            reset: true
        }));
        assert_eq!(w.b.stats().accept_overflow, 1);
        // The application accepts (claims) the queued connection; the
        // freed slot admits the next SYN.
        w.b.tcp_claim(queued);
        let c3 = w.a.tcp_connect(now, ipa(2), 23).unwrap();
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        assert!(w.a_ev.contains(&StackAction::TcpConnected(c3)));
        assert_eq!(w.b.stats().accept_overflow, 1);
    }

    #[test]
    fn legacy_listen_stays_unbounded() {
        let mut w = Wire::new();
        let now = SimTime::ZERO;
        w.b.tcp_listen(23).unwrap();
        for _ in 0..8 {
            let c = w.a.tcp_connect(now, ipa(2), 23).unwrap();
            let out = w.a.drain_actions();
            w.run(now, out, vec![]);
            assert!(w.a_ev.contains(&StackAction::TcpConnected(c)));
        }
        assert_eq!(w.b.stats().accept_overflow, 0);
    }

    #[test]
    fn udp_exchange_and_port_unreachable() {
        let mut w = Wire::new();
        let now = SimTime::ZERO;
        let ub = w.b.udp_bind(4242).unwrap();
        let ua = w.a.udp_bind(2001).unwrap();
        w.a.udp_send(ua, ipa(2), 4242, b"callbook? N7AKR".to_vec());
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        assert!(w.b_ev.contains(&StackAction::UdpReadable(ub)));
        let (from, from_port, payload) = w.b.udp_recv(ub).expect("one datagram");
        assert_eq!(from, ipa(1));
        assert_eq!(from_port, 2001);
        assert_eq!(payload.as_slice(), b"callbook? N7AKR");
        assert!(w.b.udp_recv(ub).is_none(), "queue drained");

        // To a closed port: ICMP port unreachable comes back.
        w.a.udp_send(ua, ipa(2), 5555, b"hello?".to_vec());
        let out = w.a.drain_actions();
        w.run(now, out, vec![]);
        assert!(w.a_ev.iter().any(|e| matches!(
            e,
            StackAction::IcmpProblem {
                message: IcmpMessage::DestUnreachable {
                    code: UnreachCode::Port,
                    ..
                },
                ..
            }
        )));
    }

    #[test]
    fn forwarding_disabled_drops_and_counts() {
        let mut w = Wire::new();
        let p = Ipv4Packet::new(ipa(1), ipa(77), Proto::Udp, vec![0; 12]);
        let acts = w.b.input(SimTime::ZERO, w.b_if, &p.encode());
        assert!(acts.is_empty());
        assert_eq!(w.b.stats().not_for_us, 1);
    }

    #[test]
    fn forwarding_enabled_surfaces_and_forwards() {
        let mut st = NetStack::new(StackConfig {
            forwarding: true,
            ..StackConfig::default()
        });
        let eth = st.add_iface(IfaceConfig {
            name: "qe0".into(),
            addr: Ipv4Addr::new(128, 95, 1, 100),
            prefix_len: 24,
            mtu: 1500,
        });
        let radio = st.add_iface(IfaceConfig {
            name: "pr0".into(),
            addr: Ipv4Addr::new(44, 24, 0, 28),
            prefix_len: 16,
            mtu: 256,
        });
        let mut p = Ipv4Packet::new(
            Ipv4Addr::new(128, 95, 1, 4),
            Ipv4Addr::new(44, 24, 0, 5),
            Proto::Udp,
            vec![0; 500],
        );
        p.id = 42;
        let acts = st.input(SimTime::ZERO, eth, &p.encode());
        let [StackAction::ForwardNeeded { ingress, packet }] = &acts[..] else {
            panic!("{acts:?}");
        };
        assert_eq!(*ingress, eth);
        let ttl_before = packet.ttl;
        st.forward(packet.clone());
        let out = st.drain_actions();
        // 500B payload over 256B MTU: fragmented onto the radio interface.
        assert!(out.len() >= 3, "{out:?}");
        for act in &out {
            let StackAction::Egress { iface, packet, .. } = act else {
                panic!("{act:?}");
            };
            assert_eq!(*iface, radio);
            assert!(packet.total_len() <= 256);
            assert_eq!(packet.ttl, ttl_before - 1, "ttl decremented");
        }
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded() {
        let mut st = NetStack::new(StackConfig {
            forwarding: true,
            ..StackConfig::default()
        });
        let _eth = st.add_iface(IfaceConfig {
            name: "qe0".into(),
            addr: Ipv4Addr::new(128, 95, 1, 100),
            prefix_len: 24,
            mtu: 1500,
        });
        let mut p = Ipv4Packet::new(
            Ipv4Addr::new(128, 95, 1, 4),
            Ipv4Addr::new(44, 24, 0, 5),
            Proto::Udp,
            vec![0; 10],
        );
        p.ttl = 1;
        st.forward(p);
        let out = st.drain_actions();
        let [StackAction::Egress { packet, .. }] = &out[..] else {
            panic!("{out:?}");
        };
        assert_eq!(packet.dst, Ipv4Addr::new(128, 95, 1, 4));
        let msg = IcmpMessage::decode(&packet.payload).unwrap();
        assert!(matches!(msg, IcmpMessage::TimeExceeded { .. }));
        assert_eq!(st.stats().ttl_expired, 1);
    }

    #[test]
    fn fragmented_ping_reassembles_and_replies() {
        let mut w = Wire::new();
        // Shrink a's MTU so the request fragments.
        w.a.iface_mut(w.a_if).mtu = 256;
        w.a.ping(ipa(2), 9, 3, 600);
        let out = w.a.drain_actions();
        assert!(out.len() >= 3, "request fragmented: {}", out.len());
        w.run(SimTime::ZERO, out, vec![]);
        assert_eq!(
            w.a_ev,
            vec![StackAction::PingReply {
                from: ipa(2),
                id: 9,
                seq: 3,
                len: 600
            }]
        );
    }

    #[test]
    fn no_route_is_counted() {
        let (mut st, _) = NetStack::simple_host(ipa(1), 24, 1500, None);
        st.ping(Ipv4Addr::new(99, 99, 99, 99), 1, 1, 8);
        assert!(st.drain_actions().is_empty());
        assert_eq!(st.stats().no_route, 1);
    }

    #[test]
    fn listener_port_conflicts_rejected() {
        let (mut st, _) = NetStack::simple_host(ipa(1), 24, 1500, None);
        st.tcp_listen(23).unwrap();
        assert_eq!(st.tcp_listen(23), Err(NetError::InUse));
        st.udp_bind(53).unwrap();
        assert_eq!(st.udp_bind(53), Err(NetError::InUse));
    }

    #[test]
    fn distinct_ephemeral_ports() {
        let mut w = Wire::new();
        let now = SimTime::ZERO;
        w.b.tcp_listen(23).unwrap();
        let mut seen = Map::new();
        for i in 0..5 {
            let s = w.a.tcp_connect(now, ipa(2), 23).unwrap();
            let out = w.a.drain_actions();
            w.run(now, out, vec![]);
            let port = w.a.tcp_local(s).unwrap().1;
            assert!(seen.insert(port, i).is_none(), "port {port} reused");
        }
    }

    #[test]
    fn stack_timers_drive_tcp_retransmission() {
        let now = SimTime::ZERO;
        let (mut a, _aif) = NetStack::simple_host(ipa(1), 24, 1500, None);
        let _s = a.tcp_connect(now, ipa(2), 23).unwrap();
        assert_eq!(a.drain_actions().len(), 1, "SYN egress");
        let t = a.next_deadline().expect("rtx timer armed");
        let acts = a.poll(t);
        assert!(
            acts.iter().any(|e| matches!(e, StackAction::Egress { .. })),
            "SYN retransmitted via stack poll"
        );
    }

    #[test]
    fn gate_control_messages_surface() {
        let (mut st, ifid) = NetStack::simple_host(Ipv4Addr::new(44, 24, 0, 28), 16, 256, None);
        let msg = IcmpMessage::GateClose {
            amateur: Ipv4Addr::new(44, 24, 0, 5),
            foreign: Ipv4Addr::new(128, 95, 1, 4),
            auth: None,
        };
        let p = Ipv4Packet::new(
            Ipv4Addr::new(44, 24, 0, 5),
            Ipv4Addr::new(44, 24, 0, 28),
            Proto::Icmp,
            msg.encode(),
        );
        let acts = st.input(SimTime::ZERO, ifid, &p.encode());
        assert!(matches!(
            &acts[..],
            [StackAction::GateControl { from, .. }] if *from == Ipv4Addr::new(44, 24, 0, 5)
        ));
    }

    /// A toy tunnel map: exact destination -> endpoint.
    #[derive(Debug)]
    struct FixedTunnel(Map<Ipv4Addr, Ipv4Addr>);

    impl TunnelMap for FixedTunnel {
        fn endpoint(&mut self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
            self.0.get(&dst).copied()
        }
    }

    #[test]
    fn tunnel_map_wraps_output_before_routing() {
        let (mut st, ifid) = NetStack::simple_host(ipa(1), 24, 1500, None);
        // The only route to 44/8 would be the connected /24's gateway —
        // none exists, so without the tunnel this send would be no_route.
        let far = Ipv4Addr::new(44, 56, 0, 5);
        let mut map = Map::new();
        map.insert(far, ipa(2));
        st.set_tunnel_map(Box::new(FixedTunnel(map)));
        st.ping(far, 1, 1, 8);
        let out = st.drain_actions();
        let [StackAction::Egress {
            iface,
            next_hop,
            packet,
        }] = &out[..]
        else {
            panic!("{out:?}");
        };
        assert_eq!(*iface, ifid);
        assert_eq!(*next_hop, ipa(2), "routed by the tunnel endpoint");
        assert_eq!(packet.dst, ipa(2));
        assert_eq!(packet.proto, Proto::Other(ip::IPIP));
        let inner = Ipv4Packet::decode(&packet.payload).expect("inner packet");
        assert_eq!(inner.dst, far, "inner packet intact");
        assert_eq!(inner.proto, Proto::Icmp);
        assert_eq!(st.stats().ipip_out, 1);
        assert_eq!(st.stats().no_route, 0);
    }

    #[test]
    fn ipip_input_decapsulates_and_forwards_inner() {
        let (mut st, ifid) = NetStack::simple_host(ipa(2), 24, 1500, None);
        st.cfg.ipip = true;
        st.cfg.forwarding = true;
        let inner = Ipv4Packet::new(ipa(1), Ipv4Addr::new(44, 56, 0, 5), Proto::Udp, vec![0; 8]);
        let outer = Ipv4Packet::new(ipa(1), ipa(2), Proto::Other(ip::IPIP), inner.encode());
        let acts = st.input(SimTime::ZERO, ifid, &outer.encode());
        let [StackAction::ForwardNeeded { packet, .. }] = &acts[..] else {
            panic!("{acts:?}");
        };
        assert_eq!(packet.dst, inner.dst, "inner surfaced for forwarding");
        assert_eq!(st.stats().ipip_in, 1);
    }

    #[test]
    fn ipip_input_delivers_inner_local_payload() {
        let (mut st, ifid) = NetStack::simple_host(ipa(2), 24, 1500, None);
        st.cfg.ipip = true;
        let sock = st.udp_bind(520).unwrap();
        let dg = UdpDatagram {
            src_port: 520,
            dst_port: 520,
            payload: b"hello".to_vec(),
        };
        let inner = Ipv4Packet::new(ipa(1), ipa(2), Proto::Udp, dg.encode(ipa(1), ipa(2)));
        let outer = Ipv4Packet::new(ipa(1), ipa(2), Proto::Other(ip::IPIP), inner.encode());
        let acts = st.input(SimTime::ZERO, ifid, &outer.encode());
        assert!(acts.contains(&StackAction::UdpReadable(sock)));
        assert_eq!(st.udp_recv(sock).unwrap().2.as_slice(), b"hello");
    }

    #[test]
    fn ipip_without_decap_stays_protocol_unreachable() {
        let (mut st, ifid) = NetStack::simple_host(ipa(2), 24, 1500, None);
        let inner = Ipv4Packet::new(ipa(1), ipa(9), Proto::Udp, vec![0; 8]);
        let outer = Ipv4Packet::new(ipa(1), ipa(2), Proto::Other(ip::IPIP), inner.encode());
        let acts = st.input(SimTime::ZERO, ifid, &outer.encode());
        let [StackAction::Egress { packet, .. }] = &acts[..] else {
            panic!("{acts:?}");
        };
        assert_eq!(packet.proto, Proto::Icmp);
        assert_eq!(st.stats().ipip_in, 0);
    }

    #[test]
    fn udp_broadcast_bypasses_routing_and_draws_no_icmp() {
        let (mut a, a_if) = NetStack::simple_host(ipa(1), 24, 1500, None);
        let ua = a.udp_bind(520).unwrap();
        a.udp_send_broadcast(ua, a_if, 520, b"route 44.56/16".to_vec());
        let out = a.drain_actions();
        let [StackAction::Egress {
            next_hop, packet, ..
        }] = &out[..]
        else {
            panic!("{out:?}");
        };
        assert_eq!(*next_hop, Ipv4Addr::BROADCAST);
        assert_eq!(packet.dst, Ipv4Addr::BROADCAST);
        assert_eq!(packet.ttl, 1, "broadcasts stay on the link");

        // A listener receives it; a host with no socket stays silent
        // (no port-unreachable storm back at the announcer).
        let (mut b, b_if) = NetStack::simple_host(ipa(2), 24, 1500, None);
        let ub = b.udp_bind(520).unwrap();
        let acts = b.input(SimTime::ZERO, b_if, &packet.encode());
        assert!(acts.contains(&StackAction::UdpReadable(ub)));
        assert_eq!(b.udp_recv(ub).unwrap().0, ipa(1));
        let (mut c, c_if) = NetStack::simple_host(ipa(3), 24, 1500, None);
        let acts = c.input(SimTime::ZERO, c_if, &packet.encode());
        assert!(acts.is_empty(), "no ICMP about a broadcast: {acts:?}");
    }
}
