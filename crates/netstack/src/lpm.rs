//! Compiled longest-prefix match: a flat 8-bit-stride multibit trie.
//!
//! `RouteTable::lookup_route` is a first-match scan of the ordered route
//! list — perfect as an executable oracle, linear in table size on every
//! packet. Once RIP44 fills a backbone gateway with ~1000 learned
//! subnets (E18), that scan is the per-packet cost the ES-IS/CLNP
//! kernel-module papers spend their implementation sections on. This
//! module compiles the ordered table into the DIR-24-8 idea flattened
//! into uniform strides: one `Vec<u32>` of 256-slot nodes, walked with
//! zero allocations and at most four dependent memory touches per
//! lookup, whatever the table size.
//!
//! # Encoding
//!
//! Every node is 256 consecutive `u32` slots indexed by one address
//! byte. A slot holds `0` (no route), `route_index + 1` (a leaf: the
//! winning route in the table's preference order), or `CHILD | node_id`
//! (descend). Node 0 is the root, indexed by the top byte.
//!
//! # Build
//!
//! Routes are inserted in *reverse* preference order (shortest prefix
//! first; among equal lengths, least preferred first), each overwriting
//! its covered slot range at its natural level, so the last write — the
//! most preferred route — wins, reproducing exactly the first-match
//! semantics of the ordered linear scan. Descending past a leaf pushes
//! it down into a freshly allocated child (all 256 slots seeded with the
//! covering leaf). Because children are only ever created by *longer*
//! prefixes, which sort later in the build, a route's own target slots
//! never hold a child when it is written — asserted in debug builds.
//!
//! # Invalidation
//!
//! The structure stamps the [`RouteTable`](crate::route::RouteTable)
//! generation it was built from; any table mutation bumps the generation
//! and the next fast lookup rebuilds. Tables at or below
//! [`Lpm::LINEAR_CUTOFF`] routes stay in linear mode: no nodes, no build
//! cost — the two-route host stacks that dominate the city worlds never
//! pay for the machinery.

use crate::route::Route;

/// Slot tag: the low 31 bits are a node id, not a route index.
const CHILD: u32 = 1 << 31;

/// The compiled trie. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Lpm {
    /// 256-slot nodes, concatenated; node 0 is the root. Empty in linear
    /// mode.
    nodes: Vec<u32>,
    /// Route-table generation this build reflects.
    built_gen: u64,
    /// False until the first build (generation 0 is a legal table state,
    /// so staleness cannot be inferred from the stamp alone).
    built: bool,
    /// Table small enough to scan; `nodes` is unused.
    linear: bool,
}

impl Lpm {
    /// Tables at or below this many routes are scanned, not compiled.
    /// Hosts carry 2–4 routes (connected + default); only gateways with
    /// learned backbones cross this line.
    pub const LINEAR_CUTOFF: usize = 8;

    /// True when the structure does not reflect `generation`.
    pub fn stale(&self, generation: u64) -> bool {
        !self.built || self.built_gen != generation
    }

    /// True when lookups should scan the route list directly.
    pub fn is_linear(&self) -> bool {
        self.linear
    }

    /// Number of 256-slot nodes held.
    pub fn node_count(&self) -> usize {
        self.nodes.len() / 256
    }

    /// Recompiles from `routes` (in table preference order, most
    /// preferred first), stamping `generation`.
    pub fn rebuild(&mut self, routes: &[Route], generation: u64) {
        self.built = true;
        self.built_gen = generation;
        self.linear = routes.len() <= Self::LINEAR_CUTOFF;
        self.nodes.clear();
        if self.linear {
            return;
        }
        self.nodes.resize(256, 0);
        // Reverse preference order: the table sorts longest prefix first,
        // so iterating backwards inserts shortest-first, and among equal
        // lengths least-preferred-first — every overwrite is by a route
        // the linear scan would have preferred.
        for (idx, route) in routes.iter().enumerate().rev() {
            self.insert(route, idx as u32);
        }
    }

    fn insert(&mut self, route: &Route, idx: u32) {
        let addr = u32::from(route.prefix.addr);
        let len = usize::from(route.prefix.len);
        // The node level whose byte the prefix ends in: /1–/8 root (0),
        // /9–/16 level 1, …; the default route covers the whole root.
        let level = len.saturating_sub(1) / 8;
        let mut node = 0usize;
        for l in 0..level {
            let slot = node * 256 + ((addr >> (24 - 8 * l)) & 0xff) as usize;
            let v = self.nodes[slot];
            node = if v & CHILD != 0 {
                (v & !CHILD) as usize
            } else {
                // Push-down: the covering leaf (or empty) seeds every
                // slot of the new child.
                let id = self.nodes.len() / 256;
                self.nodes.resize(self.nodes.len() + 256, v);
                self.nodes[slot] = CHILD | id as u32;
                id
            };
        }
        let base = ((addr >> (24 - 8 * level)) & 0xff) as usize;
        // Free bits within this node's byte: a /12 at level 1 spans
        // 2^(16-12) = 16 slots; the default route spans all 256.
        let span = 1usize << (8 * (level + 1) - len.max(level * 8)).min(8);
        for slot in &mut self.nodes[node * 256 + base..node * 256 + base + span] {
            debug_assert_eq!(*slot & CHILD, 0, "target slots never hold children");
            *slot = idx + 1;
        }
    }

    /// The winning route's table index for `ip`, or `None`. At most four
    /// slot reads; no allocation, no branch on table size.
    #[inline]
    pub fn walk(&self, ip: u32) -> Option<usize> {
        let mut node = 0usize;
        let mut shift = 24u32;
        loop {
            let v = self.nodes[node * 256 + ((ip >> shift) & 0xff) as usize];
            if v & CHILD == 0 {
                // 0 is "no route"; otherwise a route index + 1.
                return (v != 0).then(|| (v - 1) as usize);
            }
            node = (v & !CHILD) as usize;
            shift -= 8;
        }
    }

    /// Number of nodes touched resolving `ip` (1–4). E18's shape table.
    pub fn walk_depth(&self, ip: u32) -> usize {
        let mut node = 0usize;
        let mut shift = 24u32;
        let mut depth = 1;
        loop {
            let v = self.nodes[node * 256 + ((ip >> shift) & 0xff) as usize];
            if v & CHILD == 0 {
                return depth;
            }
            node = (v & !CHILD) as usize;
            shift -= 8;
            depth += 1;
        }
    }
}
