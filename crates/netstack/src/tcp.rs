//! TCP: segment codec and connection state machine.
//!
//! §4.1 of the paper is a TCP story. An Ethernet-side host talking
//! through the gateway to a 1200 bit/s radio host *"initially retransmits
//! packets several times before a response makes it back"*, wasting
//! bandwidth and clogging the gateway's queues; *"fortunately, many
//! implementations of TCP dynamically adjust their timeout values"*. This
//! module implements both behaviours so experiment E3 can put them side
//! by side:
//!
//! * [`RtoPolicy::Fixed`] — a constant retransmission timeout, the naive
//!   1988 implementation;
//! * [`RtoPolicy::Adaptive`] — Jacobson mean/deviation smoothing with
//!   Karn's rule (no RTT samples from retransmitted segments) and
//!   exponential backoff.
//!
//! The connection machine ([`Tcb`]) is sans-io and era-faithful in one
//! deliberate way: there is **no congestion window** (Tahoe arrived the
//! year this paper was published), so a fast sender pours its whole
//! offered window into the gateway — exactly the queueing the paper
//! observed.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use sim::wire::{internet_checksum, Reader, Writer};
use sim::{SimDuration, SimTime};

use crate::NetError;

// --- Segment codec -----------------------------------------------------

/// TCP header flags (the subset this stack uses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpFlags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgement field significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function (carried, not interpreted).
    pub psh: bool,
}

impl TcpFlags {
    fn encode(self) -> u8 {
        u8::from(self.fin)
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn decode(v: u8) -> TcpFlags {
        TcpFlags {
            fin: v & 0x01 != 0,
            syn: v & 0x02 != 0,
            rst: v & 0x04 != 0,
            psh: v & 0x08 != 0,
            ack: v & 0x10 != 0,
        }
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload octet (or of SYN/FIN).
    pub seq: u32,
    /// Acknowledgement number (valid when `flags.ack`).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// MSS option (SYN segments only).
    pub mss: Option<u16>,
    /// Payload octets.
    pub payload: Vec<u8>,
}

fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, len: u16) -> [u8; 12] {
    let s = src.octets();
    let d = dst.octets();
    [
        s[0],
        s[1],
        s[2],
        s[3],
        d[0],
        d[1],
        d[2],
        d[3],
        0,
        6,
        (len >> 8) as u8,
        len as u8,
    ]
}

impl TcpSegment {
    /// Sequence space consumed by this segment (payload + SYN + FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// Encodes the segment, computing the pseudo-header checksum.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let header_len: usize = if self.mss.is_some() { 24 } else { 20 };
        let total = header_len + self.payload.len();
        let mut w = Writer::with_capacity(total);
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u32(self.seq);
        w.u32(self.ack);
        w.u8(((header_len / 4) as u8) << 4);
        w.u8(self.flags.encode());
        w.u16(self.window);
        w.u16(0); // checksum placeholder
        w.u16(0); // urgent pointer
        if let Some(mss) = self.mss {
            w.u8(2); // kind: MSS
            w.u8(4); // length
            w.u16(mss);
        }
        w.bytes(&self.payload);
        let ph = pseudo_header(src, dst, total as u16);
        let sum = internet_checksum(&[&ph, w.as_slice()]);
        w.patch_u16(16, sum);
        w.into_bytes()
    }

    /// Decodes and verifies a segment arriving on `src`→`dst`.
    pub fn decode(bytes: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<TcpSegment, NetError> {
        if bytes.len() < 20 {
            return Err(NetError::Malformed("tcp too short"));
        }
        let ph = pseudo_header(src, dst, bytes.len() as u16);
        if internet_checksum(&[&ph, bytes]) != 0 {
            return Err(NetError::BadChecksum("tcp"));
        }
        let mut r = Reader::new(bytes);
        let src_port = r.u16().expect("len checked");
        let dst_port = r.u16().expect("len checked");
        let seq = r.u32().expect("len checked");
        let ack = r.u32().expect("len checked");
        let off = (r.u8().expect("len checked") >> 4) as usize * 4;
        let flags = TcpFlags::decode(r.u8().expect("len checked"));
        let window = r.u16().expect("len checked");
        let _sum = r.u16().expect("len checked");
        let _urg = r.u16().expect("len checked");
        if off < 20 || off > bytes.len() {
            return Err(NetError::Malformed("tcp data offset"));
        }
        // Parse options for MSS.
        let mut mss = None;
        let mut opts = Reader::new(&bytes[20..off]);
        while opts.remaining() > 0 {
            match opts.u8().expect("remaining checked") {
                0 => break,    // end of options
                1 => continue, // NOP
                2 => {
                    let len = opts.u8().map_err(|_| NetError::Malformed("mss opt"))?;
                    if len != 4 {
                        return Err(NetError::Malformed("mss opt length"));
                    }
                    mss = Some(opts.u16().map_err(|_| NetError::Malformed("mss opt"))?);
                }
                _ => {
                    // Unknown option: skip by its length byte.
                    let len = opts.u8().map_err(|_| NetError::Malformed("tcp opt"))?;
                    if len < 2 {
                        return Err(NetError::Malformed("tcp opt length"));
                    }
                    opts.skip(len as usize - 2)
                        .map_err(|_| NetError::Malformed("tcp opt"))?;
                }
            }
        }
        Ok(TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            mss,
            payload: bytes[off..].to_vec(),
        })
    }
}

// --- Sequence arithmetic ------------------------------------------------

/// `a < b` in sequence space.
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

// --- Retransmission policy ----------------------------------------------

/// How the retransmission timeout is chosen (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtoPolicy {
    /// A constant RTO, never adjusted — the misbehaving Ethernet-side
    /// implementation of the paper.
    Fixed(SimDuration),
    /// Jacobson smoothing + Karn's rule + exponential backoff.
    Adaptive,
}

/// Connection configuration.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Retransmission policy.
    pub rto: RtoPolicy,
    /// Initial RTO before any RTT sample (also the fixed policy's floor).
    pub initial_rto: SimDuration,
    /// Lower clamp on the adaptive RTO.
    pub min_rto: SimDuration,
    /// Upper clamp on any (backed-off) RTO.
    pub max_rto: SimDuration,
    /// Send-buffer capacity in octets.
    pub send_buf: usize,
    /// Receive-buffer capacity in octets (advertised window ceiling).
    pub recv_buf: usize,
    /// Our MSS, announced on SYN.
    pub mss: u16,
    /// TIME-WAIT holds for `2 * msl`.
    pub msl: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            rto: RtoPolicy::Adaptive,
            initial_rto: SimDuration::from_millis(1500),
            min_rto: SimDuration::from_millis(500),
            max_rto: SimDuration::from_secs(64),
            send_buf: 4096,
            recv_buf: 4096,
            mss: 536,
            msl: SimDuration::from_secs(15),
        }
    }
}

// --- Connection state machine -------------------------------------------

/// TCP connection states (RFC 793 names; LISTEN lives in the stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TcpState {
    Closed,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
}

/// Actions emitted by the state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum TcbEvent {
    /// Transmit this segment (the owner wraps it in IP).
    Transmit(TcpSegment),
    /// The three-way handshake completed.
    Connected,
    /// New data is available to [`Tcb::recv`].
    DataReadable,
    /// The peer closed its direction (EOF after draining).
    PeerClosed,
    /// The connection fully terminated (normally or by reset).
    Closed {
        /// True if termination was a reset rather than an orderly close.
        reset: bool,
    },
}

/// Connection statistics, the raw material of experiment E3.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcbStats {
    /// Segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Payload octets transmitted (including retransmitted octets).
    pub bytes_sent: u64,
    /// Payload octets retransmitted.
    pub bytes_retransmitted: u64,
    /// RTT samples taken.
    pub rtt_samples: u64,
    /// Current smoothed RTT estimate in seconds (adaptive mode).
    pub srtt_secs: f64,
    /// Current RTO in seconds.
    pub rto_secs: f64,
    /// Segments received with valid checksums.
    pub segments_received: u64,
    /// In-sequence payload octets delivered.
    pub bytes_delivered: u64,
    /// Out-of-order segments dropped (this receiver does not buffer them).
    pub ooo_dropped: u64,
}

/// One endpoint of a TCP connection (sans-io).
#[derive(Debug)]
pub struct Tcb {
    cfg: TcpConfig,
    state: TcpState,
    local: (Ipv4Addr, u16),
    remote: (Ipv4Addr, u16),
    /// Effective MSS (min of ours and the peer's announcement).
    mss: u16,

    // Send side.
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    snd_wnd: u16,
    /// Unacknowledged + unsent payload, starting at `snd_una` (+1 while
    /// our SYN is unacked).
    send_buf: VecDeque<u8>,
    fin_queued: bool,
    fin_sent: bool,

    // Receive side.
    rcv_nxt: u32,
    recv_buf: VecDeque<u8>,
    peer_fin_seen: bool,
    /// Window we advertised most recently.
    advertised_wnd: u16,

    // Timers & RTO state.
    rtx_deadline: Option<SimTime>,
    time_wait_deadline: Option<SimTime>,
    srtt: Option<f64>,
    rttvar: f64,
    backoff: u32,
    /// Outstanding RTT probe: (sequence that must be acked, send time).
    rtt_probe: Option<(u32, SimTime)>,
    /// Sequence space the next pump re-emits as retransmission (set by a
    /// go-back-N rewind; Karn: those octets must not carry an RTT probe).
    rtx_budget: usize,

    stats: TcbStats,
}

impl Tcb {
    /// Active open: creates a connection and emits the SYN.
    pub fn connect(
        now: SimTime,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        cfg: TcpConfig,
    ) -> (Tcb, Vec<TcbEvent>) {
        let mut tcb = Tcb::new(local, remote, iss, cfg);
        tcb.state = TcpState::SynSent;
        tcb.snd_nxt = iss.wrapping_add(1);
        let syn = TcpSegment {
            src_port: local.1,
            dst_port: remote.1,
            seq: iss,
            ack: 0,
            flags: TcpFlags {
                syn: true,
                ..TcpFlags::default()
            },
            window: cfg.recv_buf.min(65535) as u16,
            mss: Some(cfg.mss),
            payload: Vec::new(),
        };
        let mut ev = Vec::new();
        tcb.rtt_probe = Some((tcb.snd_nxt, now));
        tcb.transmit(now, syn, false, &mut ev);
        tcb.arm_rtx(now);
        (tcb, ev)
    }

    /// Passive open: a listener received `syn`; answer with SYN-ACK.
    pub fn accept(
        now: SimTime,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        syn: &TcpSegment,
        iss: u32,
        cfg: TcpConfig,
    ) -> (Tcb, Vec<TcbEvent>) {
        debug_assert!(syn.flags.syn && !syn.flags.ack);
        let mut tcb = Tcb::new(local, remote, iss, cfg);
        tcb.state = TcpState::SynReceived;
        tcb.rcv_nxt = syn.seq.wrapping_add(1);
        tcb.snd_wnd = syn.window;
        if let Some(peer_mss) = syn.mss {
            tcb.mss = tcb.mss.min(peer_mss);
        }
        tcb.snd_nxt = iss.wrapping_add(1);
        let synack = TcpSegment {
            src_port: local.1,
            dst_port: remote.1,
            seq: iss,
            ack: tcb.rcv_nxt,
            flags: TcpFlags {
                syn: true,
                ack: true,
                ..TcpFlags::default()
            },
            window: tcb.window_to_advertise(),
            mss: Some(cfg.mss),
            payload: Vec::new(),
        };
        let mut ev = Vec::new();
        tcb.transmit(now, synack, false, &mut ev);
        tcb.arm_rtx(now);
        (tcb, ev)
    }

    fn new(local: (Ipv4Addr, u16), remote: (Ipv4Addr, u16), iss: u32, cfg: TcpConfig) -> Tcb {
        Tcb {
            cfg,
            state: TcpState::Closed,
            local,
            remote,
            mss: cfg.mss,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            send_buf: VecDeque::new(),
            fin_queued: false,
            fin_sent: false,
            rcv_nxt: 0,
            recv_buf: VecDeque::new(),
            peer_fin_seen: false,
            advertised_wnd: cfg.recv_buf.min(65535) as u16,
            rtx_deadline: None,
            time_wait_deadline: None,
            srtt: None,
            rttvar: 0.0,
            backoff: 0,
            rtt_probe: None,
            rtx_budget: 0,
            stats: TcbStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Local (address, port).
    pub fn local(&self) -> (Ipv4Addr, u16) {
        self.local
    }

    /// Remote (address, port).
    pub fn remote(&self) -> (Ipv4Addr, u16) {
        self.remote
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TcbStats {
        let mut s = self.stats;
        s.srtt_secs = self.srtt.unwrap_or(0.0);
        s.rto_secs = self.current_rto().as_secs_f64();
        s
    }

    /// Effective MSS after option negotiation.
    pub fn mss(&self) -> u16 {
        self.mss
    }

    /// Octets sitting in the send buffer (unacked + unsent).
    pub fn send_backlog(&self) -> usize {
        self.send_buf.len()
    }

    /// Free space in the send buffer.
    pub fn send_capacity(&self) -> usize {
        self.cfg.send_buf.saturating_sub(self.send_buf.len())
    }

    /// Octets readable right now.
    pub fn recv_available(&self) -> usize {
        self.recv_buf.len()
    }

    /// True once the peer has closed and the buffer is drained.
    pub fn at_eof(&self) -> bool {
        self.peer_fin_seen && self.recv_buf.is_empty()
    }

    /// Earliest timer deadline.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.rtx_deadline, self.time_wait_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    // --- User calls -----------------------------------------------------

    /// Queues data for transmission; returns how many octets were accepted
    /// (bounded by send-buffer space) plus any emitted segments.
    pub fn send(&mut self, now: SimTime, data: &[u8]) -> (usize, Vec<TcbEvent>) {
        if !matches!(
            self.state,
            TcpState::SynSent | TcpState::SynReceived | TcpState::Established | TcpState::CloseWait
        ) || self.fin_queued
        {
            return (0, Vec::new());
        }
        let take = data.len().min(self.send_capacity());
        self.send_buf.extend(&data[..take]);
        let mut ev = Vec::new();
        if matches!(self.state, TcpState::Established | TcpState::CloseWait) {
            self.pump(now, &mut ev);
        }
        (take, ev)
    }

    /// Drains received data. `now` lets the receiver send a window update
    /// if the advertised window had collapsed.
    pub fn recv(&mut self, now: SimTime) -> (Vec<u8>, Vec<TcbEvent>) {
        let data: Vec<u8> = self.recv_buf.drain(..).collect();
        let mut ev = Vec::new();
        if !data.is_empty() && self.advertised_wnd == 0 && self.state == TcpState::Established {
            // Window reopened: tell the stalled sender.
            let ack = self.bare_ack();
            self.transmit(now, ack, false, &mut ev);
        }
        (data, ev)
    }

    /// Closes the send direction (queues a FIN after pending data).
    pub fn close(&mut self, now: SimTime) -> Vec<TcbEvent> {
        let mut ev = Vec::new();
        match self.state {
            TcpState::SynSent => {
                self.enter_closed(false, &mut ev);
            }
            TcpState::SynReceived | TcpState::Established => {
                self.fin_queued = true;
                self.state = TcpState::FinWait1;
                self.pump(now, &mut ev);
            }
            TcpState::CloseWait => {
                self.fin_queued = true;
                self.state = TcpState::LastAck;
                self.pump(now, &mut ev);
            }
            _ => {}
        }
        ev
    }

    /// Aborts the connection with a RST.
    pub fn abort(&mut self, now: SimTime) -> Vec<TcbEvent> {
        let mut ev = Vec::new();
        if !matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            let rst = TcpSegment {
                src_port: self.local.1,
                dst_port: self.remote.1,
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags {
                    rst: true,
                    ack: true,
                    ..TcpFlags::default()
                },
                window: 0,
                mss: None,
                payload: Vec::new(),
            };
            self.transmit(now, rst, false, &mut ev);
        }
        self.enter_closed(true, &mut ev);
        ev
    }

    // --- Segment arrival --------------------------------------------------

    /// Processes an arriving segment.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) -> Vec<TcbEvent> {
        let mut ev = Vec::new();
        self.stats.segments_received += 1;
        if seg.flags.rst {
            if self.state != TcpState::Closed {
                self.enter_closed(true, &mut ev);
            }
            return ev;
        }
        match self.state {
            TcpState::Closed => {}
            TcpState::SynSent => self.seg_syn_sent(now, seg, &mut ev),
            _ => self.seg_synchronized(now, seg, &mut ev),
        }
        ev
    }

    fn seg_syn_sent(&mut self, now: SimTime, seg: &TcpSegment, ev: &mut Vec<TcbEvent>) {
        if seg.flags.syn && seg.flags.ack {
            if seg.ack != self.snd_nxt {
                return; // bogus ack of our SYN
            }
            self.rcv_nxt = seg.seq.wrapping_add(1);
            self.snd_una = seg.ack;
            self.snd_wnd = seg.window;
            if let Some(peer_mss) = seg.mss {
                self.mss = self.mss.min(peer_mss);
            }
            self.take_rtt_sample(now);
            self.backoff = 0;
            self.state = TcpState::Established;
            self.rtx_deadline = None;
            ev.push(TcbEvent::Connected);
            // ACK the SYN (piggybacks on data if pump sends any).
            let before = ev.len();
            self.pump(now, ev);
            if ev.len() == before {
                let ack = self.bare_ack();
                self.transmit(now, ack, false, ev);
            }
        }
        // Simultaneous open (bare SYN) is not supported; ignored.
    }

    fn seg_synchronized(&mut self, now: SimTime, seg: &TcpSegment, ev: &mut Vec<TcbEvent>) {
        // --- ACK processing ---
        if seg.flags.ack {
            let ack = seg.ack;
            if seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_nxt) {
                // New data acknowledged.
                let syn_unacked = self.state == TcpState::SynReceived
                    || (!self.fin_sent && self.snd_una == self.iss);
                let mut acked = ack.wrapping_sub(self.snd_una) as usize;
                if syn_unacked && acked > 0 {
                    acked -= 1; // the SYN octet
                }
                if self.fin_sent && ack == self.snd_nxt && acked > 0 {
                    acked -= 1; // the FIN octet
                }
                let drop = acked.min(self.send_buf.len());
                self.send_buf.drain(..drop);
                self.snd_una = ack;
                // Karn: only sample if the probe sequence is now covered,
                // and — crucially — keep the backed-off RTO until a valid
                // sample arrives. The naive fixed-RTO host resets its
                // backoff on any progress, which is exactly why it keeps
                // retransmitting on a long path (§4.1).
                if let Some((probe_seq, _)) = self.rtt_probe {
                    if seq_le(probe_seq, ack) {
                        self.take_rtt_sample(now);
                        self.backoff = 0;
                    }
                }
                if self.cfg.rto != RtoPolicy::Adaptive {
                    self.backoff = 0;
                }
                if self.state == TcpState::SynReceived {
                    self.state = TcpState::Established;
                    ev.push(TcbEvent::Connected);
                }
                let fin_acked = self.fin_sent && ack == self.snd_nxt;
                match (self.state, fin_acked) {
                    (TcpState::FinWait1, true) => self.state = TcpState::FinWait2,
                    (TcpState::Closing, true) => self.enter_time_wait(now, ev),
                    (TcpState::LastAck, true) => {
                        self.enter_closed(false, ev);
                        return;
                    }
                    _ => {}
                }
                if self.outstanding() == 0 {
                    self.rtx_deadline = None;
                } else {
                    self.arm_rtx(now);
                }
            }
            self.snd_wnd = seg.window;
        }

        if self.state == TcpState::Closed {
            return;
        }

        // --- Data processing ---
        let mut should_ack = false;
        if seg.flags.syn {
            // A retransmitted SYN/SYN-ACK in a synchronized state means the
            // peer never saw our ACK of its SYN (RFC 793: unacceptable
            // segments elicit an ACK). Without this the peer stays in
            // SYN-RECEIVED retransmitting forever while we sit Established
            // with nothing to send.
            should_ack = true;
        }
        if !seg.payload.is_empty() {
            if seg.seq == self.rcv_nxt && !self.peer_fin_seen {
                let room = self.cfg.recv_buf - self.recv_buf.len();
                let take = seg.payload.len().min(room);
                self.recv_buf.extend(&seg.payload[..take]);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
                self.stats.bytes_delivered += take as u64;
                if take > 0 {
                    ev.push(TcbEvent::DataReadable);
                }
                should_ack = true;
            } else {
                // Out of order or duplicate: this 1988-style receiver does
                // not buffer it; a duplicate ACK invites retransmission.
                self.stats.ooo_dropped += 1;
                should_ack = true;
            }
        }

        // --- FIN processing ---
        let fin_at = seg.seq.wrapping_add(seg.payload.len() as u32);
        if seg.flags.fin && fin_at == self.rcv_nxt && !self.peer_fin_seen {
            self.peer_fin_seen = true;
            self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
            should_ack = true;
            ev.push(TcbEvent::PeerClosed);
            match self.state {
                TcpState::Established => self.state = TcpState::CloseWait,
                TcpState::FinWait1 => {
                    // Our FIN not yet acked: simultaneous close.
                    self.state = TcpState::Closing;
                }
                TcpState::FinWait2 => self.enter_time_wait(now, ev),
                _ => {}
            }
        } else if seg.flags.fin && fin_at != self.rcv_nxt {
            should_ack = true; // out-of-order FIN: dup-ack it
        }

        // --- Output ---
        let before = ev.len();
        self.pump(now, ev);
        if should_ack && ev.len() == before {
            let ack = self.bare_ack();
            self.transmit(now, ack, false, ev);
        }
    }

    // --- Timers -----------------------------------------------------------

    /// Fires expired timers.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<TcbEvent> {
        let mut ev = Vec::new();
        if self.time_wait_deadline.is_some_and(|t| t <= now) {
            self.time_wait_deadline = None;
            self.enter_closed(false, &mut ev);
            return ev;
        }
        if self.rtx_deadline.is_some_and(|t| t <= now) {
            self.rtx_deadline = None;
            self.retransmit(now, &mut ev);
        }
        ev
    }

    fn retransmit(&mut self, now: SimTime, ev: &mut Vec<TcbEvent>) {
        self.backoff = (self.backoff + 1).min(12);
        // Karn: a retransmission invalidates the outstanding probe.
        self.rtt_probe = None;
        match self.state {
            TcpState::SynSent => {
                let syn = TcpSegment {
                    src_port: self.local.1,
                    dst_port: self.remote.1,
                    seq: self.iss,
                    ack: 0,
                    flags: TcpFlags {
                        syn: true,
                        ..TcpFlags::default()
                    },
                    window: self.window_to_advertise(),
                    mss: Some(self.cfg.mss),
                    payload: Vec::new(),
                };
                self.transmit(now, syn, true, ev);
                self.arm_rtx(now);
            }
            TcpState::SynReceived => {
                let synack = TcpSegment {
                    src_port: self.local.1,
                    dst_port: self.remote.1,
                    seq: self.iss,
                    ack: self.rcv_nxt,
                    flags: TcpFlags {
                        syn: true,
                        ack: true,
                        ..TcpFlags::default()
                    },
                    window: self.window_to_advertise(),
                    mss: Some(self.cfg.mss),
                    payload: Vec::new(),
                };
                self.transmit(now, synack, true, ev);
                self.arm_rtx(now);
            }
            TcpState::Established
            | TcpState::CloseWait
            | TcpState::FinWait1
            | TcpState::Closing
            | TcpState::LastAck => {
                let outstanding = self.outstanding();
                if outstanding > 0 {
                    // Go-back-N: rewind to the first unacknowledged octet
                    // and resend everything in order. (Resending only the
                    // head chunk deadlocks behind a standing hole when the
                    // receiver, which buffers nothing out of order, has
                    // dropped the rest of the window.)
                    self.snd_nxt = self.snd_una;
                    if self.fin_sent {
                        self.fin_sent = false; // pump re-emits it in order
                    }
                    self.rtx_budget = outstanding as usize;
                    self.pump(now, ev);
                } else if !self.send_buf.is_empty() {
                    // Zero-window probe: one octet beyond the window.
                    let seg = TcpSegment {
                        src_port: self.local.1,
                        dst_port: self.remote.1,
                        seq: self.snd_una,
                        ack: self.rcv_nxt,
                        flags: TcpFlags {
                            ack: true,
                            ..TcpFlags::default()
                        },
                        window: self.window_to_advertise(),
                        mss: None,
                        payload: self.send_buf.iter().take(1).copied().collect(),
                    };
                    self.snd_nxt = self.snd_una.wrapping_add(1);
                    self.transmit(now, seg, true, ev);
                }
                self.arm_rtx(now);
            }
            _ => {}
        }
    }

    // --- Internals ----------------------------------------------------------

    /// Sequence space outstanding (sent, unacked).
    fn outstanding(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Octets of `send_buf` already transmitted.
    fn sent_unacked_payload(&self) -> usize {
        let mut o = self.outstanding() as usize;
        // Subtract SYN/FIN octets that are part of `outstanding`.
        if self.snd_una == self.iss && self.state != TcpState::Closed {
            o = o.saturating_sub(1);
        }
        if self.fin_sent {
            o = o.saturating_sub(1);
        }
        o
    }

    /// Transmits new data allowed by the peer's window.
    fn pump(&mut self, now: SimTime, ev: &mut Vec<TcbEvent>) {
        if !matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        ) {
            return;
        }
        loop {
            let sent = self.sent_unacked_payload();
            let unsent = self.send_buf.len().saturating_sub(sent);
            let window_left = usize::from(self.snd_wnd).saturating_sub(self.outstanding() as usize);
            if unsent == 0 || window_left == 0 {
                break;
            }
            let n = unsent.min(window_left).min(usize::from(self.mss));
            let chunk: Vec<u8> = self.send_buf.iter().skip(sent).take(n).copied().collect();
            let last = sent + n == self.send_buf.len();
            let fin_rides = self.fin_queued && !self.fin_sent && last && window_left > n;
            let seg = TcpSegment {
                src_port: self.local.1,
                dst_port: self.remote.1,
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags {
                    ack: true,
                    psh: last,
                    fin: fin_rides,
                    ..TcpFlags::default()
                },
                window: self.window_to_advertise(),
                mss: None,
                payload: chunk,
            };
            self.snd_nxt = self.snd_nxt.wrapping_add(seg.seq_len());
            if fin_rides {
                self.fin_sent = true;
            }
            let is_rtx = self.rtx_budget > 0;
            if !is_rtx && self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.snd_nxt, now));
            }
            self.rtx_budget = self.rtx_budget.saturating_sub(seg.seq_len() as usize);
            self.transmit(now, seg, is_rtx, ev);
            self.arm_rtx_if_unarmed(now);
        }
        // A bare FIN if queued, all data sent, and window allows.
        if self.fin_queued && !self.fin_sent && self.sent_unacked_payload() == self.send_buf.len() {
            let fin = TcpSegment {
                src_port: self.local.1,
                dst_port: self.remote.1,
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags: TcpFlags {
                    fin: true,
                    ack: true,
                    ..TcpFlags::default()
                },
                window: self.window_to_advertise(),
                mss: None,
                payload: Vec::new(),
            };
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.fin_sent = true;
            let is_rtx = self.rtx_budget > 0;
            self.rtx_budget = self.rtx_budget.saturating_sub(1);
            self.transmit(now, fin, is_rtx, ev);
            self.arm_rtx_if_unarmed(now);
        }
        // Zero-window persist: data pending, nothing in flight — keep the
        // retransmission timer armed so a window probe eventually fires.
        if self.outstanding() == 0 && !self.send_buf.is_empty() {
            self.arm_rtx_if_unarmed(now);
        }
    }

    fn bare_ack(&mut self) -> TcpSegment {
        TcpSegment {
            src_port: self.local.1,
            dst_port: self.remote.1,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags: TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
            window: self.window_to_advertise(),
            mss: None,
            payload: Vec::new(),
        }
    }

    fn window_to_advertise(&mut self) -> u16 {
        let w = (self.cfg.recv_buf - self.recv_buf.len()).min(65535) as u16;
        self.advertised_wnd = w;
        w
    }

    fn transmit(&mut self, _now: SimTime, seg: TcpSegment, is_rtx: bool, ev: &mut Vec<TcbEvent>) {
        self.stats.segments_sent += 1;
        self.stats.bytes_sent += seg.payload.len() as u64;
        if is_rtx {
            self.stats.retransmissions += 1;
            self.stats.bytes_retransmitted += seg.payload.len() as u64;
        }
        ev.push(TcbEvent::Transmit(seg));
    }

    fn current_rto(&self) -> SimDuration {
        let base = match self.cfg.rto {
            RtoPolicy::Fixed(d) => d,
            RtoPolicy::Adaptive => match self.srtt {
                None => self.cfg.initial_rto,
                Some(srtt) => {
                    let rto = srtt + 4.0 * self.rttvar;
                    SimDuration::from_secs_f64(rto)
                        .max(self.cfg.min_rto)
                        .min(self.cfg.max_rto)
                }
            },
        };
        let backed = base.saturating_mul(1u64 << self.backoff.min(12));
        backed.min(self.cfg.max_rto)
    }

    fn arm_rtx(&mut self, now: SimTime) {
        self.rtx_deadline = Some(now + self.current_rto());
    }

    fn arm_rtx_if_unarmed(&mut self, now: SimTime) {
        if self.rtx_deadline.is_none() {
            self.arm_rtx(now);
        }
    }

    fn take_rtt_sample(&mut self, now: SimTime) {
        let Some((_, sent_at)) = self.rtt_probe.take() else {
            return;
        };
        if self.cfg.rto != RtoPolicy::Adaptive {
            return;
        }
        let sample = now.saturating_since(sent_at).as_secs_f64();
        self.stats.rtt_samples += 1;
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                let err = sample - srtt;
                self.srtt = Some(srtt + err / 8.0);
                self.rttvar += (err.abs() - self.rttvar) / 4.0;
            }
        }
    }

    fn enter_time_wait(&mut self, now: SimTime, _ev: &mut [TcbEvent]) {
        self.state = TcpState::TimeWait;
        self.rtx_deadline = None;
        self.time_wait_deadline = Some(now + self.cfg.msl * 2);
    }

    fn enter_closed(&mut self, reset: bool, ev: &mut Vec<TcbEvent>) {
        if self.state != TcpState::Closed {
            self.state = TcpState::Closed;
            ev.push(TcbEvent::Closed { reset });
        }
        self.rtx_deadline = None;
        self.time_wait_deadline = None;
        self.send_buf.clear();
    }
}

// The SYN-sent special case for connect-time RTT sampling.
impl Tcb {
    /// Arms the connect-time RTT probe (called internally at SYN time via
    /// `connect`; exposed for tests).
    pub fn has_rtt_probe(&self) -> bool {
        self.rtt_probe.is_some()
    }
}

#[cfg(test)]
mod tests;
