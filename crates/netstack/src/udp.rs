//! UDP datagrams (RFC 768), with the IPv4 pseudo-header checksum.
//!
//! The distributed callbook service the paper sketches in §5 runs over
//! UDP in this reproduction — "send off a query to the appropriate
//! server" is a single datagram each way.

use std::net::Ipv4Addr;

use sim::wire::{internet_checksum, Reader, Writer};

use crate::NetError;

/// A UDP datagram (header + payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload octets.
    pub payload: Vec<u8>,
}

fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) -> [u8; 12] {
    let s = src.octets();
    let d = dst.octets();
    [
        s[0],
        s[1],
        s[2],
        s[3],
        d[0],
        d[1],
        d[2],
        d[3],
        0,
        proto,
        (len >> 8) as u8,
        len as u8,
    ]
}

impl UdpDatagram {
    /// Encodes the datagram, computing the checksum over the IPv4
    /// pseudo-header.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let len = (8 + self.payload.len()) as u16;
        let mut w = Writer::with_capacity(len as usize);
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u16(len);
        w.u16(0);
        w.bytes(&self.payload);
        let ph = pseudo_header(src, dst, 17, len);
        let mut sum = internet_checksum(&[&ph, w.as_slice()]);
        if sum == 0 {
            sum = 0xFFFF; // transmitted all-ones means "zero"
        }
        w.patch_u16(6, sum);
        w.into_bytes()
    }

    /// Decodes and verifies a datagram arriving on `src`→`dst`.
    pub fn decode(bytes: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpDatagram, NetError> {
        let (src_port, dst_port, payload) = UdpDatagram::decode_ref(bytes, src, dst)?;
        Ok(UdpDatagram {
            src_port,
            dst_port,
            payload: payload.to_vec(),
        })
    }

    /// Decodes and verifies a datagram without copying the payload:
    /// `(src_port, dst_port, payload)` borrowed from `bytes`. The stack's
    /// receive path uses this to land payloads straight in pooled buffers.
    pub fn decode_ref(
        bytes: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> Result<(u16, u16, &[u8]), NetError> {
        let mut r = Reader::new(bytes);
        let src_port = r.u16().map_err(|_| NetError::Malformed("udp header"))?;
        let dst_port = r.u16().map_err(|_| NetError::Malformed("udp header"))?;
        let len = r.u16().map_err(|_| NetError::Malformed("udp header"))? as usize;
        let checksum = r.u16().map_err(|_| NetError::Malformed("udp header"))?;
        if len < 8 || len > bytes.len() {
            return Err(NetError::Malformed("udp length"));
        }
        if checksum != 0 {
            let ph = pseudo_header(src, dst, 17, len as u16);
            if internet_checksum(&[&ph, &bytes[..len]]) != 0 {
                return Err(NetError::BadChecksum("udp"));
            }
        }
        Ok((src_port, dst_port, &bytes[8..len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(44, 24, 0, 5), Ipv4Addr::new(128, 95, 1, 4))
    }

    #[test]
    fn roundtrip() {
        let (s, d) = addrs();
        let dg = UdpDatagram {
            src_port: 2001,
            dst_port: 4242,
            payload: b"QUERY N7AKR".to_vec(),
        };
        let bytes = dg.encode(s, d);
        assert_eq!(UdpDatagram::decode(&bytes, s, d).unwrap(), dg);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (s, d) = addrs();
        let dg = UdpDatagram {
            src_port: 1,
            dst_port: 2,
            payload: vec![],
        };
        let bytes = dg.encode(s, d);
        assert_eq!(bytes.len(), 8);
        assert_eq!(UdpDatagram::decode(&bytes, s, d).unwrap(), dg);
    }

    #[test]
    fn wrong_addresses_fail_checksum() {
        let (s, d) = addrs();
        let dg = UdpDatagram {
            src_port: 1,
            dst_port: 2,
            payload: b"data".to_vec(),
        };
        let bytes = dg.encode(s, d);
        // Note: merely swapping src/dst would NOT change the checksum (the
        // ones-complement sum is commutative); use a different host.
        let other = Ipv4Addr::new(44, 56, 0, 9);
        assert!(matches!(
            UdpDatagram::decode(&bytes, other, d),
            Err(NetError::BadChecksum(_))
        ));
    }

    #[test]
    fn payload_corruption_detected() {
        let (s, d) = addrs();
        let dg = UdpDatagram {
            src_port: 1,
            dst_port: 2,
            payload: b"data!".to_vec(),
        };
        let mut bytes = dg.encode(s, d);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(UdpDatagram::decode(&bytes, s, d).is_err());
    }

    #[test]
    fn trailing_padding_is_trimmed_by_length_field() {
        let (s, d) = addrs();
        let dg = UdpDatagram {
            src_port: 5,
            dst_port: 6,
            payload: b"xy".to_vec(),
        };
        let mut bytes = dg.encode(s, d);
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(UdpDatagram::decode(&bytes, s, d).unwrap(), dg);
    }

    #[test]
    fn short_or_lying_length_rejected() {
        let (s, d) = addrs();
        assert!(UdpDatagram::decode(&[0u8; 4], s, d).is_err());
        let dg = UdpDatagram {
            src_port: 5,
            dst_port: 6,
            payload: b"xy".to_vec(),
        };
        let bytes = dg.encode(s, d);
        assert!(UdpDatagram::decode(&bytes[..9], s, d).is_err());
    }
}
