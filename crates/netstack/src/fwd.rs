//! The per-destination next-hop cache: one direct-mapped probe that
//! memoizes the *entire* forwarding decision.
//!
//! Even with the compiled LPM (see [`crate::lpm`]), every packet through
//! `send_ip` still pays a tunnel-map consultation plus a trie walk. The
//! paper's gateway forwards long flows to a handful of destinations, so
//! the full decision — matched prefix, egress interface, next hop, and
//! the IPIP tunnel endpoint the encap table would pick — is memoized
//! here keyed on the destination address, exactly the discipline of the
//! filter engine's decision cache (DESIGN.md §13).
//!
//! Invalidation is O(1) and total: every slot stamps the route-table and
//! tunnel-map generation counters it was filled under, and a probe only
//! hits when *both* stamps still match. A route add/remove/expiry or a
//! tunnel learn/expire bumps its counter and thereby kills every cached
//! decision at once, with no sweep. Stamps are compared for equality, so
//! counter wraparound is harmless. Negative decisions (no route) are
//! cached too — a flood at an unreachable destination must not degrade
//! into a per-packet table walk.
//!
//! Two decision kinds share the cache without aliasing:
//! [`FwdKind::Routed`] memoizes a bare route lookup (the TCP/UDP
//! source-selection sites, and `send_ip` for local or already-IPIP
//! traffic, where the tunnel map is never consulted), while
//! [`FwdKind::Full`] memoizes tunnel consultation + route lookup. The
//! cache is off at `bits == 0` — the default: a city world holds ~10⁵
//! host stacks that would otherwise each carry slots — and experiments
//! that enable it (E18) get the differential guarantee that a cached
//! stack is observationally identical to an uncached twin.

use std::net::Ipv4Addr;

use crate::route::Prefix;
use crate::stack::IfaceId;

/// Which decision a slot memoizes (doubles as the occupancy tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FwdKind {
    /// Bare route lookup; the tunnel map was not consulted.
    Routed = 1,
    /// Tunnel consultation then route lookup on the (possibly wrapped)
    /// destination.
    Full = 2,
}

/// A memoized forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FwdDecision {
    /// The table had nothing for this destination (negative cache). The
    /// tunnel endpoint the encap table had claimed, if any, is kept so a
    /// replay reproduces the uncached path's wrap accounting exactly
    /// (the original wraps first and only then discovers there is no
    /// route to the endpoint).
    NoRoute {
        /// Endpoint the encap table returned before routing failed.
        encap: Option<Ipv4Addr>,
    },
    /// Deliverable.
    Via {
        /// The prefix that won longest-prefix match (of the tunnel
        /// endpoint when `encap` is set).
        prefix: Prefix,
        /// Egress interface.
        iface: IfaceId,
        /// Link-layer resolution target.
        hop: Ipv4Addr,
        /// IPIP tunnel endpoint to wrap toward, if the encap table
        /// claimed the destination.
        encap: Option<Ipv4Addr>,
    },
}

impl FwdDecision {
    /// The tunnel endpoint embedded in the decision, if any.
    pub fn encap(&self) -> Option<Ipv4Addr> {
        match *self {
            FwdDecision::NoRoute { encap } | FwdDecision::Via { encap, .. } => encap,
        }
    }
}

/// A probe's outcome. `Stale` is a miss whose slot held this key under
/// an old generation — surfaced separately so the invalidation counter
/// can tell churn from cold slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FwdProbe {
    /// Valid decision.
    Hit(FwdDecision),
    /// Key present but a generation stamp changed.
    Stale,
    /// Slot empty or holding another key.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    dst: u32,
    kind: Option<FwdKind>,
    route_gen: u64,
    tunnel_gen: u64,
    decision: FwdDecision,
}

const EMPTY: Slot = Slot {
    dst: 0,
    kind: None,
    route_gen: 0,
    tunnel_gen: 0,
    decision: FwdDecision::NoRoute { encap: None },
};

/// Multiplicative hash seed (same constant as the filter decision
/// cache / FxHash).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The direct-mapped cache. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct FwdCache {
    slots: Vec<Slot>,
    bits: u8,
}

impl FwdCache {
    /// `2^bits` slots; `bits == 0` disables the cache entirely.
    pub fn new(bits: u8) -> FwdCache {
        let bits = bits.min(24);
        FwdCache {
            slots: if bits == 0 {
                Vec::new()
            } else {
                vec![EMPTY; 1 << bits]
            },
            bits,
        }
    }

    /// False when constructed with `bits == 0`.
    pub fn enabled(&self) -> bool {
        self.bits != 0
    }

    #[inline]
    fn index(&self, dst: u32, kind: FwdKind) -> usize {
        let key = u64::from(dst) | (kind as u64) << 32;
        (key.wrapping_mul(SEED) >> (64 - self.bits)) as usize
    }

    /// Looks up the decision for `(dst, kind)` filled under exactly
    /// (`route_gen`, `tunnel_gen`).
    #[inline]
    pub fn probe(&self, dst: Ipv4Addr, kind: FwdKind, route_gen: u64, tunnel_gen: u64) -> FwdProbe {
        if self.bits == 0 {
            return FwdProbe::Miss;
        }
        let dst = u32::from(dst);
        let s = &self.slots[self.index(dst, kind)];
        if s.kind != Some(kind) || s.dst != dst {
            return FwdProbe::Miss;
        }
        if s.route_gen != route_gen || s.tunnel_gen != tunnel_gen {
            return FwdProbe::Stale;
        }
        FwdProbe::Hit(s.decision)
    }

    /// Installs (or overwrites) the slot for `(dst, kind)`.
    #[inline]
    pub fn store(
        &mut self,
        dst: Ipv4Addr,
        kind: FwdKind,
        route_gen: u64,
        tunnel_gen: u64,
        decision: FwdDecision,
    ) {
        if self.bits == 0 {
            return;
        }
        let dst = u32::from(dst);
        let at = self.index(dst, kind);
        self.slots[at] = Slot {
            dst,
            kind: Some(kind),
            route_gen,
            tunnel_gen,
            decision,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(iface: usize) -> FwdDecision {
        FwdDecision::Via {
            prefix: Prefix::amprnet(),
            iface: IfaceId::new(iface),
            hop: Ipv4Addr::new(44, 1, 1, 1),
            encap: None,
        }
    }

    #[test]
    fn hit_requires_both_generations() {
        let mut c = FwdCache::new(4);
        let dst = Ipv4Addr::new(44, 24, 0, 5);
        c.store(dst, FwdKind::Full, 7, 3, dec(1));
        assert_eq!(c.probe(dst, FwdKind::Full, 7, 3), FwdProbe::Hit(dec(1)));
        assert_eq!(c.probe(dst, FwdKind::Full, 8, 3), FwdProbe::Stale);
        assert_eq!(c.probe(dst, FwdKind::Full, 7, 4), FwdProbe::Stale);
        assert_eq!(c.probe(dst, FwdKind::Routed, 7, 3), FwdProbe::Miss);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = FwdCache::new(0);
        let dst = Ipv4Addr::new(44, 24, 0, 5);
        c.store(dst, FwdKind::Routed, 1, 0, dec(0));
        assert_eq!(c.probe(dst, FwdKind::Routed, 1, 0), FwdProbe::Miss);
    }

    #[test]
    fn generation_stamps_compare_for_equality_across_wrap() {
        let mut c = FwdCache::new(4);
        let dst = Ipv4Addr::new(44, 24, 0, 5);
        c.store(dst, FwdKind::Routed, u64::MAX, 0, dec(1));
        assert_eq!(
            c.probe(dst, FwdKind::Routed, u64::MAX, 0),
            FwdProbe::Hit(dec(1))
        );
        // The table wraps MAX → 0: the stamp mismatches, never "less than".
        assert_eq!(c.probe(dst, FwdKind::Routed, 0, 0), FwdProbe::Stale);
        c.store(dst, FwdKind::Routed, 0, 0, dec(2));
        assert_eq!(c.probe(dst, FwdKind::Routed, 0, 0), FwdProbe::Hit(dec(2)));
    }
}
