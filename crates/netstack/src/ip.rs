//! IPv4: packet codec, header checksum, fragmentation, reassembly.
//!
//! The gateway's two links have wildly different MTUs — 1500 octets on the
//! Ethernet, 256 on AX.25 — so forwarding from the fast side to the radio
//! side routinely fragments (experiment E9 measures the cost). The codec
//! is RFC 791 without options.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use sim::pktbuf::ByteSink;
use sim::wire::{internet_checksum, Codec, Reader};
use sim::{SimDuration, SimTime};

use crate::NetError;

/// IP protocol numbers used by this stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// 1 — ICMP.
    Icmp,
    /// 6 — TCP.
    Tcp,
    /// 17 — UDP.
    Udp,
    /// Anything else, carried opaquely.
    Other(u8),
}

impl Proto {
    /// Wire value.
    pub fn code(self) -> u8 {
        match self {
            Proto::Icmp => 1,
            Proto::Tcp => 6,
            Proto::Udp => 17,
            Proto::Other(v) => v,
        }
    }

    /// Decodes a wire value.
    pub fn from_code(v: u8) -> Proto {
        match v {
            1 => Proto::Icmp,
            6 => Proto::Tcp,
            17 => Proto::Udp,
            other => Proto::Other(other),
        }
    }
}

/// IP protocol 4 — IP-in-IP encapsulation (the AMPRnet tunnel mesh).
/// Decoded as [`Proto::Other`]`(IPIP)`; only stacks with decapsulation
/// enabled treat it specially.
pub const IPIP: u8 = 4;

/// IPv4 header length (no options).
pub const HEADER_LEN: usize = 20;

/// Default initial TTL.
pub const DEFAULT_TTL: u8 = 30;

/// An IPv4 packet (header without options, plus payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Type of service (carried, not interpreted).
    pub tos: u8,
    /// Identification, for reassembly.
    pub id: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-octet units.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: Proto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload octets.
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Creates an unfragmented packet with the default TTL.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: Proto, payload: Vec<u8>) -> Ipv4Packet {
        Ipv4Packet {
            tos: 0,
            id: 0,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: 0,
            ttl: DEFAULT_TTL,
            proto,
            src,
            dst,
            payload,
        }
    }

    /// Total length on the wire.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// True if this is a fragment (not a whole datagram).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }

    /// Encodes header (with checksum) + payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_len());
        self.encode_into(&mut out);
        out
    }

    /// Appends header (with checksum) + payload to any [`ByteSink`]. The
    /// header is staged in a stack array so the checksum can be patched in
    /// before anything touches the sink.
    pub fn encode_into(&self, out: &mut impl ByteSink) {
        let mut hdr = [0u8; HEADER_LEN];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[1] = self.tos;
        hdr[2..4].copy_from_slice(&(self.total_len() as u16).to_be_bytes());
        hdr[4..6].copy_from_slice(&self.id.to_be_bytes());
        let flags = (u16::from(self.dont_fragment) << 14)
            | (u16::from(self.more_fragments) << 13)
            | (self.frag_offset & 0x1FFF);
        hdr[6..8].copy_from_slice(&flags.to_be_bytes());
        hdr[8] = self.ttl;
        hdr[9] = self.proto.code();
        hdr[12..16].copy_from_slice(&self.src.octets());
        hdr[16..20].copy_from_slice(&self.dst.octets());
        let sum = internet_checksum(&[&hdr]);
        hdr[10..12].copy_from_slice(&sum.to_be_bytes());
        out.put_slice(&hdr);
        out.put_slice(&self.payload);
    }

    /// Decodes and verifies a packet. Trailing link-layer padding (e.g.
    /// from minimum-size Ethernet frames) is trimmed using the
    /// total-length field.
    pub fn decode(bytes: &[u8]) -> Result<Ipv4Packet, NetError> {
        let mut r = Reader::new(bytes);
        let vihl = r.u8().map_err(|_| NetError::Malformed("short header"))?;
        if vihl >> 4 != 4 {
            return Err(NetError::Malformed("not IPv4"));
        }
        let ihl = usize::from(vihl & 0x0F) * 4;
        if ihl != HEADER_LEN {
            return Err(NetError::Malformed("options unsupported"));
        }
        let tos = r.u8().map_err(|_| NetError::Malformed("short header"))?;
        let total_len = r.u16().map_err(|_| NetError::Malformed("short header"))? as usize;
        let id = r.u16().map_err(|_| NetError::Malformed("short header"))?;
        let flags = r.u16().map_err(|_| NetError::Malformed("short header"))?;
        let ttl = r.u8().map_err(|_| NetError::Malformed("short header"))?;
        let proto = Proto::from_code(r.u8().map_err(|_| NetError::Malformed("short header"))?);
        let _checksum = r.u16().map_err(|_| NetError::Malformed("short header"))?;
        let src_bytes = r.take(4).map_err(|_| NetError::Malformed("short header"))?;
        let dst_bytes = r.take(4).map_err(|_| NetError::Malformed("short header"))?;
        if total_len < HEADER_LEN || total_len > bytes.len() {
            return Err(NetError::Malformed("total length out of range"));
        }
        if internet_checksum(&[&bytes[..HEADER_LEN]]) != 0 {
            return Err(NetError::BadChecksum("ipv4 header"));
        }
        let payload = bytes[HEADER_LEN..total_len].to_vec();
        Ok(Ipv4Packet {
            tos,
            id,
            dont_fragment: flags & 0x4000 != 0,
            more_fragments: flags & 0x2000 != 0,
            frag_offset: flags & 0x1FFF,
            ttl,
            proto,
            src: Ipv4Addr::from(<[u8; 4]>::try_from(src_bytes).expect("len 4")),
            dst: Ipv4Addr::from(<[u8; 4]>::try_from(dst_bytes).expect("len 4")),
            payload,
        })
    }
}

impl Codec for Ipv4Packet {
    type Error = NetError;

    fn encode_into(&self, out: &mut impl ByteSink) {
        Ipv4Packet::encode_into(self, out);
    }

    fn decode(bytes: &[u8]) -> Result<Ipv4Packet, NetError> {
        Ipv4Packet::decode(bytes)
    }
}

/// Outcome of asking to fit a packet into an MTU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragResult {
    /// The packet already fits; send as-is.
    Fits(Ipv4Packet),
    /// The packet was split into these fragments.
    Fragmented(Vec<Ipv4Packet>),
    /// DF was set and the packet does not fit.
    WouldFragment,
}

/// Fragments `packet` to fit `mtu` (which must hold at least the header
/// plus 8 payload octets).
///
/// # Panics
///
/// Panics if `mtu < 28`.
pub fn fragment(packet: Ipv4Packet, mtu: usize) -> FragResult {
    assert!(mtu >= HEADER_LEN + 8, "mtu too small to fragment into");
    if packet.total_len() <= mtu {
        return FragResult::Fits(packet);
    }
    if packet.dont_fragment {
        return FragResult::WouldFragment;
    }
    // Payload bytes per fragment, in 8-octet units.
    let per = ((mtu - HEADER_LEN) / 8) * 8;
    let mut frags = Vec::new();
    let mut off = 0usize;
    while off < packet.payload.len() {
        let end = (off + per).min(packet.payload.len());
        let last_piece = end == packet.payload.len();
        let mut f = packet.clone();
        f.payload = packet.payload[off..end].to_vec();
        f.frag_offset = packet.frag_offset + (off / 8) as u16;
        // The final piece keeps the original MF (we may be re-fragmenting
        // a middle fragment).
        f.more_fragments = if last_piece {
            packet.more_fragments
        } else {
            true
        };
        frags.push(f);
        off = end;
    }
    FragResult::Fragmented(frags)
}

/// Reassembly hole-filling buffer for one host.
#[derive(Debug, Default)]
pub struct Reassembler {
    pending: HashMap<(Ipv4Addr, Ipv4Addr, u16, u8), PendingDatagram>,
}

#[derive(Debug)]
struct PendingDatagram {
    /// (offset_bytes, payload) pieces received so far.
    pieces: Vec<(usize, Vec<u8>)>,
    /// Total payload length, known once the MF=0 fragment arrives.
    total: Option<usize>,
    /// Template header from the first fragment seen.
    template: Ipv4Packet,
    deadline: SimTime,
}

/// How long an incomplete datagram is retained.
pub const REASSEMBLY_TIMEOUT: SimDuration = SimDuration::from_secs(30);

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Offers a packet; returns the complete datagram when its last hole
    /// fills. Whole packets pass straight through.
    pub fn push(&mut self, now: SimTime, packet: Ipv4Packet) -> Option<Ipv4Packet> {
        if !packet.is_fragment() {
            return Some(packet);
        }
        let key = (packet.src, packet.dst, packet.id, packet.proto.code());
        let entry = self.pending.entry(key).or_insert_with(|| PendingDatagram {
            pieces: Vec::new(),
            total: None,
            template: packet.clone(),
            deadline: now + REASSEMBLY_TIMEOUT,
        });
        let off = usize::from(packet.frag_offset) * 8;
        if !packet.more_fragments {
            entry.total = Some(off + packet.payload.len());
        }
        // Ignore exact duplicates.
        if !entry
            .pieces
            .iter()
            .any(|(o, p)| *o == off && p.len() == packet.payload.len())
        {
            entry.pieces.push((off, packet.payload));
        }
        let total = entry.total?;
        // Check contiguity.
        let mut pieces = entry.pieces.clone();
        pieces.sort_by_key(|(o, _)| *o);
        let mut have = 0usize;
        let mut buf = vec![0u8; total];
        for (o, p) in &pieces {
            if *o > have {
                return None; // hole
            }
            let end = o + p.len();
            if end > total {
                return None; // overlapping beyond end: malformed, wait for timeout
            }
            buf[*o..end].copy_from_slice(p);
            have = have.max(end);
        }
        if have < total {
            return None;
        }
        let entry = self.pending.remove(&key).expect("present");
        let mut whole = entry.template;
        whole.payload = buf;
        whole.frag_offset = 0;
        whole.more_fragments = false;
        Some(whole)
    }

    /// Discards datagrams whose reassembly timer expired; returns how many
    /// were dropped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.pending.len();
        self.pending.retain(|_, d| d.deadline > now);
        before - self.pending.len()
    }

    /// Earliest reassembly deadline, if any datagram is pending.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|d| d.deadline).min()
    }

    /// Number of incomplete datagrams held.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn sample(len: usize) -> Ipv4Packet {
        let mut p = Ipv4Packet::new(
            ip(44, 24, 0, 28),
            ip(128, 95, 1, 4),
            Proto::Udp,
            (0..len).map(|i| (i % 251) as u8).collect(),
        );
        p.id = 0x1234;
        p
    }

    #[test]
    fn codec_roundtrip() {
        let p = sample(100);
        let bytes = p.encode();
        assert_eq!(bytes.len(), 120);
        assert_eq!(Ipv4Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn decode_trims_link_padding() {
        let p = sample(10);
        let mut bytes = p.encode();
        bytes.extend_from_slice(&[0u8; 20]); // Ethernet min-frame padding
        let back = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(back.payload.len(), 10);
        assert_eq!(back, p);
    }

    #[test]
    fn decode_rejects_corruption() {
        let p = sample(40);
        let good = p.encode();
        // Header corruption -> checksum failure.
        let mut bad = good.clone();
        bad[8] ^= 0xFF; // ttl
        assert!(matches!(
            Ipv4Packet::decode(&bad),
            Err(NetError::BadChecksum(_))
        ));
        // Truncation below total_len.
        assert!(Ipv4Packet::decode(&good[..30]).is_err());
        // Not v4.
        let mut not4 = good.clone();
        not4[0] = 0x65;
        assert!(Ipv4Packet::decode(&not4).is_err());
    }

    #[test]
    fn fits_passes_through() {
        let p = sample(100);
        assert!(matches!(fragment(p, 256), FragResult::Fits(_)));
    }

    #[test]
    fn fragmentation_splits_on_8_byte_boundaries() {
        let p = sample(1000);
        let FragResult::Fragmented(frags) = fragment(p.clone(), 256) else {
            panic!("expected fragmentation");
        };
        // 236 bytes of payload per fragment (from 256-20 rounded down to 232).
        let per = ((256 - HEADER_LEN) / 8) * 8;
        assert_eq!(per, 232);
        assert_eq!(frags.len(), 1000usize.div_ceil(per));
        for (i, f) in frags.iter().enumerate() {
            assert!(f.total_len() <= 256);
            assert_eq!(usize::from(f.frag_offset) * 8, i * per);
            assert_eq!(f.more_fragments, i != frags.len() - 1);
            assert_eq!(f.id, p.id);
        }
        let rebuilt: Vec<u8> = frags.iter().flat_map(|f| f.payload.clone()).collect();
        assert_eq!(rebuilt, p.payload);
    }

    #[test]
    fn df_refuses_to_fragment() {
        let mut p = sample(1000);
        p.dont_fragment = true;
        assert_eq!(fragment(p, 256), FragResult::WouldFragment);
    }

    #[test]
    fn reassembly_in_order() {
        let p = sample(1000);
        let FragResult::Fragmented(frags) = fragment(p.clone(), 256) else {
            panic!()
        };
        let mut r = Reassembler::new();
        let mut done = None;
        for f in frags {
            done = r.push(SimTime::ZERO, f);
        }
        let whole = done.expect("complete after last fragment");
        assert_eq!(whole.payload, p.payload);
        assert!(!whole.is_fragment());
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn reassembly_out_of_order_and_duplicates() {
        let p = sample(700);
        let FragResult::Fragmented(mut frags) = fragment(p.clone(), 256) else {
            panic!()
        };
        frags.reverse();
        let dup = frags[1].clone();
        frags.insert(2, dup);
        let mut r = Reassembler::new();
        let mut done = None;
        for f in frags {
            if let Some(w) = r.push(SimTime::ZERO, f) {
                done = Some(w);
            }
        }
        assert_eq!(done.expect("reassembled").payload, p.payload);
    }

    #[test]
    fn interleaved_datagrams_reassemble_independently() {
        let mut p1 = sample(500);
        p1.id = 1;
        let mut p2 = sample(500);
        p2.id = 2;
        let FragResult::Fragmented(f1) = fragment(p1.clone(), 256) else {
            panic!()
        };
        let FragResult::Fragmented(f2) = fragment(p2.clone(), 256) else {
            panic!()
        };
        let mut r = Reassembler::new();
        let mut got = Vec::new();
        for (a, b) in f1.into_iter().zip(f2) {
            if let Some(w) = r.push(SimTime::ZERO, a) {
                got.push(w);
            }
            if let Some(w) = r.push(SimTime::ZERO, b) {
                got.push(w);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].id, 1);
        assert_eq!(got[1].id, 2);
    }

    #[test]
    fn missing_fragment_never_completes_and_expires() {
        let p = sample(700);
        let FragResult::Fragmented(frags) = fragment(p, 256) else {
            panic!()
        };
        let mut r = Reassembler::new();
        for f in frags.into_iter().skip(1) {
            assert!(r.push(SimTime::ZERO, f).is_none());
        }
        assert_eq!(r.pending_count(), 1);
        assert_eq!(r.next_deadline(), Some(SimTime::ZERO + REASSEMBLY_TIMEOUT));
        assert_eq!(
            r.expire(SimTime::ZERO + REASSEMBLY_TIMEOUT + SimDuration::from_nanos(1)),
            1
        );
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn refragmenting_a_fragment_preserves_offsets() {
        let p = sample(1000);
        let FragResult::Fragmented(first) = fragment(p.clone(), 520) else {
            panic!()
        };
        // Re-fragment each piece to a smaller MTU (a second slow link).
        let mut all = Vec::new();
        for f in first {
            match fragment(f, 256) {
                FragResult::Fits(x) => all.push(x),
                FragResult::Fragmented(xs) => all.extend(xs),
                FragResult::WouldFragment => panic!(),
            }
        }
        let mut r = Reassembler::new();
        let mut done = None;
        for f in all {
            if let Some(w) = r.push(SimTime::ZERO, f) {
                done = Some(w);
            }
        }
        assert_eq!(done.expect("reassembled").payload, p.payload);
    }

    #[test]
    fn proto_codes() {
        assert_eq!(Proto::from_code(6), Proto::Tcp);
        assert_eq!(Proto::from_code(1), Proto::Icmp);
        assert_eq!(Proto::from_code(17), Proto::Udp);
        assert_eq!(Proto::from_code(89), Proto::Other(89));
        assert_eq!(Proto::Other(89).code(), 89);
    }
}
