//! ICMP, including the paper's proposed gateway-control messages.
//!
//! Beyond echo and the error messages a gateway must emit, §4.3 of the
//! paper sketches two new ICMP messages for managing the access-control
//! table: one that *"can force an entry to be removed"* (the control
//! operator cutting off a link) and one to *"add an authorized non-amateur
//! host to the tables with an appropriately chosen time-to-live"* — both
//! requiring *"a call sign and a password"* when they come from the
//! non-amateur side. They are given the experimental types 200/201 here.

use std::net::Ipv4Addr;

use sim::pktbuf::ByteSink;
use sim::wire::{internet_checksum, Codec, Reader, Writer};

use crate::NetError;

/// Destination-unreachable codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnreachCode {
    /// Code 0.
    Net,
    /// Code 1.
    Host,
    /// Code 2.
    Protocol,
    /// Code 3.
    Port,
    /// Code 4 — fragmentation needed but DF set.
    FragNeeded,
    /// Code 13 — communication administratively prohibited (the gateway's
    /// ACL denial, a natural fit for §4.3).
    AdminProhibited,
}

impl UnreachCode {
    fn code(self) -> u8 {
        match self {
            UnreachCode::Net => 0,
            UnreachCode::Host => 1,
            UnreachCode::Protocol => 2,
            UnreachCode::Port => 3,
            UnreachCode::FragNeeded => 4,
            UnreachCode::AdminProhibited => 13,
        }
    }

    fn from_code(v: u8) -> Option<UnreachCode> {
        match v {
            0 => Some(UnreachCode::Net),
            1 => Some(UnreachCode::Host),
            2 => Some(UnreachCode::Protocol),
            3 => Some(UnreachCode::Port),
            4 => Some(UnreachCode::FragNeeded),
            13 => Some(UnreachCode::AdminProhibited),
            _ => None,
        }
    }
}

/// Authentication carried by gateway-control messages from the
/// non-amateur side (§4.3: "they must include a call sign and a password
/// for an authorized control operator").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateAuth {
    /// The control operator's callsign, as text (e.g. `"N7AKR"`).
    pub callsign: String,
    /// The shared-secret password.
    pub password: String,
}

/// A decoded ICMP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Type 8 — echo request.
    EchoRequest {
        /// Identifier (conventionally the sending process).
        id: u16,
        /// Sequence number.
        seq: u16,
        /// Echo payload.
        payload: Vec<u8>,
    },
    /// Type 0 — echo reply.
    EchoReply {
        /// Identifier copied from the request.
        id: u16,
        /// Sequence copied from the request.
        seq: u16,
        /// Payload copied from the request.
        payload: Vec<u8>,
    },
    /// Type 3 — destination unreachable; carries the leading bytes of the
    /// offending datagram.
    DestUnreachable {
        /// Why.
        code: UnreachCode,
        /// IP header + 8 payload octets of the original datagram.
        original: Vec<u8>,
    },
    /// Type 11 code 0 — TTL exceeded in transit.
    TimeExceeded {
        /// IP header + 8 payload octets of the original datagram.
        original: Vec<u8>,
    },
    /// Experimental type 200 — open (authorize) a gateway ACL pairing for
    /// `amateur` ⇄ `foreign` with a time-to-live in seconds.
    GateOpen {
        /// The amateur-side host.
        amateur: Ipv4Addr,
        /// The non-amateur host being authorized.
        foreign: Ipv4Addr,
        /// Entry lifetime in seconds.
        ttl_secs: u16,
        /// Present when sent from the non-amateur side.
        auth: Option<GateAuth>,
    },
    /// Experimental type 201 — force-remove a gateway ACL pairing (the
    /// control operator cutting the link).
    GateClose {
        /// The amateur-side host.
        amateur: Ipv4Addr,
        /// The non-amateur host.
        foreign: Ipv4Addr,
        /// Present when sent from the non-amateur side.
        auth: Option<GateAuth>,
    },
}

fn put_string(w: &mut Writer, s: &str) {
    let bytes = s.as_bytes();
    w.u8(bytes.len().min(255) as u8);
    w.bytes(&bytes[..bytes.len().min(255)]);
}

fn get_string(r: &mut Reader<'_>) -> Result<String, NetError> {
    let len = r.u8().map_err(|_| NetError::Malformed("icmp string"))? as usize;
    let raw = r
        .take(len)
        .map_err(|_| NetError::Malformed("icmp string"))?;
    String::from_utf8(raw.to_vec()).map_err(|_| NetError::Malformed("icmp string utf8"))
}

fn put_auth(w: &mut Writer, auth: &Option<GateAuth>) {
    match auth {
        None => w.u8(0),
        Some(a) => {
            w.u8(1);
            put_string(w, &a.callsign);
            put_string(w, &a.password);
        }
    }
}

fn get_auth(r: &mut Reader<'_>) -> Result<Option<GateAuth>, NetError> {
    match r.u8().map_err(|_| NetError::Malformed("icmp auth"))? {
        0 => Ok(None),
        1 => Ok(Some(GateAuth {
            callsign: get_string(r)?,
            password: get_string(r)?,
        })),
        _ => Err(NetError::Malformed("icmp auth tag")),
    }
}

impl IcmpMessage {
    /// Builds the standard "header + 8 octets" quotation of an offending
    /// datagram for error messages.
    pub fn quote_original(datagram: &[u8]) -> Vec<u8> {
        datagram[..datagram.len().min(28)].to_vec()
    }

    /// Encodes the message with its checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            IcmpMessage::EchoRequest { id, seq, payload }
            | IcmpMessage::EchoReply { id, seq, payload } => {
                let t = if matches!(self, IcmpMessage::EchoRequest { .. }) {
                    8
                } else {
                    0
                };
                w.u8(t);
                w.u8(0);
                w.u16(0);
                w.u16(*id);
                w.u16(*seq);
                w.bytes(payload);
            }
            IcmpMessage::DestUnreachable { code, original } => {
                w.u8(3);
                w.u8(code.code());
                w.u16(0);
                w.u32(0);
                w.bytes(original);
            }
            IcmpMessage::TimeExceeded { original } => {
                w.u8(11);
                w.u8(0);
                w.u16(0);
                w.u32(0);
                w.bytes(original);
            }
            IcmpMessage::GateOpen {
                amateur,
                foreign,
                ttl_secs,
                auth,
            } => {
                w.u8(200);
                w.u8(0);
                w.u16(0);
                w.bytes(&amateur.octets());
                w.bytes(&foreign.octets());
                w.u16(*ttl_secs);
                put_auth(&mut w, auth);
            }
            IcmpMessage::GateClose {
                amateur,
                foreign,
                auth,
            } => {
                w.u8(201);
                w.u8(0);
                w.u16(0);
                w.bytes(&amateur.octets());
                w.bytes(&foreign.octets());
                put_auth(&mut w, auth);
            }
        }
        let sum = internet_checksum(&[w.as_slice()]);
        w.patch_u16(2, sum);
        w.into_bytes()
    }

    /// Decodes and verifies a message.
    pub fn decode(bytes: &[u8]) -> Result<IcmpMessage, NetError> {
        if bytes.len() < 4 {
            return Err(NetError::Malformed("icmp too short"));
        }
        if internet_checksum(&[bytes]) != 0 {
            return Err(NetError::BadChecksum("icmp"));
        }
        let mut r = Reader::new(bytes);
        let typ = r.u8().expect("len checked");
        let code = r.u8().expect("len checked");
        let _sum = r.u16().expect("len checked");
        match typ {
            8 | 0 => {
                let id = r.u16().map_err(|_| NetError::Malformed("echo header"))?;
                let seq = r.u16().map_err(|_| NetError::Malformed("echo header"))?;
                let payload = r.rest().to_vec();
                Ok(if typ == 8 {
                    IcmpMessage::EchoRequest { id, seq, payload }
                } else {
                    IcmpMessage::EchoReply { id, seq, payload }
                })
            }
            3 => {
                let code =
                    UnreachCode::from_code(code).ok_or(NetError::Malformed("unreach code"))?;
                r.skip(4).map_err(|_| NetError::Malformed("unreach pad"))?;
                Ok(IcmpMessage::DestUnreachable {
                    code,
                    original: r.rest().to_vec(),
                })
            }
            11 => {
                r.skip(4).map_err(|_| NetError::Malformed("ttl pad"))?;
                Ok(IcmpMessage::TimeExceeded {
                    original: r.rest().to_vec(),
                })
            }
            200 => {
                let amateur = read_ip(&mut r)?;
                let foreign = read_ip(&mut r)?;
                let ttl_secs = r.u16().map_err(|_| NetError::Malformed("gate ttl"))?;
                let auth = get_auth(&mut r)?;
                Ok(IcmpMessage::GateOpen {
                    amateur,
                    foreign,
                    ttl_secs,
                    auth,
                })
            }
            201 => {
                let amateur = read_ip(&mut r)?;
                let foreign = read_ip(&mut r)?;
                let auth = get_auth(&mut r)?;
                Ok(IcmpMessage::GateClose {
                    amateur,
                    foreign,
                    auth,
                })
            }
            _ => Err(NetError::Malformed("unknown icmp type")),
        }
    }
}

impl Codec for IcmpMessage {
    type Error = NetError;

    // ICMP never rides the per-byte interrupt path, so this variant
    // delegates through the Writer-based encoder (which stages the whole
    // message to patch the checksum at offset 2) rather than duplicating it.
    fn encode_into(&self, out: &mut impl ByteSink) {
        out.put_slice(&self.encode());
    }

    fn decode(bytes: &[u8]) -> Result<IcmpMessage, NetError> {
        IcmpMessage::decode(bytes)
    }
}

fn read_ip(r: &mut Reader<'_>) -> Result<Ipv4Addr, NetError> {
    let raw = r.take(4).map_err(|_| NetError::Malformed("icmp ip"))?;
    Ok(Ipv4Addr::from(<[u8; 4]>::try_from(raw).expect("len 4")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: IcmpMessage) {
        let bytes = m.encode();
        assert_eq!(IcmpMessage::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn echo_roundtrips() {
        roundtrip(IcmpMessage::EchoRequest {
            id: 0x1234,
            seq: 7,
            payload: b"ping data".to_vec(),
        });
        roundtrip(IcmpMessage::EchoReply {
            id: 1,
            seq: 65535,
            payload: vec![],
        });
    }

    #[test]
    fn errors_roundtrip() {
        roundtrip(IcmpMessage::DestUnreachable {
            code: UnreachCode::AdminProhibited,
            original: vec![0x45; 28],
        });
        roundtrip(IcmpMessage::TimeExceeded {
            original: vec![1, 2, 3],
        });
    }

    #[test]
    fn gate_messages_roundtrip() {
        let am = Ipv4Addr::new(44, 24, 0, 5);
        let fo = Ipv4Addr::new(128, 95, 1, 4);
        roundtrip(IcmpMessage::GateOpen {
            amateur: am,
            foreign: fo,
            ttl_secs: 600,
            auth: None,
        });
        roundtrip(IcmpMessage::GateOpen {
            amateur: am,
            foreign: fo,
            ttl_secs: 600,
            auth: Some(GateAuth {
                callsign: "N7AKR".to_string(),
                password: "hunter2".to_string(),
            }),
        });
        roundtrip(IcmpMessage::GateClose {
            amateur: am,
            foreign: fo,
            auth: Some(GateAuth {
                callsign: "KB7DZ".to_string(),
                password: String::new(),
            }),
        });
    }

    #[test]
    fn corruption_is_rejected() {
        let bytes = IcmpMessage::EchoRequest {
            id: 9,
            seq: 9,
            payload: vec![1, 2, 3, 4],
        }
        .encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                IcmpMessage::decode(&bad).is_err(),
                "flip at {i} went unnoticed"
            );
        }
    }

    #[test]
    fn quote_original_truncates_to_28() {
        assert_eq!(IcmpMessage::quote_original(&[0u8; 100]).len(), 28);
        assert_eq!(IcmpMessage::quote_original(&[0u8; 10]).len(), 10);
    }

    #[test]
    fn unknown_type_rejected() {
        let mut w = Writer::new();
        w.u8(99);
        w.u8(0);
        w.u16(0);
        let sum = internet_checksum(&[w.as_slice()]);
        w.patch_u16(2, sum);
        assert!(IcmpMessage::decode(w.as_slice()).is_err());
    }
}
