//! The routing table: longest-prefix match with optional gateways.
//!
//! §4.2 of the paper is a routing story: AMPRnet is one class-A network
//! (44/8), so distant Internet hosts hold a *single* route for all of it
//! and every packet funnels through one gateway, even when a different
//! coast's gateway is far closer. Experiment E4 builds exactly that
//! situation from this table.

use std::fmt;
use std::net::Ipv4Addr;

use crate::lpm::Lpm;
use crate::stack::IfaceId;

/// An IPv4 prefix (address + mask length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// Network address (host bits ignored).
    pub addr: Ipv4Addr,
    /// Mask length, 0–32.
    pub len: u8,
}

impl Prefix {
    /// Creates a prefix; host bits in `addr` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            addr: Ipv4Addr::from(u32::from(addr) & Self::mask(len)),
            len,
        }
    }

    /// The all-zero default prefix.
    pub fn default_route() -> Prefix {
        Prefix::new(Ipv4Addr::UNSPECIFIED, 0)
    }

    /// AMPRnet, the class-A network 44.0.0.0/8 assigned to amateur packet
    /// radio (footnote 7 of the paper).
    pub fn amprnet() -> Prefix {
        Prefix::new(Ipv4Addr::new(44, 0, 0, 0), 8)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// True if `ip` is inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask(self.len) == u32::from(self.addr)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// Where a route came from. Mirrors the static-vs-RIP distinction the
/// AMPRnet gateways needed once subnet routes started arriving over the
/// wire: a learned route may expire and must never silently replace the
/// operator's static configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouteSource {
    /// Installed by configuration; never expires.
    #[default]
    Static,
    /// Learned from a route announcement; expires unless refreshed.
    Learned,
}

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop gateway; `None` means the destination is on-link.
    pub via: Option<Ipv4Addr>,
    /// Output interface.
    pub iface: IfaceId,
    /// Static configuration or learned announcement.
    pub source: RouteSource,
    /// Preference among equal-length prefixes; lower wins. Prefix length
    /// always dominates (a /24 with a terrible metric still beats a /8).
    pub metric: u8,
}

/// The result of a successful lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// Interface to transmit on.
    pub iface: IfaceId,
    /// The address to resolve at the link layer: the gateway if the route
    /// has one, otherwise the destination itself.
    pub hop: Ipv4Addr,
}

/// A longest-prefix-match routing table.
///
/// # Examples
///
/// ```
/// use netstack::route::{Prefix, RouteTable};
/// use netstack::stack::IfaceId;
/// use std::net::Ipv4Addr;
///
/// let mut rt = RouteTable::new();
/// let ether = IfaceId::new(0);
/// let radio = IfaceId::new(1);
/// rt.add(Prefix::amprnet(), None, radio);
/// rt.add(Prefix::default_route(), Some(Ipv4Addr::new(128, 95, 1, 1)), ether);
/// let hop = rt.lookup(Ipv4Addr::new(44, 24, 0, 5)).unwrap();
/// assert_eq!(hop.iface, radio);
/// assert_eq!(hop.hop, Ipv4Addr::new(44, 24, 0, 5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
    /// Bumped (wrapping) on every mutation. Consumers that memoize
    /// decisions derived from this table (the compiled LPM below, the
    /// stack's next-hop cache) stamp what they saw and compare for
    /// equality — one counter bump invalidates everything in O(1).
    generation: u64,
    /// Lazily compiled longest-prefix-match structure; rebuilt on the
    /// first fast lookup after a mutation (see [`Lpm`]).
    compiled: Lpm,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// The mutation generation. Any route add/remove/expiry changes it;
    /// two equal readings bracket a window in which every cached decision
    /// derived from this table remained valid. Wrapping: compare with
    /// `==`, never `<`.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Test hook: plants the generation counter near a chosen value so
    /// rollover behaviour can be exercised without 2^64 mutations.
    #[doc(hidden)]
    pub fn force_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Adds (or replaces) the static route for `prefix` with metric 0.
    pub fn add(&mut self, prefix: Prefix, via: Option<Ipv4Addr>, iface: IfaceId) {
        self.insert(Route {
            prefix,
            via,
            iface,
            source: RouteSource::Static,
            metric: 0,
        });
    }

    /// Adds (or replaces) a learned route for `prefix`. Learned routes
    /// never displace a static route for the same prefix: both coexist
    /// and the metric breaks the tie, so expiring the learned route
    /// (see [`remove_learned`](Self::remove_learned)) restores the static
    /// one instead of leaving a hole.
    pub fn add_learned(
        &mut self,
        prefix: Prefix,
        via: Option<Ipv4Addr>,
        iface: IfaceId,
        metric: u8,
    ) {
        self.insert(Route {
            prefix,
            via,
            iface,
            source: RouteSource::Learned,
            metric,
        });
    }

    /// The ordering the table maintains: longest prefix strictly first,
    /// then metric, then static before learned. Prefix length must
    /// dominate the metric — sorting by metric ahead of length would let
    /// a cheap default route shadow every longer prefix.
    fn order_key(r: &Route) -> (std::cmp::Reverse<u8>, u8, bool) {
        (
            std::cmp::Reverse(r.prefix.len),
            r.metric,
            r.source != RouteSource::Static,
        )
    }

    /// Inserts `route`, replacing any existing route with the same prefix
    /// *and* source.
    ///
    /// Placement is a binary search on the maintained ordering, inserted
    /// *after* every equal key — exactly where a stable sort would leave a
    /// freshly pushed element — so a RIP announce on a 1000-route table
    /// shifts one run of entries instead of re-sorting the world. Full
    /// ties keep insertion order (determinism).
    pub fn insert(&mut self, route: Route) {
        if let Some(pos) = self
            .routes
            .iter()
            .position(|r| r.prefix == route.prefix && r.source == route.source)
        {
            self.routes.remove(pos);
        }
        let key = Self::order_key(&route);
        let at = self.routes.partition_point(|r| Self::order_key(r) <= key);
        self.routes.insert(at, route);
        self.generation = self.generation.wrapping_add(1);
    }

    /// Removes every route for `prefix` (any source); returns whether one
    /// existed.
    pub fn remove(&mut self, prefix: Prefix) -> bool {
        let before = self.routes.len();
        self.routes.retain(|r| r.prefix != prefix);
        let changed = self.routes.len() != before;
        if changed {
            self.generation = self.generation.wrapping_add(1);
        }
        changed
    }

    /// Removes the learned route for `prefix`, leaving any static route in
    /// place; returns whether one existed.
    pub fn remove_learned(&mut self, prefix: Prefix) -> bool {
        let before = self.routes.len();
        self.routes
            .retain(|r| !(r.prefix == prefix && r.source == RouteSource::Learned));
        let changed = self.routes.len() != before;
        if changed {
            self.generation = self.generation.wrapping_add(1);
        }
        changed
    }

    /// Longest-prefix-match lookup (linear reference walk).
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<NextHop> {
        self.lookup_route(dst).map(|r| NextHop {
            iface: r.iface,
            hop: r.via.unwrap_or(dst),
        })
    }

    /// Longest-prefix-match lookup returning the matched route itself —
    /// callers that maintain learned routes need the winning [`Prefix`]
    /// (and source) to know what to expire, not just the next hop.
    ///
    /// This is the executable oracle: a first-match scan of the ordered
    /// table. The fast paths ([`lookup_fast`](Self::lookup_fast),
    /// [`lookup_route_fast`](Self::lookup_route_fast)) must return the
    /// identical answer — the differential proptests hold them to it.
    pub fn lookup_route(&self, dst: Ipv4Addr) -> Option<&Route> {
        self.routes.iter().find(|r| r.prefix.contains(dst))
    }

    /// Longest-prefix-match via the compiled structure, recompiling first
    /// if the table changed since the last build. Zero allocations and at
    /// most four memory touches per lookup once compiled; small tables
    /// (≤ [`Lpm::LINEAR_CUTOFF`] routes) skip compilation entirely and
    /// scan, which is both faster and keeps the ~10⁵ two-route host
    /// stacks of the city worlds from holding tries.
    pub fn lookup_route_fast(&mut self, dst: Ipv4Addr) -> Option<&Route> {
        if self.compiled.stale(self.generation) {
            self.compiled.rebuild(&self.routes, self.generation);
        }
        if self.compiled.is_linear() {
            return self.lookup_route(dst);
        }
        self.compiled.walk(u32::from(dst)).map(|i| &self.routes[i])
    }

    /// [`lookup`](Self::lookup) on the compiled fast path.
    pub fn lookup_fast(&mut self, dst: Ipv4Addr) -> Option<NextHop> {
        self.lookup_route_fast(dst).map(|r| NextHop {
            iface: r.iface,
            hop: r.via.unwrap_or(dst),
        })
    }

    /// (node count, deepest walk over every route's own address) of the
    /// compiled structure — `(0, 0)` while in linear mode. Compiles first
    /// if stale. E18 prints this to show the walk stays bounded while the
    /// table grows.
    pub fn compiled_shape(&mut self) -> (usize, usize) {
        if self.compiled.stale(self.generation) {
            self.compiled.rebuild(&self.routes, self.generation);
        }
        if self.compiled.is_linear() {
            return (0, 0);
        }
        let depth = self
            .routes
            .iter()
            .map(|r| self.compiled.walk_depth(u32::from(r.prefix.addr)))
            .max()
            .unwrap_or(0);
        (self.compiled.node_count(), depth)
    }

    /// All routes, longest prefix first.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ifid(n: usize) -> IfaceId {
        IfaceId::new(n)
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::new(Ipv4Addr::new(44, 24, 0, 0), 16);
        assert!(p.contains(Ipv4Addr::new(44, 24, 0, 5)));
        assert!(p.contains(Ipv4Addr::new(44, 24, 255, 255)));
        assert!(!p.contains(Ipv4Addr::new(44, 56, 0, 5)));
        assert!(Prefix::default_route().contains(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(Ipv4Addr::new(44, 24, 9, 9), 16);
        assert_eq!(p.addr, Ipv4Addr::new(44, 24, 0, 0));
        assert_eq!(p.to_string(), "44.24.0.0/16");
    }

    #[test]
    fn longest_prefix_wins() {
        let mut rt = RouteTable::new();
        rt.add(
            Prefix::default_route(),
            Some(Ipv4Addr::new(9, 9, 9, 9)),
            ifid(0),
        );
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(8, 8, 8, 8)), ifid(1));
        rt.add(Prefix::new(Ipv4Addr::new(44, 24, 0, 0), 16), None, ifid(2));
        let hop = rt.lookup(Ipv4Addr::new(44, 24, 0, 5)).unwrap();
        assert_eq!(hop.iface, ifid(2));
        assert_eq!(hop.hop, Ipv4Addr::new(44, 24, 0, 5), "on-link: hop is dst");
        let hop = rt.lookup(Ipv4Addr::new(44, 56, 0, 5)).unwrap();
        assert_eq!(hop.iface, ifid(1));
        assert_eq!(hop.hop, Ipv4Addr::new(8, 8, 8, 8));
        let hop = rt.lookup(Ipv4Addr::new(128, 95, 1, 4)).unwrap();
        assert_eq!(hop.iface, ifid(0));
    }

    #[test]
    fn no_default_means_no_route() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        assert!(rt.lookup(Ipv4Addr::new(128, 95, 1, 4)).is_none());
    }

    #[test]
    fn add_replaces_same_prefix() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        rt.add(Prefix::amprnet(), None, ifid(1));
        assert_eq!(rt.routes().len(), 1);
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 1, 1, 1)).unwrap().iface,
            ifid(1)
        );
    }

    #[test]
    fn remove_route() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        assert!(rt.remove(Prefix::amprnet()));
        assert!(!rt.remove(Prefix::amprnet()));
        assert!(rt.lookup(Ipv4Addr::new(44, 1, 1, 1)).is_none());
    }

    #[test]
    #[should_panic]
    fn prefix_len_out_of_range_panics() {
        let _ = Prefix::new(Ipv4Addr::UNSPECIFIED, 33);
    }

    #[test]
    fn learned_route_coexists_with_static_and_metric_breaks_tie() {
        let mut rt = RouteTable::new();
        rt.add(
            Prefix::default_route(),
            Some(Ipv4Addr::new(9, 9, 9, 9)),
            ifid(0),
        );
        // A cheaper learned default wins the tie...
        rt.add_learned(
            Prefix::default_route(),
            Some(Ipv4Addr::new(8, 8, 8, 8)),
            ifid(1),
            0,
        );
        assert_eq!(rt.routes().len(), 2, "both defaults coexist");
        // ...unless metrics tie exactly, where static is preferred.
        assert_eq!(
            rt.lookup(Ipv4Addr::new(1, 2, 3, 4)).unwrap().iface,
            ifid(0),
            "equal metric: static wins"
        );
        rt.add_learned(
            Prefix::default_route(),
            Some(Ipv4Addr::new(8, 8, 8, 8)),
            ifid(1),
            0,
        );
        assert_eq!(rt.routes().len(), 2, "learned re-add replaces, not stacks");
        // A worse static metric lets the learned default take over...
        rt.insert(Route {
            prefix: Prefix::default_route(),
            via: Some(Ipv4Addr::new(9, 9, 9, 9)),
            iface: ifid(0),
            source: RouteSource::Static,
            metric: 10,
        });
        assert_eq!(rt.lookup(Ipv4Addr::new(1, 2, 3, 4)).unwrap().iface, ifid(1));
        // ...and expiring the learned one falls back to the static.
        assert!(rt.remove_learned(Prefix::default_route()));
        assert_eq!(rt.lookup(Ipv4Addr::new(1, 2, 3, 4)).unwrap().iface, ifid(0));
        assert!(!rt.remove_learned(Prefix::default_route()));
    }

    #[test]
    fn default_route_metric_never_beats_longer_prefix() {
        let mut rt = RouteTable::new();
        rt.insert(Route {
            prefix: Prefix::amprnet(),
            via: Some(Ipv4Addr::new(9, 9, 9, 9)),
            iface: ifid(0),
            source: RouteSource::Static,
            metric: 15,
        });
        rt.add_learned(
            Prefix::default_route(),
            Some(Ipv4Addr::new(8, 8, 8, 8)),
            ifid(1),
            0,
        );
        // The /8 has a far worse metric than the /0 but still wins LPM.
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 24, 0, 5)).unwrap().iface,
            ifid(0)
        );
        assert_eq!(
            rt.lookup(Ipv4Addr::new(128, 95, 1, 4)).unwrap().iface,
            ifid(1)
        );
    }

    #[test]
    fn lookup_route_returns_matched_prefix_and_source() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(9, 9, 9, 9)), ifid(0));
        rt.add_learned(
            Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16),
            Some(Ipv4Addr::new(8, 8, 8, 8)),
            ifid(1),
            1,
        );
        let r = rt.lookup_route(Ipv4Addr::new(44, 56, 0, 5)).unwrap();
        assert_eq!(r.prefix, Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16));
        assert_eq!(r.source, RouteSource::Learned);
        assert_eq!(r.metric, 1);
        let r = rt.lookup_route(Ipv4Addr::new(44, 24, 0, 5)).unwrap();
        assert_eq!(r.prefix, Prefix::amprnet());
        assert_eq!(r.source, RouteSource::Static);
    }

    #[test]
    fn remove_any_source_clears_both() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        rt.add_learned(Prefix::amprnet(), None, ifid(1), 1);
        assert!(rt.remove(Prefix::amprnet()));
        assert!(rt.routes().is_empty());
    }

    #[test]
    fn slash_32_host_route() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(1, 1, 1, 1)), ifid(0));
        rt.add(Prefix::new(Ipv4Addr::new(44, 24, 0, 28), 32), None, ifid(1));
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 24, 0, 28)).unwrap().iface,
            ifid(1)
        );
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 24, 0, 29)).unwrap().iface,
            ifid(0)
        );
    }

    /// The sort-based insert this table used before binary-search
    /// placement: retain + push + stable sort. The incremental insert
    /// must leave the vector in the identical order, ties included.
    fn oracle_insert(routes: &mut Vec<Route>, route: Route) {
        routes.retain(|r| !(r.prefix == route.prefix && r.source == route.source));
        routes.push(route);
        routes.sort_by_key(|r| {
            (
                std::cmp::Reverse(r.prefix.len),
                r.metric,
                r.source != RouteSource::Static,
            )
        });
    }

    #[test]
    fn binary_insert_matches_sort_oracle_order() {
        // A deterministic churn mix heavy in full-key ties (equal length,
        // metric, and source differing only by iface) so stable-tie
        // placement is actually exercised.
        let mut lcg = 0x2545F491_4F6CDD1Du64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as u32
        };
        let mut rt = RouteTable::new();
        let mut oracle: Vec<Route> = Vec::new();
        for _ in 0..500 {
            let r = next();
            let prefix = Prefix::new(
                Ipv4Addr::from(0x2C00_0000 | (r & 0x00FF_FF00)),
                [0, 8, 16, 24, 32][(r % 5) as usize],
            );
            let route = Route {
                prefix,
                via: Some(Ipv4Addr::new(10, 0, 0, (r % 7) as u8)),
                iface: ifid((r % 3) as usize),
                source: if r & 1 == 0 {
                    RouteSource::Static
                } else {
                    RouteSource::Learned
                },
                metric: ((r >> 8) % 3) as u8,
            };
            match r % 10 {
                8 => {
                    rt.remove(prefix);
                    oracle.retain(|o| o.prefix != prefix);
                }
                9 => {
                    rt.remove_learned(prefix);
                    oracle.retain(|o| !(o.prefix == prefix && o.source == RouteSource::Learned));
                }
                _ => {
                    rt.insert(route);
                    oracle_insert(&mut oracle, route);
                }
            }
            assert_eq!(rt.routes(), &oracle[..], "order diverged from sort oracle");
        }
        assert!(oracle.len() > 8, "churn mix must outgrow the linear cutoff");
    }

    /// Sweep addresses that hit every route boundary in the table plus
    /// strays, asserting fast ≡ linear on each.
    fn assert_fast_matches_linear(rt: &mut RouteTable) {
        let mut probes: Vec<Ipv4Addr> = rt
            .routes()
            .iter()
            .flat_map(|r| {
                let base = u32::from(r.prefix.addr);
                [
                    base,
                    base ^ 1,
                    base.wrapping_add(0x0101),
                    base ^ 0x8000_0000,
                ]
            })
            .map(Ipv4Addr::from)
            .collect();
        probes.extend([
            Ipv4Addr::new(44, 24, 0, 5),
            Ipv4Addr::new(128, 95, 1, 4),
            Ipv4Addr::new(255, 255, 255, 255),
            Ipv4Addr::new(0, 0, 0, 0),
        ]);
        for dst in probes {
            let slow = rt.lookup_route(dst).copied();
            let fast = rt.lookup_route_fast(dst).copied();
            assert_eq!(fast, slow, "fast ≠ linear for {dst}");
        }
    }

    #[test]
    fn compiled_walk_matches_linear_above_cutoff() {
        let mut rt = RouteTable::new();
        // Mixed lengths spanning every trie level, nested and disjoint,
        // well past the linear cutoff so the trie actually builds.
        for i in 0..10u8 {
            rt.add(
                Prefix::new(Ipv4Addr::new(44, i, 0, 0), 16),
                Some(Ipv4Addr::new(10, 0, 0, 1)),
                ifid(0),
            );
            rt.add(
                Prefix::new(Ipv4Addr::new(44, i, i, 0), 24),
                Some(Ipv4Addr::new(10, 0, 0, 2)),
                ifid(1),
            );
        }
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(10, 0, 0, 3)), ifid(2));
        rt.add(Prefix::new(Ipv4Addr::new(44, 3, 3, 9), 32), None, ifid(3));
        rt.add(
            Prefix::new(Ipv4Addr::new(128, 95, 0, 0), 12),
            Some(Ipv4Addr::new(10, 0, 0, 4)),
            ifid(4),
        );
        rt.add_learned(
            Prefix::default_route(),
            Some(Ipv4Addr::new(9, 9, 9, 9)),
            ifid(5),
            2,
        );
        assert_fast_matches_linear(&mut rt);
        let (nodes, depth) = rt.compiled_shape();
        assert!(nodes > 0, "table above cutoff must compile");
        assert!(depth <= 4, "walk never exceeds four levels, got {depth}");
    }

    #[test]
    fn default_route_only_table() {
        let mut rt = RouteTable::new();
        rt.add(
            Prefix::default_route(),
            Some(Ipv4Addr::new(9, 9, 9, 9)),
            ifid(0),
        );
        for dst in [
            Ipv4Addr::new(0, 0, 0, 0),
            Ipv4Addr::new(44, 24, 0, 5),
            Ipv4Addr::new(255, 255, 255, 255),
        ] {
            assert_eq!(rt.lookup_fast(dst).unwrap().iface, ifid(0));
            assert_eq!(rt.lookup_fast(dst).unwrap().hop, Ipv4Addr::new(9, 9, 9, 9));
        }
        // Above the cutoff too: pad with /32s, the default still catches
        // strays through the compiled root.
        for i in 0..12u8 {
            rt.add(Prefix::new(Ipv4Addr::new(10, 0, 0, i), 32), None, ifid(1));
        }
        assert_eq!(
            rt.lookup_fast(Ipv4Addr::new(128, 95, 1, 4)).unwrap().iface,
            ifid(0)
        );
        assert_fast_matches_linear(&mut rt);
    }

    #[test]
    fn host_route_beats_shorter_prefixes_compiled() {
        let mut rt = RouteTable::new();
        for i in 0..10u8 {
            rt.add(
                Prefix::new(Ipv4Addr::new(44, i, 0, 0), 16),
                Some(Ipv4Addr::new(10, 0, 0, 1)),
                ifid(0),
            );
        }
        rt.add(Prefix::new(Ipv4Addr::new(44, 3, 0, 0), 24), None, ifid(1));
        rt.add(Prefix::new(Ipv4Addr::new(44, 3, 0, 7), 32), None, ifid(2));
        assert_eq!(
            rt.lookup_fast(Ipv4Addr::new(44, 3, 0, 7)).unwrap().iface,
            ifid(2)
        );
        assert_eq!(
            rt.lookup_fast(Ipv4Addr::new(44, 3, 0, 8)).unwrap().iface,
            ifid(1)
        );
        assert_eq!(
            rt.lookup_fast(Ipv4Addr::new(44, 3, 1, 7)).unwrap().iface,
            ifid(0)
        );
        assert_fast_matches_linear(&mut rt);
    }

    #[test]
    fn learned_expiry_restores_shadowed_static_compiled() {
        let mut rt = RouteTable::new();
        // Pad past the cutoff so expiry recompiles a real trie.
        for i in 0..10u8 {
            rt.add(
                Prefix::new(Ipv4Addr::new(10, i, 0, 0), 16),
                Some(Ipv4Addr::new(10, 0, 0, 1)),
                ifid(3),
            );
        }
        rt.insert(Route {
            prefix: Prefix::amprnet(),
            via: Some(Ipv4Addr::new(9, 9, 9, 9)),
            iface: ifid(0),
            source: RouteSource::Static,
            metric: 5,
        });
        rt.add_learned(
            Prefix::amprnet(),
            Some(Ipv4Addr::new(8, 8, 8, 8)),
            ifid(1),
            0,
        );
        let g = rt.generation();
        assert_eq!(
            rt.lookup_fast(Ipv4Addr::new(44, 1, 1, 1)).unwrap().iface,
            ifid(1)
        );
        assert!(rt.remove_learned(Prefix::amprnet()));
        assert_ne!(rt.generation(), g, "expiry must bump the generation");
        assert_eq!(
            rt.lookup_fast(Ipv4Addr::new(44, 1, 1, 1)).unwrap().iface,
            ifid(0),
            "expiring the learned route restores the shadowed static"
        );
        assert_fast_matches_linear(&mut rt);
    }

    #[test]
    fn lookup_during_generation_rollover() {
        let mut rt = RouteTable::new();
        rt.force_generation(u64::MAX);
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(9, 9, 9, 9)), ifid(0));
        assert_eq!(rt.generation(), 0, "MAX wraps to 0, never panics");
        assert_eq!(
            rt.lookup_fast(Ipv4Addr::new(44, 1, 1, 1)).unwrap().iface,
            ifid(0)
        );
        // Mutating across the wrap still invalidates the compiled view.
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(8, 8, 8, 8)), ifid(1));
        assert_eq!(rt.generation(), 1);
        assert_eq!(
            rt.lookup_fast(Ipv4Addr::new(44, 1, 1, 1)).unwrap().iface,
            ifid(1)
        );
        assert_fast_matches_linear(&mut rt);
    }
}
