//! The routing table: longest-prefix match with optional gateways.
//!
//! §4.2 of the paper is a routing story: AMPRnet is one class-A network
//! (44/8), so distant Internet hosts hold a *single* route for all of it
//! and every packet funnels through one gateway, even when a different
//! coast's gateway is far closer. Experiment E4 builds exactly that
//! situation from this table.

use std::fmt;
use std::net::Ipv4Addr;

use crate::stack::IfaceId;

/// An IPv4 prefix (address + mask length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// Network address (host bits ignored).
    pub addr: Ipv4Addr,
    /// Mask length, 0–32.
    pub len: u8,
}

impl Prefix {
    /// Creates a prefix; host bits in `addr` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            addr: Ipv4Addr::from(u32::from(addr) & Self::mask(len)),
            len,
        }
    }

    /// The all-zero default prefix.
    pub fn default_route() -> Prefix {
        Prefix::new(Ipv4Addr::UNSPECIFIED, 0)
    }

    /// AMPRnet, the class-A network 44.0.0.0/8 assigned to amateur packet
    /// radio (footnote 7 of the paper).
    pub fn amprnet() -> Prefix {
        Prefix::new(Ipv4Addr::new(44, 0, 0, 0), 8)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// True if `ip` is inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask(self.len) == u32::from(self.addr)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop gateway; `None` means the destination is on-link.
    pub via: Option<Ipv4Addr>,
    /// Output interface.
    pub iface: IfaceId,
}

/// The result of a successful lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// Interface to transmit on.
    pub iface: IfaceId,
    /// The address to resolve at the link layer: the gateway if the route
    /// has one, otherwise the destination itself.
    pub hop: Ipv4Addr,
}

/// A longest-prefix-match routing table.
///
/// # Examples
///
/// ```
/// use netstack::route::{Prefix, RouteTable};
/// use netstack::stack::IfaceId;
/// use std::net::Ipv4Addr;
///
/// let mut rt = RouteTable::new();
/// let ether = IfaceId::new(0);
/// let radio = IfaceId::new(1);
/// rt.add(Prefix::amprnet(), None, radio);
/// rt.add(Prefix::default_route(), Some(Ipv4Addr::new(128, 95, 1, 1)), ether);
/// let hop = rt.lookup(Ipv4Addr::new(44, 24, 0, 5)).unwrap();
/// assert_eq!(hop.iface, radio);
/// assert_eq!(hop.hop, Ipv4Addr::new(44, 24, 0, 5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Adds (or replaces) the route for `prefix`.
    pub fn add(&mut self, prefix: Prefix, via: Option<Ipv4Addr>, iface: IfaceId) {
        self.routes.retain(|r| r.prefix != prefix);
        self.routes.push(Route { prefix, via, iface });
        // Longest prefix first; stable order for determinism.
        self.routes.sort_by_key(|r| std::cmp::Reverse(r.prefix.len));
    }

    /// Removes the route for `prefix`; returns whether one existed.
    pub fn remove(&mut self, prefix: Prefix) -> bool {
        let before = self.routes.len();
        self.routes.retain(|r| r.prefix != prefix);
        self.routes.len() != before
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<NextHop> {
        self.routes
            .iter()
            .find(|r| r.prefix.contains(dst))
            .map(|r| NextHop {
                iface: r.iface,
                hop: r.via.unwrap_or(dst),
            })
    }

    /// All routes, longest prefix first.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ifid(n: usize) -> IfaceId {
        IfaceId::new(n)
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::new(Ipv4Addr::new(44, 24, 0, 0), 16);
        assert!(p.contains(Ipv4Addr::new(44, 24, 0, 5)));
        assert!(p.contains(Ipv4Addr::new(44, 24, 255, 255)));
        assert!(!p.contains(Ipv4Addr::new(44, 56, 0, 5)));
        assert!(Prefix::default_route().contains(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(Ipv4Addr::new(44, 24, 9, 9), 16);
        assert_eq!(p.addr, Ipv4Addr::new(44, 24, 0, 0));
        assert_eq!(p.to_string(), "44.24.0.0/16");
    }

    #[test]
    fn longest_prefix_wins() {
        let mut rt = RouteTable::new();
        rt.add(
            Prefix::default_route(),
            Some(Ipv4Addr::new(9, 9, 9, 9)),
            ifid(0),
        );
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(8, 8, 8, 8)), ifid(1));
        rt.add(Prefix::new(Ipv4Addr::new(44, 24, 0, 0), 16), None, ifid(2));
        let hop = rt.lookup(Ipv4Addr::new(44, 24, 0, 5)).unwrap();
        assert_eq!(hop.iface, ifid(2));
        assert_eq!(hop.hop, Ipv4Addr::new(44, 24, 0, 5), "on-link: hop is dst");
        let hop = rt.lookup(Ipv4Addr::new(44, 56, 0, 5)).unwrap();
        assert_eq!(hop.iface, ifid(1));
        assert_eq!(hop.hop, Ipv4Addr::new(8, 8, 8, 8));
        let hop = rt.lookup(Ipv4Addr::new(128, 95, 1, 4)).unwrap();
        assert_eq!(hop.iface, ifid(0));
    }

    #[test]
    fn no_default_means_no_route() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        assert!(rt.lookup(Ipv4Addr::new(128, 95, 1, 4)).is_none());
    }

    #[test]
    fn add_replaces_same_prefix() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        rt.add(Prefix::amprnet(), None, ifid(1));
        assert_eq!(rt.routes().len(), 1);
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 1, 1, 1)).unwrap().iface,
            ifid(1)
        );
    }

    #[test]
    fn remove_route() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        assert!(rt.remove(Prefix::amprnet()));
        assert!(!rt.remove(Prefix::amprnet()));
        assert!(rt.lookup(Ipv4Addr::new(44, 1, 1, 1)).is_none());
    }

    #[test]
    #[should_panic]
    fn prefix_len_out_of_range_panics() {
        let _ = Prefix::new(Ipv4Addr::UNSPECIFIED, 33);
    }

    #[test]
    fn slash_32_host_route() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(1, 1, 1, 1)), ifid(0));
        rt.add(Prefix::new(Ipv4Addr::new(44, 24, 0, 28), 32), None, ifid(1));
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 24, 0, 28)).unwrap().iface,
            ifid(1)
        );
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 24, 0, 29)).unwrap().iface,
            ifid(0)
        );
    }
}
