//! The routing table: longest-prefix match with optional gateways.
//!
//! §4.2 of the paper is a routing story: AMPRnet is one class-A network
//! (44/8), so distant Internet hosts hold a *single* route for all of it
//! and every packet funnels through one gateway, even when a different
//! coast's gateway is far closer. Experiment E4 builds exactly that
//! situation from this table.

use std::fmt;
use std::net::Ipv4Addr;

use crate::stack::IfaceId;

/// An IPv4 prefix (address + mask length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// Network address (host bits ignored).
    pub addr: Ipv4Addr,
    /// Mask length, 0–32.
    pub len: u8,
}

impl Prefix {
    /// Creates a prefix; host bits in `addr` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            addr: Ipv4Addr::from(u32::from(addr) & Self::mask(len)),
            len,
        }
    }

    /// The all-zero default prefix.
    pub fn default_route() -> Prefix {
        Prefix::new(Ipv4Addr::UNSPECIFIED, 0)
    }

    /// AMPRnet, the class-A network 44.0.0.0/8 assigned to amateur packet
    /// radio (footnote 7 of the paper).
    pub fn amprnet() -> Prefix {
        Prefix::new(Ipv4Addr::new(44, 0, 0, 0), 8)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// True if `ip` is inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask(self.len) == u32::from(self.addr)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// Where a route came from. Mirrors the static-vs-RIP distinction the
/// AMPRnet gateways needed once subnet routes started arriving over the
/// wire: a learned route may expire and must never silently replace the
/// operator's static configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouteSource {
    /// Installed by configuration; never expires.
    #[default]
    Static,
    /// Learned from a route announcement; expires unless refreshed.
    Learned,
}

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next-hop gateway; `None` means the destination is on-link.
    pub via: Option<Ipv4Addr>,
    /// Output interface.
    pub iface: IfaceId,
    /// Static configuration or learned announcement.
    pub source: RouteSource,
    /// Preference among equal-length prefixes; lower wins. Prefix length
    /// always dominates (a /24 with a terrible metric still beats a /8).
    pub metric: u8,
}

/// The result of a successful lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextHop {
    /// Interface to transmit on.
    pub iface: IfaceId,
    /// The address to resolve at the link layer: the gateway if the route
    /// has one, otherwise the destination itself.
    pub hop: Ipv4Addr,
}

/// A longest-prefix-match routing table.
///
/// # Examples
///
/// ```
/// use netstack::route::{Prefix, RouteTable};
/// use netstack::stack::IfaceId;
/// use std::net::Ipv4Addr;
///
/// let mut rt = RouteTable::new();
/// let ether = IfaceId::new(0);
/// let radio = IfaceId::new(1);
/// rt.add(Prefix::amprnet(), None, radio);
/// rt.add(Prefix::default_route(), Some(Ipv4Addr::new(128, 95, 1, 1)), ether);
/// let hop = rt.lookup(Ipv4Addr::new(44, 24, 0, 5)).unwrap();
/// assert_eq!(hop.iface, radio);
/// assert_eq!(hop.hop, Ipv4Addr::new(44, 24, 0, 5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Adds (or replaces) the static route for `prefix` with metric 0.
    pub fn add(&mut self, prefix: Prefix, via: Option<Ipv4Addr>, iface: IfaceId) {
        self.insert(Route {
            prefix,
            via,
            iface,
            source: RouteSource::Static,
            metric: 0,
        });
    }

    /// Adds (or replaces) a learned route for `prefix`. Learned routes
    /// never displace a static route for the same prefix: both coexist
    /// and the metric breaks the tie, so expiring the learned route
    /// (see [`remove_learned`](Self::remove_learned)) restores the static
    /// one instead of leaving a hole.
    pub fn add_learned(
        &mut self,
        prefix: Prefix,
        via: Option<Ipv4Addr>,
        iface: IfaceId,
        metric: u8,
    ) {
        self.insert(Route {
            prefix,
            via,
            iface,
            source: RouteSource::Learned,
            metric,
        });
    }

    /// Inserts `route`, replacing any existing route with the same prefix
    /// *and* source.
    pub fn insert(&mut self, route: Route) {
        self.routes
            .retain(|r| !(r.prefix == route.prefix && r.source == route.source));
        self.routes.push(route);
        // Longest prefix strictly first, then metric, then static before
        // learned. Prefix length must dominate the metric — sorting by
        // metric ahead of length would let a cheap default route shadow
        // every longer prefix. A stable sort keeps insertion order for
        // full ties (determinism).
        self.routes.sort_by_key(|r| {
            (
                std::cmp::Reverse(r.prefix.len),
                r.metric,
                r.source != RouteSource::Static,
            )
        });
    }

    /// Removes every route for `prefix` (any source); returns whether one
    /// existed.
    pub fn remove(&mut self, prefix: Prefix) -> bool {
        let before = self.routes.len();
        self.routes.retain(|r| r.prefix != prefix);
        self.routes.len() != before
    }

    /// Removes the learned route for `prefix`, leaving any static route in
    /// place; returns whether one existed.
    pub fn remove_learned(&mut self, prefix: Prefix) -> bool {
        let before = self.routes.len();
        self.routes
            .retain(|r| !(r.prefix == prefix && r.source == RouteSource::Learned));
        self.routes.len() != before
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<NextHop> {
        self.lookup_route(dst).map(|r| NextHop {
            iface: r.iface,
            hop: r.via.unwrap_or(dst),
        })
    }

    /// Longest-prefix-match lookup returning the matched route itself —
    /// callers that maintain learned routes need the winning [`Prefix`]
    /// (and source) to know what to expire, not just the next hop.
    pub fn lookup_route(&self, dst: Ipv4Addr) -> Option<&Route> {
        self.routes.iter().find(|r| r.prefix.contains(dst))
    }

    /// All routes, longest prefix first.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ifid(n: usize) -> IfaceId {
        IfaceId::new(n)
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::new(Ipv4Addr::new(44, 24, 0, 0), 16);
        assert!(p.contains(Ipv4Addr::new(44, 24, 0, 5)));
        assert!(p.contains(Ipv4Addr::new(44, 24, 255, 255)));
        assert!(!p.contains(Ipv4Addr::new(44, 56, 0, 5)));
        assert!(Prefix::default_route().contains(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(Ipv4Addr::new(44, 24, 9, 9), 16);
        assert_eq!(p.addr, Ipv4Addr::new(44, 24, 0, 0));
        assert_eq!(p.to_string(), "44.24.0.0/16");
    }

    #[test]
    fn longest_prefix_wins() {
        let mut rt = RouteTable::new();
        rt.add(
            Prefix::default_route(),
            Some(Ipv4Addr::new(9, 9, 9, 9)),
            ifid(0),
        );
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(8, 8, 8, 8)), ifid(1));
        rt.add(Prefix::new(Ipv4Addr::new(44, 24, 0, 0), 16), None, ifid(2));
        let hop = rt.lookup(Ipv4Addr::new(44, 24, 0, 5)).unwrap();
        assert_eq!(hop.iface, ifid(2));
        assert_eq!(hop.hop, Ipv4Addr::new(44, 24, 0, 5), "on-link: hop is dst");
        let hop = rt.lookup(Ipv4Addr::new(44, 56, 0, 5)).unwrap();
        assert_eq!(hop.iface, ifid(1));
        assert_eq!(hop.hop, Ipv4Addr::new(8, 8, 8, 8));
        let hop = rt.lookup(Ipv4Addr::new(128, 95, 1, 4)).unwrap();
        assert_eq!(hop.iface, ifid(0));
    }

    #[test]
    fn no_default_means_no_route() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        assert!(rt.lookup(Ipv4Addr::new(128, 95, 1, 4)).is_none());
    }

    #[test]
    fn add_replaces_same_prefix() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        rt.add(Prefix::amprnet(), None, ifid(1));
        assert_eq!(rt.routes().len(), 1);
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 1, 1, 1)).unwrap().iface,
            ifid(1)
        );
    }

    #[test]
    fn remove_route() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        assert!(rt.remove(Prefix::amprnet()));
        assert!(!rt.remove(Prefix::amprnet()));
        assert!(rt.lookup(Ipv4Addr::new(44, 1, 1, 1)).is_none());
    }

    #[test]
    #[should_panic]
    fn prefix_len_out_of_range_panics() {
        let _ = Prefix::new(Ipv4Addr::UNSPECIFIED, 33);
    }

    #[test]
    fn learned_route_coexists_with_static_and_metric_breaks_tie() {
        let mut rt = RouteTable::new();
        rt.add(
            Prefix::default_route(),
            Some(Ipv4Addr::new(9, 9, 9, 9)),
            ifid(0),
        );
        // A cheaper learned default wins the tie...
        rt.add_learned(
            Prefix::default_route(),
            Some(Ipv4Addr::new(8, 8, 8, 8)),
            ifid(1),
            0,
        );
        assert_eq!(rt.routes().len(), 2, "both defaults coexist");
        // ...unless metrics tie exactly, where static is preferred.
        assert_eq!(
            rt.lookup(Ipv4Addr::new(1, 2, 3, 4)).unwrap().iface,
            ifid(0),
            "equal metric: static wins"
        );
        rt.add_learned(
            Prefix::default_route(),
            Some(Ipv4Addr::new(8, 8, 8, 8)),
            ifid(1),
            0,
        );
        assert_eq!(rt.routes().len(), 2, "learned re-add replaces, not stacks");
        // A worse static metric lets the learned default take over...
        rt.insert(Route {
            prefix: Prefix::default_route(),
            via: Some(Ipv4Addr::new(9, 9, 9, 9)),
            iface: ifid(0),
            source: RouteSource::Static,
            metric: 10,
        });
        assert_eq!(rt.lookup(Ipv4Addr::new(1, 2, 3, 4)).unwrap().iface, ifid(1));
        // ...and expiring the learned one falls back to the static.
        assert!(rt.remove_learned(Prefix::default_route()));
        assert_eq!(rt.lookup(Ipv4Addr::new(1, 2, 3, 4)).unwrap().iface, ifid(0));
        assert!(!rt.remove_learned(Prefix::default_route()));
    }

    #[test]
    fn default_route_metric_never_beats_longer_prefix() {
        let mut rt = RouteTable::new();
        rt.insert(Route {
            prefix: Prefix::amprnet(),
            via: Some(Ipv4Addr::new(9, 9, 9, 9)),
            iface: ifid(0),
            source: RouteSource::Static,
            metric: 15,
        });
        rt.add_learned(
            Prefix::default_route(),
            Some(Ipv4Addr::new(8, 8, 8, 8)),
            ifid(1),
            0,
        );
        // The /8 has a far worse metric than the /0 but still wins LPM.
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 24, 0, 5)).unwrap().iface,
            ifid(0)
        );
        assert_eq!(
            rt.lookup(Ipv4Addr::new(128, 95, 1, 4)).unwrap().iface,
            ifid(1)
        );
    }

    #[test]
    fn lookup_route_returns_matched_prefix_and_source() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(9, 9, 9, 9)), ifid(0));
        rt.add_learned(
            Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16),
            Some(Ipv4Addr::new(8, 8, 8, 8)),
            ifid(1),
            1,
        );
        let r = rt.lookup_route(Ipv4Addr::new(44, 56, 0, 5)).unwrap();
        assert_eq!(r.prefix, Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16));
        assert_eq!(r.source, RouteSource::Learned);
        assert_eq!(r.metric, 1);
        let r = rt.lookup_route(Ipv4Addr::new(44, 24, 0, 5)).unwrap();
        assert_eq!(r.prefix, Prefix::amprnet());
        assert_eq!(r.source, RouteSource::Static);
    }

    #[test]
    fn remove_any_source_clears_both() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), None, ifid(0));
        rt.add_learned(Prefix::amprnet(), None, ifid(1), 1);
        assert!(rt.remove(Prefix::amprnet()));
        assert!(rt.routes().is_empty());
    }

    #[test]
    fn slash_32_host_route() {
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), Some(Ipv4Addr::new(1, 1, 1, 1)), ifid(0));
        rt.add(Prefix::new(Ipv4Addr::new(44, 24, 0, 28), 32), None, ifid(1));
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 24, 0, 28)).unwrap().iface,
            ifid(1)
        );
        assert_eq!(
            rt.lookup(Ipv4Addr::new(44, 24, 0, 29)).unwrap().iface,
            ifid(0)
        );
    }
}
