//! RFC 826 ARP packets, hardware-type agnostic.
//!
//! §2.3 of the paper: Internet addresses are translated to AX.25
//! addresses *"using the address resolution protocol (ARP) in a manner
//! similar to the way that IP addresses are translated into Ethernet
//! addresses"*, but — because AX.25 addresses can carry digipeater paths —
//! *"a different set of ARP routines is needed for packet radio"*, living
//! inside each driver. This module therefore only defines the wire format
//! with variable-length hardware addresses; the per-link resolver engines
//! are in the `gateway` crate next to the drivers, exactly as in the
//! paper ("the ARP lookup occurs inside our code").

use std::net::Ipv4Addr;

use sim::pktbuf::ByteSink;
use sim::wire::{Codec, Reader};

use crate::NetError;

/// ARP hardware types used here.
pub mod hw_type {
    /// Ethernet (10 Mb).
    pub const ETHERNET: u16 = 1;
    /// AX.25 — the assignment used by the KA9Q code.
    pub const AX25: u16 = 3;
}

/// ARP operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has.
    Request,
    /// Is-at.
    Reply,
}

impl ArpOp {
    fn code(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }

    fn from_code(v: u16) -> Option<ArpOp> {
        match v {
            1 => Some(ArpOp::Request),
            2 => Some(ArpOp::Reply),
            _ => None,
        }
    }
}

/// An ARP packet with opaque, variable-length hardware addresses (the
/// driver that owns the link interprets them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpPacket {
    /// Hardware type ([`hw_type`]).
    pub hw: u16,
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_hw: Vec<u8>,
    /// Sender protocol (IP) address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (all-zero in requests).
    pub target_hw: Vec<u8>,
    /// Target protocol (IP) address.
    pub target_ip: Ipv4Addr,
}

/// Protocol type for IPv4 in ARP.
const PROTO_IPV4: u16 = 0x0800;

impl ArpPacket {
    /// Creates a who-has request.
    pub fn request(
        hw: u16,
        sender_hw: Vec<u8>,
        sender_ip: Ipv4Addr,
        target_ip: Ipv4Addr,
    ) -> ArpPacket {
        let hlen = sender_hw.len();
        ArpPacket {
            hw,
            op: ArpOp::Request,
            sender_hw,
            sender_ip,
            target_hw: vec![0; hlen],
            target_ip,
        }
    }

    /// Creates the matching is-at reply.
    pub fn reply_to(&self, my_hw: Vec<u8>) -> ArpPacket {
        ArpPacket {
            hw: self.hw,
            op: ArpOp::Reply,
            sender_hw: my_hw,
            sender_ip: self.target_ip,
            target_hw: self.sender_hw.clone(),
            target_ip: self.sender_ip,
        }
    }

    /// Encodes the packet.
    ///
    /// # Panics
    ///
    /// Panics if the two hardware addresses differ in length or exceed
    /// 255 octets.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 2 * (self.sender_hw.len() + 4));
        self.encode_into(&mut out);
        out
    }

    /// Appends the wire encoding to any [`ByteSink`].
    ///
    /// # Panics
    ///
    /// Panics if the two hardware addresses differ in length or exceed
    /// 255 octets.
    pub fn encode_into(&self, out: &mut impl ByteSink) {
        assert_eq!(
            self.sender_hw.len(),
            self.target_hw.len(),
            "hardware address lengths must match"
        );
        assert!(self.sender_hw.len() <= 255);
        out.put_slice(&self.hw.to_be_bytes());
        out.put_slice(&PROTO_IPV4.to_be_bytes());
        out.put(self.sender_hw.len() as u8);
        out.put(4);
        out.put_slice(&self.op.code().to_be_bytes());
        out.put_slice(&self.sender_hw);
        out.put_slice(&self.sender_ip.octets());
        out.put_slice(&self.target_hw);
        out.put_slice(&self.target_ip.octets());
    }

    /// Decodes a packet.
    pub fn decode(bytes: &[u8]) -> Result<ArpPacket, NetError> {
        let mut r = Reader::new(bytes);
        let hw = r.u16().map_err(|_| NetError::Malformed("arp header"))?;
        let proto = r.u16().map_err(|_| NetError::Malformed("arp header"))?;
        if proto != PROTO_IPV4 {
            return Err(NetError::Malformed("arp protocol not IPv4"));
        }
        let hlen = r.u8().map_err(|_| NetError::Malformed("arp header"))? as usize;
        let plen = r.u8().map_err(|_| NetError::Malformed("arp header"))?;
        if plen != 4 {
            return Err(NetError::Malformed("arp plen not 4"));
        }
        let op = ArpOp::from_code(r.u16().map_err(|_| NetError::Malformed("arp header"))?)
            .ok_or(NetError::Malformed("arp op"))?;
        let sender_hw = r
            .take(hlen)
            .map_err(|_| NetError::Malformed("arp sender hw"))?
            .to_vec();
        let sender_ip = read_ip(&mut r)?;
        let target_hw = r
            .take(hlen)
            .map_err(|_| NetError::Malformed("arp target hw"))?
            .to_vec();
        let target_ip = read_ip(&mut r)?;
        Ok(ArpPacket {
            hw,
            op,
            sender_hw,
            sender_ip,
            target_hw,
            target_ip,
        })
    }
}

impl Codec for ArpPacket {
    type Error = NetError;

    fn encode_into(&self, out: &mut impl ByteSink) {
        ArpPacket::encode_into(self, out);
    }

    fn decode(bytes: &[u8]) -> Result<ArpPacket, NetError> {
        ArpPacket::decode(bytes)
    }
}

fn read_ip(r: &mut Reader<'_>) -> Result<Ipv4Addr, NetError> {
    let raw = r.take(4).map_err(|_| NetError::Malformed("arp ip"))?;
    Ok(Ipv4Addr::from(<[u8; 4]>::try_from(raw).expect("len 4")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_style_roundtrip() {
        let req = ArpPacket::request(
            hw_type::ETHERNET,
            vec![2, 0, 0, 0, 0, 1],
            Ipv4Addr::new(128, 95, 1, 4),
            Ipv4Addr::new(128, 95, 1, 99),
        );
        let back = ArpPacket::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.target_hw, vec![0; 6]);
    }

    #[test]
    fn ax25_style_roundtrip_with_long_hw_addr() {
        // An AX.25 "hardware address" here is the encoded callsign+SSID,
        // 7 octets.
        let req = ArpPacket::request(
            hw_type::AX25,
            b"N7AKR-1".to_vec(),
            Ipv4Addr::new(44, 24, 0, 28),
            Ipv4Addr::new(44, 24, 0, 5),
        );
        let back = ArpPacket::decode(&req.encode()).unwrap();
        assert_eq!(back.hw, hw_type::AX25);
        assert_eq!(back.sender_hw, b"N7AKR-1".to_vec());
    }

    #[test]
    fn reply_swaps_roles() {
        let req = ArpPacket::request(
            hw_type::ETHERNET,
            vec![1; 6],
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let rep = req.reply_to(vec![9; 6]);
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.sender_hw, vec![9; 6]);
        assert_eq!(rep.target_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(rep.target_hw, vec![1; 6]);
        let back = ArpPacket::decode(&rep.encode()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(ArpPacket::decode(&[]).is_err());
        assert!(ArpPacket::decode(&[0u8; 8]).is_err());
        let mut ok = ArpPacket::request(
            hw_type::ETHERNET,
            vec![1; 6],
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        )
        .encode();
        ok[3] = 99; // protocol type
        assert!(ArpPacket::decode(&ok).is_err());
    }

    #[test]
    #[should_panic]
    fn mismatched_hw_lengths_panic_on_encode() {
        let p = ArpPacket {
            hw: hw_type::ETHERNET,
            op: ArpOp::Reply,
            sender_hw: vec![1; 6],
            sender_ip: Ipv4Addr::UNSPECIFIED,
            target_hw: vec![1; 7],
            target_ip: Ipv4Addr::UNSPECIFIED,
        };
        let _ = p.encode();
    }
}
