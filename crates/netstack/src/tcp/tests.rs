//! Unit tests for the TCP state machine and codec.

use super::*;

fn ipa(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

const A: u16 = 1025;
const B: u16 = 23;

fn pair(cfg_a: TcpConfig, cfg_b: TcpConfig) -> (Tcb, Tcb) {
    let now = SimTime::ZERO;
    let (mut alice, ev) = Tcb::connect(now, (ipa(1), A), (ipa(2), B), 1000, cfg_a);
    let syn = expect_one_segment(&ev);
    let (mut bob, ev) = Tcb::accept(now, (ipa(2), B), (ipa(1), A), &syn, 7000, cfg_b);
    let synack = expect_one_segment(&ev);
    let ev = alice.on_segment(now, &synack);
    assert!(ev.contains(&TcbEvent::Connected));
    let ack = expect_one_segment(&ev);
    let ev = bob.on_segment(now, &ack);
    assert!(ev.contains(&TcbEvent::Connected));
    assert_eq!(alice.state(), TcpState::Established);
    assert_eq!(bob.state(), TcpState::Established);
    (alice, bob)
}

fn expect_one_segment(ev: &[TcbEvent]) -> TcpSegment {
    let segs: Vec<_> = ev
        .iter()
        .filter_map(|e| match e {
            TcbEvent::Transmit(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(segs.len(), 1, "expected one segment in {ev:?}");
    segs.into_iter().next().unwrap()
}

fn segments(ev: &[TcbEvent]) -> Vec<TcpSegment> {
    ev.iter()
        .filter_map(|e| match e {
            TcbEvent::Transmit(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// Runs segments back and forth until both sides go quiet; returns all
/// non-Transmit events from (a, b).
fn settle(
    now: SimTime,
    first: Vec<TcbEvent>,
    a: &mut Tcb,
    b: &mut Tcb,
) -> (Vec<TcbEvent>, Vec<TcbEvent>) {
    let mut a_ev = Vec::new();
    let mut b_ev = Vec::new();
    let mut to_b: VecDeque<TcpSegment> = VecDeque::new();
    let mut to_a: VecDeque<TcpSegment> = VecDeque::new();
    for e in first {
        match e {
            TcbEvent::Transmit(s) => to_b.push_back(s),
            other => a_ev.push(other),
        }
    }
    for _ in 0..10_000 {
        if to_b.is_empty() && to_a.is_empty() {
            break;
        }
        if let Some(s) = to_b.pop_front() {
            for e in b.on_segment(now, &s) {
                match e {
                    TcbEvent::Transmit(s) => to_a.push_back(s),
                    other => b_ev.push(other),
                }
            }
        }
        if let Some(s) = to_a.pop_front() {
            for e in a.on_segment(now, &s) {
                match e {
                    TcbEvent::Transmit(s) => to_b.push_back(s),
                    other => a_ev.push(other),
                }
            }
        }
    }
    (a_ev, b_ev)
}

// --- Codec --------------------------------------------------------------

#[test]
fn segment_codec_roundtrip() {
    let seg = TcpSegment {
        src_port: 1025,
        dst_port: 23,
        seq: 0xDEADBEEF,
        ack: 0x01020304,
        flags: TcpFlags {
            ack: true,
            psh: true,
            ..TcpFlags::default()
        },
        window: 4096,
        mss: None,
        payload: b"telnet data".to_vec(),
    };
    let bytes = seg.encode(ipa(1), ipa(2));
    assert_eq!(TcpSegment::decode(&bytes, ipa(1), ipa(2)).unwrap(), seg);
}

#[test]
fn syn_with_mss_roundtrip() {
    let seg = TcpSegment {
        src_port: 1,
        dst_port: 2,
        seq: 99,
        ack: 0,
        flags: TcpFlags {
            syn: true,
            ..TcpFlags::default()
        },
        window: 2048,
        mss: Some(216),
        payload: vec![],
    };
    let bytes = seg.encode(ipa(1), ipa(2));
    let back = TcpSegment::decode(&bytes, ipa(1), ipa(2)).unwrap();
    assert_eq!(back.mss, Some(216));
    assert_eq!(back, seg);
}

#[test]
fn codec_detects_corruption_and_wrong_addresses() {
    let seg = TcpSegment {
        src_port: 1,
        dst_port: 2,
        seq: 1,
        ack: 2,
        flags: TcpFlags {
            ack: true,
            ..TcpFlags::default()
        },
        window: 100,
        mss: None,
        payload: b"x".to_vec(),
    };
    let bytes = seg.encode(ipa(1), ipa(2));
    let mut bad = bytes.clone();
    bad[4] ^= 1;
    assert!(TcpSegment::decode(&bad, ipa(1), ipa(2)).is_err());
    assert!(TcpSegment::decode(&bytes, ipa(3), ipa(2)).is_err());
}

#[test]
fn seq_len_counts_syn_fin_payload() {
    let mut seg = TcpSegment {
        src_port: 0,
        dst_port: 0,
        seq: 0,
        ack: 0,
        flags: TcpFlags::default(),
        window: 0,
        mss: None,
        payload: vec![1, 2, 3],
    };
    assert_eq!(seg.seq_len(), 3);
    seg.flags.syn = true;
    assert_eq!(seg.seq_len(), 4);
    seg.flags.fin = true;
    assert_eq!(seg.seq_len(), 5);
}

#[test]
fn sequence_comparisons_wrap() {
    assert!(seq_lt(0xFFFF_FFF0, 0x10));
    assert!(!seq_lt(0x10, 0xFFFF_FFF0));
    assert!(seq_le(5, 5));
    assert!(seq_lt(0, 1));
}

// --- Handshake ------------------------------------------------------------

#[test]
fn three_way_handshake() {
    let _ = pair(TcpConfig::default(), TcpConfig::default());
}

#[test]
fn mss_negotiates_to_minimum() {
    let small = TcpConfig {
        mss: 216,
        ..TcpConfig::default()
    };
    let (alice, bob) = pair(TcpConfig::default(), small);
    assert_eq!(alice.mss(), 216);
    assert_eq!(bob.mss(), 216);
}

#[test]
fn syn_retransmits_on_timeout() {
    let now = SimTime::ZERO;
    let (mut alice, _) = Tcb::connect(now, (ipa(1), A), (ipa(2), B), 1, TcpConfig::default());
    let t = alice.next_deadline().expect("rtx armed");
    let ev = alice.on_timer(t);
    let seg = expect_one_segment(&ev);
    assert!(seg.flags.syn);
    assert_eq!(alice.stats().retransmissions, 1);
    // Backoff doubles the next deadline interval.
    let t2 = alice.next_deadline().unwrap();
    assert!(t2 - t > t - now, "exponential backoff");
}

#[test]
fn lost_handshake_ack_recovers_via_dup_synack() {
    // The third packet of the handshake is lost: the client goes
    // Established, the server stays SynReceived and retransmits its
    // SYN-ACK. The client must re-ACK the duplicate SYN-ACK (RFC 793) or
    // both sides deadlock — the client waiting for data, the server for
    // its handshake ACK (seen in the field on a lossy 1200 b/s channel).
    let now = SimTime::ZERO;
    let (mut alice, ev) = Tcb::connect(now, (ipa(1), A), (ipa(2), B), 1000, TcpConfig::default());
    let syn = expect_one_segment(&ev);
    let (mut bob, ev) = Tcb::accept(
        now,
        (ipa(2), B),
        (ipa(1), A),
        &syn,
        7000,
        TcpConfig::default(),
    );
    let synack = expect_one_segment(&ev);
    let ev = alice.on_segment(now, &synack);
    expect_one_segment(&ev); // the handshake ACK — dropped on the floor
    assert_eq!(alice.state(), TcpState::Established);
    assert_eq!(bob.state(), TcpState::SynReceived);

    let t = bob.next_deadline().expect("synack rtx armed");
    let ev = bob.on_timer(t);
    let dup_synack = expect_one_segment(&ev);
    assert!(dup_synack.flags.syn && dup_synack.flags.ack);
    let ev = alice.on_segment(t, &dup_synack);
    let reack = expect_one_segment(&ev);
    assert!(reack.flags.ack && !reack.flags.syn);
    let ev = bob.on_segment(t, &reack);
    assert!(ev.contains(&TcbEvent::Connected));
    assert_eq!(bob.state(), TcpState::Established);
}

// --- Data transfer ----------------------------------------------------------

#[test]
fn simple_data_transfer_both_directions() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    let (n, ev) = alice.send(now, b"hello bob");
    assert_eq!(n, 9);
    let (_, b_ev) = settle(now, ev, &mut alice, &mut bob);
    assert!(b_ev.contains(&TcbEvent::DataReadable));
    let (data, _) = bob.recv(now);
    assert_eq!(data, b"hello bob");

    let (_, ev) = bob.send(now, b"hello alice");
    let (_, a_ev) = settle(now, ev, &mut bob, &mut alice);
    assert!(a_ev.contains(&TcbEvent::DataReadable));
    let (data, _) = alice.recv(now);
    assert_eq!(data, b"hello alice");
}

#[test]
fn large_transfer_respects_mss_and_window() {
    let cfg = TcpConfig {
        mss: 100,
        ..TcpConfig::default()
    };
    let (mut alice, mut bob) = pair(cfg, cfg);
    let now = SimTime::ZERO;
    let data: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
    let (n, ev) = alice.send(now, &data);
    assert_eq!(n, 3000);
    for seg in segments(&ev) {
        assert!(seg.payload.len() <= 100);
    }
    let (_, _) = settle(now, ev, &mut alice, &mut bob);
    let (got, _) = bob.recv(now);
    assert_eq!(got, data);
    assert_eq!(alice.send_backlog(), 0);
}

#[test]
fn send_bounded_by_send_buffer() {
    let cfg = TcpConfig {
        send_buf: 100,
        ..TcpConfig::default()
    };
    let (mut alice, _bob) = pair(cfg, TcpConfig::default());
    let (n, _) = alice.send(SimTime::ZERO, &[0u8; 500]);
    assert_eq!(n, 100);
    assert_eq!(alice.send_capacity(), 0);
}

#[test]
fn sender_respects_peer_window() {
    let tiny_recv = TcpConfig {
        recv_buf: 300,
        ..TcpConfig::default()
    };
    let (mut alice, _bob) = pair(TcpConfig::default(), tiny_recv);
    let (_, ev) = alice.send(SimTime::ZERO, &[0u8; 2000]);
    let sent: usize = segments(&ev).iter().map(|s| s.payload.len()).sum();
    assert!(sent <= 300, "sent {sent} > advertised window");
}

#[test]
fn lost_segment_is_retransmitted_and_delivery_resumes() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let mut now = SimTime::ZERO;
    let (_, ev) = alice.send(now, b"precious");
    let _lost = segments(&ev); // never delivered
    now = alice.next_deadline().expect("rtx timer");
    let ev = alice.on_timer(now);
    assert_eq!(alice.stats().retransmissions, 1);
    let (_, b_ev) = settle(now, ev, &mut alice, &mut bob);
    assert!(b_ev.contains(&TcbEvent::DataReadable));
    let (data, _) = bob.recv(now);
    assert_eq!(data, b"precious");
}

#[test]
fn duplicate_data_is_not_delivered_twice() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    let (_, ev) = alice.send(now, b"once");
    let seg = segments(&ev).remove(0);
    bob.on_segment(now, &seg);
    let (data, _) = bob.recv(now);
    assert_eq!(data, b"once");
    let ev = bob.on_segment(now, &seg);
    assert!(
        !ev.contains(&TcbEvent::DataReadable),
        "duplicate delivered again"
    );
    let (data, _) = bob.recv(now);
    assert!(data.is_empty());
    // The duplicate still draws an ACK.
    assert!(!segments(&ev).is_empty());
}

#[test]
fn out_of_order_segment_draws_dup_ack_and_is_dropped() {
    let cfg = TcpConfig {
        mss: 4,
        ..TcpConfig::default()
    };
    let (mut alice, mut bob) = pair(cfg, cfg);
    let now = SimTime::ZERO;
    let (_, ev) = alice.send(now, b"aaaabbbb");
    let segs = segments(&ev);
    assert_eq!(segs.len(), 2);
    // Deliver only the second.
    let ev = bob.on_segment(now, &segs[1]);
    assert!(!ev.contains(&TcbEvent::DataReadable));
    let ack = expect_one_segment(&ev);
    assert_eq!(ack.ack, segs[0].seq, "dup ack points at the hole");
    assert_eq!(bob.stats().ooo_dropped, 1);
}

#[test]
fn recv_buffer_overflow_is_not_acked() {
    let tiny = TcpConfig {
        recv_buf: 4,
        ..TcpConfig::default()
    };
    let (mut alice, mut bob) = pair(TcpConfig::default(), tiny);
    let now = SimTime::ZERO;
    // Window is 4, so alice sends only 4 bytes.
    let (_, ev) = alice.send(now, b"12345678");
    let sent: usize = segments(&ev).iter().map(|s| s.payload.len()).sum();
    assert_eq!(sent, 4);
    settle(now, ev, &mut alice, &mut bob);
    let (data, ev2) = bob.recv(now);
    assert_eq!(data, b"1234");
    // Draining reopens the window; bob announces it.
    let upd = segments(&ev2);
    assert_eq!(upd.len(), 1);
    assert!(upd[0].window >= 4);
}

// --- RTO behaviour ------------------------------------------------------------

#[test]
fn fixed_rto_never_adapts() {
    let fixed = TcpConfig {
        rto: RtoPolicy::Fixed(SimDuration::from_millis(1500)),
        ..TcpConfig::default()
    };
    let (mut alice, mut bob) = pair(fixed, TcpConfig::default());
    let mut now = SimTime::ZERO;
    // Several exchanges with 4s "path RTT" (we just advance the clock).
    for i in 0..5 {
        let (_, ev) = alice.send(now, format!("msg{i}").as_bytes());
        now += SimDuration::from_secs(4);
        settle(now, ev, &mut alice, &mut bob);
    }
    assert_eq!(alice.stats().rtt_samples, 0);
    assert_eq!(alice.stats().rto_secs, 1.5);
}

#[test]
fn adaptive_rto_learns_the_path() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let mut now = SimTime::ZERO;
    for i in 0..10 {
        let (_, ev) = alice.send(now, format!("msg{i}").as_bytes());
        // The reply comes back 4 seconds later.
        now += SimDuration::from_secs(4);
        settle(now, ev, &mut alice, &mut bob);
    }
    let s = alice.stats();
    assert!(s.rtt_samples >= 5, "samples: {}", s.rtt_samples);
    assert!(s.srtt_secs > 2.0, "srtt: {}", s.srtt_secs);
    assert!(s.rto_secs >= 4.0, "rto: {}", s.rto_secs);
}

#[test]
fn karn_rule_skips_samples_after_retransmission() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let mut now = SimTime::ZERO;
    // Handshake took one sample (connect probe). Note the count.
    let base = alice.stats().rtt_samples;
    let (_, ev) = alice.send(now, b"will be retransmitted");
    drop(ev); // lost
    now = alice.next_deadline().unwrap();
    let ev = alice.on_timer(now);
    // Delivered on retransmission; the ACK must not produce a sample.
    now += SimDuration::from_secs(2);
    settle(now, ev, &mut alice, &mut bob);
    assert_eq!(alice.stats().rtt_samples, base);
    assert_eq!(alice.send_backlog(), 0, "ack still processed");
}

#[test]
fn fixed_rto_resets_backoff_on_any_progress() {
    // The naive 1988 host: acked data clears the backoff immediately, so
    // it goes right back to its too-short constant timeout (§4.1).
    let fixed = TcpConfig {
        rto: RtoPolicy::Fixed(SimDuration::from_millis(1500)),
        ..TcpConfig::default()
    };
    let (mut alice, mut bob) = pair(fixed, TcpConfig::default());
    let mut now = SimTime::ZERO;
    let (_, ev) = alice.send(now, b"x");
    drop(ev);
    for _ in 0..2 {
        now = alice.next_deadline().unwrap();
        let _ = alice.on_timer(now);
    }
    let backed_off = alice.next_deadline().unwrap() - now;
    now = alice.next_deadline().unwrap();
    let ev = alice.on_timer(now);
    settle(now, ev, &mut alice, &mut bob);
    let (_, _ev) = alice.send(now, b"y");
    let fresh = alice.next_deadline().unwrap() - now;
    assert!(fresh < backed_off, "{fresh} !< {backed_off}");
    assert_eq!(fresh, SimDuration::from_millis(1500));
}

#[test]
fn karn_keeps_backoff_until_a_valid_sample() {
    // The adaptive host must NOT trust an ack for retransmitted data:
    // the backed-off RTO persists until an un-retransmitted segment is
    // acknowledged, which also finally yields an RTT sample.
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let mut now = SimTime::ZERO;
    let (_, ev) = alice.send(now, b"x");
    drop(ev); // lost
    for _ in 0..2 {
        now = alice.next_deadline().unwrap();
        let _ = alice.on_timer(now);
    }
    // Third timeout delivers; its ack must not reset the backoff.
    now = alice.next_deadline().unwrap();
    let ev = alice.on_timer(now);
    settle(now, ev, &mut alice, &mut bob);
    let (_, y_ev) = alice.send(now, b"y");
    let still_backed_off = alice.next_deadline().unwrap() - now;
    // The handshake sampled a near-zero RTT, so the base RTO is the
    // min_rto clamp (0.5 s); three backoffs make 4 s.
    assert!(
        still_backed_off >= SimDuration::from_millis(3500),
        "backoff persisted: {still_backed_off}"
    );
    // "y" arrives un-retransmitted; its ack supplies a sample and resets
    // the backoff (Karn's second half).
    now += SimDuration::from_secs(2);
    let samples_before = alice.stats().rtt_samples;
    settle(now, y_ev, &mut alice, &mut bob);
    assert_eq!(alice.stats().rtt_samples, samples_before + 1);
    let (_, z_ev) = alice.send(now, b"z");
    assert!(!segments(&z_ev).is_empty());
    let fresh = alice.next_deadline().unwrap() - now;
    assert!(
        fresh < still_backed_off,
        "backoff cleared by the sample: {fresh} !< {still_backed_off}"
    );
}

// --- Close ------------------------------------------------------------------

#[test]
fn orderly_close_both_sides() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    let ev = alice.close(now);
    let (_, b_ev) = settle(now, ev, &mut alice, &mut bob);
    assert!(b_ev.contains(&TcbEvent::PeerClosed));
    assert_eq!(bob.state(), TcpState::CloseWait);
    assert_eq!(alice.state(), TcpState::FinWait2);
    let ev = bob.close(now);
    let (b_ev2, a_ev2) = settle(now, ev, &mut bob, &mut alice);
    assert!(b_ev2
        .iter()
        .any(|e| matches!(e, TcbEvent::Closed { reset: false })));
    assert_eq!(bob.state(), TcpState::Closed);
    assert!(a_ev2.contains(&TcbEvent::PeerClosed));
    assert_eq!(alice.state(), TcpState::TimeWait);
    // TIME-WAIT expires.
    let t = alice.next_deadline().unwrap();
    let ev = alice.on_timer(t);
    assert!(ev
        .iter()
        .any(|e| matches!(e, TcbEvent::Closed { reset: false })));
    assert_eq!(alice.state(), TcpState::Closed);
}

#[test]
fn fin_carries_remaining_data() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    let (_, ev1) = alice.send(now, b"last words");
    let ev2 = alice.close(now);
    let mut all = ev1;
    all.extend(ev2);
    let (_, b_ev) = settle(now, all, &mut alice, &mut bob);
    assert!(b_ev.contains(&TcbEvent::DataReadable));
    assert!(b_ev.contains(&TcbEvent::PeerClosed));
    let (data, _) = bob.recv(now);
    assert_eq!(data, b"last words");
    assert!(bob.at_eof());
}

#[test]
fn reset_tears_down_immediately() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    let ev = alice.abort(now);
    let rst = expect_one_segment(&ev);
    assert!(rst.flags.rst);
    assert_eq!(alice.state(), TcpState::Closed);
    let ev = bob.on_segment(now, &rst);
    assert!(ev
        .iter()
        .any(|e| matches!(e, TcbEvent::Closed { reset: true })));
    assert_eq!(bob.state(), TcpState::Closed);
}

#[test]
fn send_after_close_is_refused() {
    let (mut alice, _bob) = pair(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    alice.close(now);
    let (n, ev) = alice.send(now, b"too late");
    assert_eq!(n, 0);
    assert!(ev.is_empty());
}

#[test]
fn simultaneous_close() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let now = SimTime::ZERO;
    let a_fin = segments(&alice.close(now));
    let b_fin = segments(&bob.close(now));
    // Cross the FINs.
    let a_resp = segments(&alice.on_segment(now, &b_fin[0]));
    let b_resp = segments(&bob.on_segment(now, &a_fin[0]));
    for s in b_resp {
        alice.on_segment(now, &s);
    }
    for s in a_resp {
        bob.on_segment(now, &s);
    }
    assert!(matches!(
        alice.state(),
        TcpState::TimeWait | TcpState::Closed
    ));
    assert!(matches!(bob.state(), TcpState::TimeWait | TcpState::Closed));
}

#[test]
fn fin_only_retransmission() {
    let (mut alice, mut bob) = pair(TcpConfig::default(), TcpConfig::default());
    let mut now = SimTime::ZERO;
    let ev = alice.close(now);
    drop(ev); // FIN lost
    now = alice.next_deadline().unwrap();
    let ev = alice.on_timer(now);
    let fin = expect_one_segment(&ev);
    assert!(fin.flags.fin);
    let (_, b_ev) = settle(now, ev, &mut alice, &mut bob);
    assert!(b_ev.contains(&TcbEvent::PeerClosed));
}
