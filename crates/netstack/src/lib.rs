//! A from-scratch TCP/IP stack, the "existing Ultrix network support" and
//! "KA9Q package" substrate of the paper.
//!
//! The paper plugs its packet-radio driver underneath Ultrix's 4.3BSD
//! networking and talks to Phil Karn's KA9Q stack on the PC side. This
//! reproduction cannot link either, so this crate implements the protocol
//! suite both ends need, sans-io:
//!
//! * [`ip`] — IPv4 packets, header checksum, fragmentation and reassembly
//!   (the gateway must fragment Ethernet-sized packets onto the 256-octet
//!   AX.25 MTU);
//! * [`icmp`] — echo, destination-unreachable, time-exceeded, **and the
//!   gateway-control messages the paper proposes in §4.3** (authenticated
//!   open/close of access-control entries);
//! * [`arp`] — RFC 826 packets, link-type agnostic (hardware type 1 =
//!   Ethernet, 3 = AX.25), since "a different set of ARP routines is
//!   needed for packet radio" (§2.3) lives in the driver crate;
//! * [`udp`] — datagrams for the callbook service (§5);
//! * [`tcp`] — a full connection state machine with sliding windows and,
//!   centrally for §4.1, **both retransmission policies the paper
//!   contrasts**: a fixed RTO and an adaptive (Jacobson/Karn) RTO;
//! * [`route`] — longest-prefix-match routing, including the single
//!   class-A route for AMPRnet that §4.2 laments;
//! * [`lpm`] — the compiled flat multibit trie the fast lookup path
//!   walks (DESIGN.md §14);
//! * [`fwd`] — the per-destination next-hop cache memoizing full
//!   forwarding decisions with generation-stamped invalidation;
//! * [`stack`] — a per-host stack tying it together behind a socket API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod fwd;
pub mod icmp;
pub mod ip;
pub mod lpm;
pub mod route;
pub mod stack;
pub mod tcp;
pub mod udp;

pub use ip::{Ipv4Packet, Proto};
pub use route::{Prefix, RouteTable};
pub use stack::{IfaceId, NetStack, SockId, StackAction, StackConfig};

/// Errors surfaced by the stack's codecs and state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Packet failed structural parsing.
    Malformed(&'static str),
    /// A checksum did not verify.
    BadChecksum(&'static str),
    /// No route to the destination.
    NoRoute(std::net::Ipv4Addr),
    /// Socket/handle misuse (wrong state, unknown id).
    BadSocket(&'static str),
    /// Address or port already in use.
    InUse,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Malformed(w) => write!(f, "malformed packet: {w}"),
            NetError::BadChecksum(w) => write!(f, "bad checksum: {w}"),
            NetError::NoRoute(ip) => write!(f, "no route to {ip}"),
            NetError::BadSocket(w) => write!(f, "socket error: {w}"),
            NetError::InUse => write!(f, "address in use"),
        }
    }
}

impl std::error::Error for NetError {}
