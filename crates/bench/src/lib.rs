//! Shared machinery for the experiment binaries in `src/bin`.
//!
//! Every table/figure-style claim in the paper has one binary here that
//! regenerates it (the mapping lives in `DESIGN.md` §4 and
//! `EXPERIMENTS.md`). This library holds the topologies and measurement
//! helpers they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::net::Ipv4Addr;

use ax25::addr::Ax25Addr;
use ether::MacAddr;
use gateway::host::{EtherIfConfig, HostConfig, RadioIfConfig};
use gateway::hwaddr::Ax25Hw;
use gateway::scenario::PaperConfig;
use gateway::world::{ChanId, HostId, SegId, World};
use netstack::route::Prefix;
use radio::channel::StationId;
use sim::Bandwidth;

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("==========================================================================");
    println!("{id}: {title}");
    println!("paper claim: {claim}");
    println!("==========================================================================");
}

/// The E4 (§4.2) two-coast topology.
///
/// ```text
///                     "Internet" Ethernet segment
///   internet-host ────────┬──────────────────────┬────────
///                    west-gw (N7AKR-1)      east-gw (W2GW)
///   44.24/16 radio ───────┘                      └──────── 44.56/16 radio
///     west-pc 44.24.0.5        BBONE digi         east-host 44.56.0.5
///        (west group) ── hears ── (both) ── hears ── (east group)
/// ```
///
/// All radio stations share one 1200 bit/s channel, but the hearing
/// matrix splits it into two regions bridged only by the BBONE
/// digipeater — the cross-country RF path a packet takes when the single
/// class-A route drops it at the wrong coast.
pub struct TwoCoast {
    /// The world.
    pub world: World,
    /// The shared radio channel.
    pub chan: ChanId,
    /// The Internet segment.
    pub seg: SegId,
    /// A distant Internet host.
    pub internet_host: HostId,
    /// The west-coast gateway.
    pub west_gw: HostId,
    /// The east-coast gateway.
    pub east_gw: HostId,
    /// A host on the east radio subnet.
    pub east_host: HostId,
}

/// Addresses used by the two-coast topology.
pub mod two_coast_addrs {
    use std::net::Ipv4Addr;

    /// The distant Internet host.
    pub const INTERNET_HOST: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 4);
    /// West gateway, Ethernet side.
    pub const WEST_GW_ETHER: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 100);
    /// East gateway, Ethernet side.
    pub const EAST_GW_ETHER: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 101);
    /// West gateway, radio side.
    pub const WEST_GW_RADIO: Ipv4Addr = Ipv4Addr::new(44, 24, 0, 28);
    /// East gateway, radio side.
    pub const EAST_GW_RADIO: Ipv4Addr = Ipv4Addr::new(44, 56, 0, 28);
    /// The east-coast radio host the experiment talks to.
    pub const EAST_HOST: Ipv4Addr = Ipv4Addr::new(44, 56, 0, 5);
}

/// Routing policy for the two-coast topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// One class-A route: everything for 44/8 goes to the west gateway,
    /// which must relay cross-country over RF (§4.2's complaint).
    SingleClassA,
    /// Per-subnet routes: 44.56/16 goes straight to the east gateway.
    PerSubnet,
}

/// Builds the two-coast topology under the given routing policy.
pub fn two_coast(mode: RouteMode, cfg: &PaperConfig, seed: u64) -> TwoCoast {
    use two_coast_addrs as a;
    let mut world = World::new(seed);
    let chan = world.add_channel(cfg.radio_rate);
    let seg = world.add_segment(Bandwidth::ETHERNET_10M);

    // Hosts.
    let mut ih = HostConfig::named("internet-host");
    ih.cpu = gateway::cpu::CpuConfig::free();
    ih.ether = Some(EtherIfConfig {
        mac: MacAddr::local(10),
        ip: a::INTERNET_HOST,
        prefix_len: 24,
    });
    let internet_host = world.add_host(ih);
    world.attach_ether(internet_host, seg);

    let mut wg = HostConfig::named("west-gw");
    wg.cpu = cfg.cpu;
    wg.stack.forwarding = true;
    wg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("N7AKR-1"),
        ip: a::WEST_GW_RADIO,
        prefix_len: 16,
    });
    wg.ether = Some(EtherIfConfig {
        mac: MacAddr::local(11),
        ip: a::WEST_GW_ETHER,
        prefix_len: 24,
    });
    let west_gw = world.add_host(wg);
    let _wg_tnc = world.attach_radio(west_gw, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);
    world.attach_ether(west_gw, seg);

    let mut eg = HostConfig::named("east-gw");
    eg.cpu = cfg.cpu;
    eg.stack.forwarding = true;
    eg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("W2GW"),
        ip: a::EAST_GW_RADIO,
        prefix_len: 16,
    });
    eg.ether = Some(EtherIfConfig {
        mac: MacAddr::local(12),
        ip: a::EAST_GW_ETHER,
        prefix_len: 24,
    });
    let east_gw = world.add_host(eg);
    let _eg_tnc = world.attach_radio(east_gw, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);
    world.attach_ether(east_gw, seg);

    let mut eh = HostConfig::named("east-host");
    eh.cpu = cfg.cpu;
    eh.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("KA2EH"),
        ip: a::EAST_HOST,
        prefix_len: 16,
    });
    let east_host = world.add_host(eh);
    let _eh_tnc = world.attach_radio(east_host, chan, cfg.serial_baud, cfg.tnc_mode, cfg.mac);

    // The cross-country backbone digipeater.
    let bbone = Ax25Addr::parse_or_panic("BBONE");
    world.add_digipeater(chan, bbone, cfg.mac);

    // Hearing matrix: stations were added in order
    //   west_gw=0, east_gw=1, east_host=2, BBONE=3.
    // West group: {west_gw, BBONE}; east group: {east_gw, east_host,
    // BBONE}. West and east cannot hear each other directly.
    let wgs = StationId(0);
    let egs = StationId(1);
    let ehs = StationId(2);
    let c = world.channel_mut(chan);
    for &(x, y) in &[(wgs, egs), (wgs, ehs)] {
        c.set_hears(x, y, false);
        c.set_hears(y, x, false);
    }

    // Routing.
    let ih_if = world.host(internet_host).ether_iface().unwrap();
    match mode {
        RouteMode::SingleClassA => {
            world.host_mut(internet_host).stack.routes_mut().add(
                Prefix::amprnet(),
                Some(a::WEST_GW_ETHER),
                ih_if,
            );
        }
        RouteMode::PerSubnet => {
            world.host_mut(internet_host).stack.routes_mut().add(
                Prefix::new(Ipv4Addr::new(44, 24, 0, 0), 16),
                Some(a::WEST_GW_ETHER),
                ih_if,
            );
            world.host_mut(internet_host).stack.routes_mut().add(
                Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16),
                Some(a::EAST_GW_ETHER),
                ih_if,
            );
        }
    }
    // The west gateway's path to the east subnet: across the RF backbone
    // via BBONE (a static ARP source route, §2.3 style). Its connected
    // route covers only 44.24/16, so add 44.56/16 out the radio.
    let wg_radio_if = world.host(west_gw).radio_iface().unwrap();
    world.host_mut(west_gw).stack.routes_mut().add(
        Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16),
        None,
        wg_radio_if,
    );
    world
        .host_mut(west_gw)
        .pr_driver_mut()
        .unwrap()
        .arp_mut()
        .insert_static(
            a::EAST_HOST,
            Ax25Hw::via(Ax25Addr::parse_or_panic("KA2EH"), &[bbone]).encode(),
        );
    // The east host answers westward traffic back the way it came.
    let eh_if = world.host(east_host).radio_iface().unwrap();
    world.host_mut(east_host).stack.routes_mut().add(
        Prefix::default_route(),
        Some(a::EAST_GW_RADIO),
        eh_if,
    );
    if mode == RouteMode::SingleClassA {
        // Replies retrace the RF backbone: default via the west gateway.
        world.host_mut(east_host).stack.routes_mut().add(
            Prefix::default_route(),
            Some(a::WEST_GW_RADIO),
            eh_if,
        );
        world
            .host_mut(east_host)
            .pr_driver_mut()
            .unwrap()
            .arp_mut()
            .insert_static(
                a::WEST_GW_RADIO,
                Ax25Hw::via(Ax25Addr::parse_or_panic("N7AKR-1"), &[bbone]).encode(),
            );
    }

    TwoCoast {
        world,
        chan,
        seg,
        internet_host,
        west_gw,
        east_gw,
        east_host,
    }
}

/// A `PaperConfig` with the ACL disabled — routing/latency experiments
/// where §4.3 is out of scope.
pub fn open_config() -> PaperConfig {
    PaperConfig {
        acl: false,
        ..PaperConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::ping::Pinger;
    use sim::SimDuration;

    fn ping_east(mode: RouteMode) -> SimDuration {
        let mut t = two_coast(mode, &open_config(), 404);
        // Three pings; the first pays for ARP on the radio segments, so
        // judge by the warm-path minimum.
        let p = Pinger::new(
            two_coast_addrs::EAST_HOST,
            1,
            3,
            SimDuration::from_secs(45),
            32,
        );
        let r = p.report();
        t.world.add_app(t.internet_host, Box::new(p));
        t.world.run_for(SimDuration::from_secs(900));
        let mut rep = r.borrow_mut();
        assert_eq!(rep.received, 3, "{mode:?} pings must succeed");
        rep.rtts.min().unwrap()
    }

    #[test]
    fn single_class_a_route_is_much_slower_than_per_subnet() {
        let single = ping_east(RouteMode::SingleClassA);
        let per_subnet = ping_east(RouteMode::PerSubnet);
        // The backbone path crosses the channel twice per direction
        // (sender → BBONE → receiver): at least ~2x the RTT.
        assert!(
            single.as_secs_f64() > 1.7 * per_subnet.as_secs_f64(),
            "single {single} vs per-subnet {per_subnet}"
        );
    }
}
