//! E7 — §1's digipeaters: "the specification of up to eight digipeaters
//! through which a packet is to pass." Every hop retransmits on the same
//! frequency, so each hop roughly doubles a packet's airtime. This sweep
//! measures ping RTT and TCP goodput through chains of 0–8 digipeaters.

use apps::bulk::{BulkSender, BulkSink};
use apps::ping::Pinger;
use bench::banner;
use gateway::scenario::{digi_chain_topology, PaperConfig, GW_RADIO_IP, PC_IP};
use sim::stats::Sweep;
use sim::SimDuration;

fn main() {
    banner(
        "E7",
        "source-routed digipeating cost vs chain length",
        "up to eight digipeaters may relay a frame; every relay re-occupies \
         the shared channel (§1)",
    );
    println!("(PC ⇄ far host through a line of digipeaters with hidden ends)\n");

    let cfg = PaperConfig {
        acl: false,
        ..PaperConfig::default()
    };

    let mut sweep = Sweep::new("digipeaters");
    for n in 0..=8usize {
        let mut s = digi_chain_topology(n, cfg.clone(), 7000 + n as u64);
        let pinger = Pinger::new(GW_RADIO_IP, 1, 4, SimDuration::from_secs(90), 32);
        let ping_report = pinger.report();
        s.world.add_app(s.pc, Box::new(pinger));
        s.world.run_for(SimDuration::from_secs(600));

        // A small transfer over the same chain.
        let sink = BulkSink::new(7100);
        let sink_report = sink.report();
        s.world.add_app(s.gw, Box::new(sink));
        let sender = BulkSender::new(GW_RADIO_IP, 7100, 800);
        let send_report = sender.report();
        s.world.add_app(s.pc, Box::new(sender));
        s.world.run_for(SimDuration::from_secs(6 * 3600));

        let mut pr = ping_report.borrow_mut();
        let tx = send_report.borrow();
        let airtime = s.world.channel(s.chan).stats().airtime_ns as f64 / 1e9;
        sweep
            .row(n as f64)
            .set(
                "warm_rtt_s",
                pr.rtts.min().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
            )
            .set("ping_ok", f64::from(pr.received))
            .set("goodput_bps", tx.goodput_bps().unwrap_or(f64::NAN))
            .set(
                "xfer_ok",
                f64::from(u8::from(sink_report.borrow().bytes == 800)),
            )
            .set("airtime_s", airtime);
        let _ = PC_IP;
    }
    println!("{}", sweep.render());
    println!("expected shape: ping RTT grows linearly with hop count (each frame");
    println!("serializes once per hop on the same shared channel) and stays reliable");
    println!("even at the protocol maximum of 8 hops. TCP goodput falls much faster");
    println!("than 1/(hops+1) and melts down entirely beyond ~5 hops — retransmission");
    println!("bursts collide with digipeater relays on the one frequency, which is");
    println!("why 1980s operators used NET/ROM backbones instead of long digi chains");
    println!("(the very development the paper's §1 recounts).");
}
