//! E3 — §4.1: "Hosts on the Ethernet side expect fast response … the
//! system on the Ethernet side initially retransmits packets several
//! times before a response makes it back. This results in wasted
//! bandwidth … Since these retransmissions are queued at the gateway,
//! they delay other packets. Fortunately, many implementations of TCP
//! dynamically adjust their timeout values."
//!
//! An Ethernet host pushes a bulk transfer to the radio-side PC through
//! the gateway, once per retransmission policy: fixed RTOs of several
//! sizes (the naive implementations) and the adaptive Jacobson/Karn
//! policy. Reported per policy: segments, retransmissions, wasted
//! bytes, transfer time, goodput, learned RTO, and the gateway queue
//! high-water mark.

use apps::bulk::{BulkSender, BulkSink};
use bench::banner;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP, GW_RADIO_IP, PC_IP};
use netstack::icmp::IcmpMessage;
use netstack::tcp::{RtoPolicy, TcpConfig};
use sim::stats::render_table;
use sim::SimDuration;

const BYTES: usize = 20_000;

struct Outcome {
    segments: u64,
    rtx: u64,
    bytes_sent: u64,
    bytes_rtx: u64,
    duration_s: f64,
    goodput_bps: f64,
    final_rto_s: f64,
    srtt_s: f64,
    gw_queue_peak: usize,
    done: bool,
}

fn run(policy: RtoPolicy, seed: u64) -> Outcome {
    let mut s = paper_topology(PaperConfig::default(), seed);
    // Authorize the inbound direction (§4.3) before the transfer starts.
    let now = s.world.now;
    s.world.host_mut(s.pc).send_gate_message(
        now,
        GW_RADIO_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 14_400,
            auth: None,
        },
    );
    let sink = BulkSink::new(6000);
    let sink_report = sink.report();
    s.world.add_app(s.pc, Box::new(sink));
    let cfg = TcpConfig {
        rto: policy,
        ..TcpConfig::default()
    };
    let sender = BulkSender::new(PC_IP, 6000, BYTES)
        .with_tcp(cfg)
        .with_start_delay(SimDuration::from_secs(15));
    let report = sender.report();
    s.world.add_app(s.ether_host, Box::new(sender));
    s.world.run_for(SimDuration::from_secs(4 * 3600));

    let r = report.borrow();
    Outcome {
        segments: r.tcb.segments_sent,
        rtx: r.tcb.retransmissions,
        bytes_sent: r.tcb.bytes_sent,
        bytes_rtx: r.tcb.bytes_retransmitted,
        duration_s: r.duration().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
        goodput_bps: r.goodput_bps().unwrap_or(f64::NAN),
        final_rto_s: r.tcb.rto_secs,
        srtt_s: r.tcb.srtt_secs,
        gw_queue_peak: s.world.host(s.gw).input_queue_peak(),
        done: r.finished_at.is_some() && sink_report.borrow().bytes == BYTES,
    }
}

fn main() {
    banner(
        "E3",
        "fixed vs adaptive TCP retransmission over the gateway",
        "fast-side hosts with fixed timeouts waste bandwidth on needless \
         retransmissions; adaptive implementations learn the path (§4.1)",
    );
    println!("(20 kB transfer, Ethernet host → gateway → 1200 bit/s radio → PC)\n");

    let policies: Vec<(&str, RtoPolicy)> = vec![
        ("fixed 1.0s", RtoPolicy::Fixed(SimDuration::from_secs(1))),
        (
            "fixed 1.5s",
            RtoPolicy::Fixed(SimDuration::from_millis(1500)),
        ),
        ("fixed 3.0s", RtoPolicy::Fixed(SimDuration::from_secs(3))),
        ("fixed 6.0s", RtoPolicy::Fixed(SimDuration::from_secs(6))),
        ("adaptive", RtoPolicy::Adaptive),
    ];

    let mut rows = vec![vec![
        "policy".to_string(),
        "segs".to_string(),
        "rtx".to_string(),
        "wasted_%".to_string(),
        "time_s".to_string(),
        "goodput_bps".to_string(),
        "srtt_s".to_string(),
        "rto_s".to_string(),
        "gwq_peak".to_string(),
        "done".to_string(),
    ]];
    for (name, policy) in policies {
        let o = run(policy, 3001);
        let wasted = if o.bytes_sent > 0 {
            o.bytes_rtx as f64 / o.bytes_sent as f64 * 100.0
        } else {
            f64::NAN
        };
        rows.push(vec![
            name.to_string(),
            o.segments.to_string(),
            o.rtx.to_string(),
            format!("{wasted:.1}"),
            format!("{:.0}", o.duration_s),
            format!("{:.0}", o.goodput_bps),
            format!("{:.1}", o.srtt_s),
            format!("{:.1}", o.final_rto_s),
            o.gw_queue_peak.to_string(),
            o.done.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("expected shape: short fixed RTOs retransmit heavily (wasted bandwidth,");
    println!("deeper gateway queues, longer completion); the adaptive policy converges");
    println!("on a multi-second SRTT and stops retransmitting — \"when the system on");
    println!("the Ethernet side learns the correct timeout value, the frequency of");
    println!("unnecessary packet retransmissions is reduced.\"");
}
