//! E6 — §2.3/§5: "Telnet, FTP, and SMTP have all been successfully used
//! across the gateway." One scripted session of each, in both
//! directions, with durations.

use apps::ftp::{FileClient, FileServer};
use apps::smtp::{Mail, SmtpClient, SmtpServer};
use apps::telnet::{TelnetClient, TelnetServer};
use bench::banner;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP, GW_RADIO_IP, PC_IP};
use netstack::icmp::IcmpMessage;
use sim::stats::render_table;
use sim::SimDuration;

fn authorize(s: &mut gateway::scenario::PaperScenario) {
    let now = s.world.now;
    s.world.host_mut(s.pc).send_gate_message(
        now,
        GW_RADIO_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 14_400,
            auth: None,
        },
    );
}

fn main() {
    banner(
        "E6",
        "the paper's services across the gateway, both directions",
        "\"we have used the gateway for file transfer, electronic mail, and \
         remote login in both directions\" (§2.3)",
    );

    let mut rows = vec![vec![
        "service".to_string(),
        "direction".to_string(),
        "outcome".to_string(),
        "duration".to_string(),
    ]];

    // --- telnet, PC -> Ethernet host ---
    {
        let mut s = paper_topology(PaperConfig::default(), 6001);
        let server = TelnetServer::new(23, "vax2");
        s.world.add_app(s.ether_host, Box::new(server));
        let client = TelnetClient::standard_session(ETHER_HOST_IP, 23);
        let r = client.report();
        s.world.add_app(s.pc, Box::new(client));
        s.world.run_for(SimDuration::from_secs(1200));
        let rep = r.borrow();
        rows.push(vec![
            "telnet".into(),
            "radio -> ether".into(),
            if rep.done {
                "login+date+who+logout ok"
            } else {
                "FAILED"
            }
            .into(),
            rep.finished_at.map(|t| t.to_string()).unwrap_or("-".into()),
        ]);
    }

    // --- telnet, Ethernet host -> PC ---
    {
        let mut s = paper_topology(PaperConfig::default(), 6002);
        authorize(&mut s);
        let server = TelnetServer::new(23, "pc");
        s.world.add_app(s.pc, Box::new(server));
        let client = TelnetClient::standard_session(PC_IP, 23);
        let r = client.report();
        s.world.add_app(s.ether_host, Box::new(client));
        s.world.run_for(SimDuration::from_secs(1200));
        let rep = r.borrow();
        rows.push(vec![
            "telnet".into(),
            "ether -> radio".into(),
            if rep.done {
                "login+date+who+logout ok"
            } else {
                "FAILED"
            }
            .into(),
            rep.finished_at.map(|t| t.to_string()).unwrap_or("-".into()),
        ]);
    }

    // --- FTP-style file transfer, both directions ---
    for (dir, seed) in [("radio -> ether", 6003u64), ("ether -> radio", 6004)] {
        let mut s = paper_topology(PaperConfig::default(), seed);
        let (server_host, client_host, dst) = if dir.starts_with("radio") {
            (s.ether_host, s.pc, ETHER_HOST_IP)
        } else {
            authorize(&mut s);
            (s.pc, s.ether_host, PC_IP)
        };
        let server = FileServer::new(21, &[("paper.dvi", 6000)]);
        s.world.add_app(server_host, Box::new(server));
        let client = FileClient::new(dst, 21, "paper.dvi");
        let r = client.report();
        s.world.add_app(client_host, Box::new(client));
        s.world.run_for(SimDuration::from_secs(3600));
        let rep = r.borrow();
        rows.push(vec![
            "ftp get 6kB".into(),
            dir.into(),
            if rep.done && rep.intact {
                format!("{} B intact", rep.received)
            } else {
                format!("FAILED ({} B)", rep.received)
            },
            rep.duration().map(|d| d.to_string()).unwrap_or("-".into()),
        ]);
    }

    // --- SMTP mail, both directions ---
    for (dir, seed) in [("radio -> ether", 6005u64), ("ether -> radio", 6006)] {
        let mut s = paper_topology(PaperConfig::default(), seed);
        let (server_host, client_host, dst) = if dir.starts_with("radio") {
            (s.ether_host, s.pc, ETHER_HOST_IP)
        } else {
            authorize(&mut s);
            (s.pc, s.ether_host, PC_IP)
        };
        let server = SmtpServer::new(25, "mx");
        let mailbox = server.report();
        s.world.add_app(server_host, Box::new(server));
        let client = SmtpClient::new(
            dst,
            25,
            Mail {
                from: "<op@one.side>".into(),
                to: "<op@other.side>".into(),
                body: vec!["The gateway works.".into(), "73".into()],
            },
        );
        let r = client.report();
        s.world.add_app(client_host, Box::new(client));
        s.world.run_for(SimDuration::from_secs(1200));
        let rep = r.borrow();
        let delivered = rep.delivered && mailbox.borrow().mailbox.len() == 1;
        rows.push(vec![
            "smtp 1 msg".into(),
            dir.into(),
            if delivered {
                "delivered+queued ok"
            } else {
                "FAILED"
            }
            .into(),
            rep.finished_at.map(|t| t.to_string()).unwrap_or("-".into()),
        ]);
    }

    println!("{}", render_table(&rows));
    println!("expected shape: all six rows succeed; radio-side durations are tens of");
    println!("seconds to minutes, dominated by 1200 bit/s serialization (see E1).");
}
