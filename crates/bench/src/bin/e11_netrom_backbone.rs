//! E11 — §2.4's second future-work item, measured: "using NET/ROM to
//! pass IP traffic between gateways … the use of an existing, and
//! growing, point-to-point backbone in the same way Internet subnets are
//! connected via the ARPANET."
//!
//! A line of NET/ROM nodes on one channel (each hearing only its
//! neighbours) learns routes purely from NODES broadcasts; we measure
//! convergence time, IP delivery latency across the backbone, and the
//! broadcast overhead, as the backbone grows.

use ax25::addr::Ax25Addr;
use bench::banner;
use gateway::host::{HostConfig, RadioIfConfig};
use gateway::world::{ChanId, HostId, World};
use netrom::{NetRomConfig, NetRomRouter};
use netstack::ip::{Ipv4Packet, Proto};
use netstack::udp::UdpDatagram;
use radio::channel::StationId;
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use sim::stats::Sweep;
use sim::{Bandwidth, SimDuration, SimTime};
use std::net::Ipv4Addr;

fn radio_host(world: &mut World, chan: ChanId, name: &str, call: &str, ip: Ipv4Addr) -> HostId {
    let mut cfg = HostConfig::named(name);
    cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic(call),
        ip,
        prefix_len: 8,
    });
    let h = world.add_host(cfg);
    world.attach_radio(h, chan, 9600, RxMode::Promiscuous, MacConfig::default());
    h
}

struct Outcome {
    converged_at_s: f64,
    delivery_s: f64,
    delivered: bool,
    broadcasts: u64,
    forwards: u64,
}

/// Builds west + (n-2) relays + east in a line and measures.
fn run(nodes: usize, seed: u64) -> Outcome {
    assert!(nodes >= 2);
    let mut world = World::new(seed);
    let chan = world.add_channel(Bandwidth::RADIO_1200);
    let mut hosts = Vec::new();
    let mut calls = Vec::new();
    for i in 0..nodes {
        let call = if i == 0 {
            "WGATE".to_string()
        } else if i == nodes - 1 {
            "EGATE".to_string()
        } else {
            format!("R{i}")
        };
        let ip = Ipv4Addr::new(44, 40, (i / 250) as u8, (i % 250 + 1) as u8);
        hosts.push(radio_host(&mut world, chan, &call, &call, ip));
        calls.push(call);
    }
    // Line hearing: only adjacent stations hear each other.
    let c = world.channel_mut(chan);
    for i in 0..nodes {
        for j in 0..nodes {
            if i != j && i.abs_diff(j) > 1 {
                c.set_hears(StationId(i), StationId(j), false);
            }
        }
    }
    let mut reports = Vec::new();
    let mut west_sendq = None;
    for (i, h) in hosts.iter().enumerate() {
        let mut cfg = NetRomConfig::new(Ax25Addr::parse_or_panic(&calls[i]), &calls[i]);
        cfg.broadcast_interval = SimDuration::from_secs(60);
        let router = NetRomRouter::new(cfg);
        reports.push(router.report());
        if i == 0 {
            west_sendq = Some(router.send_queue());
        }
        world.add_app(*h, Box::new(router));
    }
    let west_sendq = west_sendq.expect("west router");

    // Run until the west gateway knows EGATE (or give up).
    let mut converged_at = None;
    for _ in 0..240 {
        world.run_for(SimDuration::from_secs(10));
        if reports[0]
            .borrow()
            .destinations
            .contains(&"EGATE".to_string())
        {
            converged_at = Some(world.now);
            break;
        }
    }
    let Some(converged_at) = converged_at else {
        return Outcome {
            converged_at_s: f64::NAN,
            delivery_s: f64::NAN,
            delivered: false,
            broadcasts: 0,
            forwards: 0,
        };
    };

    // Ship one IP/UDP datagram west → east.
    let east = *hosts.last().expect("nodes >= 2");
    let east_ip = Ipv4Addr::new(44, 40, 0, nodes as u8);
    let west_ip = Ipv4Addr::new(44, 40, 0, 1);
    let udp = world.host_mut(east).stack.udp_bind(4000).expect("bind");
    let dg = UdpDatagram {
        src_port: 1,
        dst_port: 4000,
        payload: vec![0x42; 64],
    };
    let ip = Ipv4Packet::new(west_ip, east_ip, Proto::Udp, dg.encode(west_ip, east_ip));
    let sent_at = world.now;
    west_sendq
        .borrow_mut()
        .push((Ax25Addr::parse_or_panic("EGATE"), ip.encode()));
    let mut delivered_at = None;
    for _ in 0..120 {
        world.run_for(SimDuration::from_secs(5));
        if world.host_mut(east).stack.udp_recv(udp).is_some() {
            delivered_at = Some(world.now);
            break;
        }
    }
    let broadcasts: u64 = reports
        .iter()
        .map(|r| r.borrow().stats.broadcasts_sent)
        .sum();
    let forwards: u64 = reports.iter().map(|r| r.borrow().stats.forwarded).sum();
    Outcome {
        converged_at_s: converged_at.as_secs_f64(),
        delivery_s: delivered_at
            .map(|t| t.saturating_since(sent_at).as_secs_f64())
            .unwrap_or(f64::NAN),
        delivered: delivered_at.is_some(),
        broadcasts,
        forwards,
    }
}

fn main() {
    banner(
        "E11",
        "IP between gateways over a NET/ROM backbone (§2.4 future work)",
        "\"work is also proceeding on using NET/ROM to pass IP traffic \
         between gateways\" — here it runs: routes learned from NODES \
         broadcasts alone, then IP carried across the backbone",
    );
    println!("(line of N nodes, 1200 bit/s, 60 s broadcast interval, no static routes)\n");

    let mut sweep = Sweep::new("backbone_nodes");
    for nodes in [2usize, 3, 4, 5, 6] {
        let o = run(nodes, 11_000 + nodes as u64);
        sweep
            .row(nodes as f64)
            .set("converged_s", o.converged_at_s)
            .set("ip_delivery_s", o.delivery_s)
            .set("delivered", f64::from(u8::from(o.delivered)))
            .set("bcasts_total", o.broadcasts as f64)
            .set("relay_forwards", o.forwards as f64);
        let _ = SimTime::ZERO;
    }
    println!("{}", sweep.render());
    println!("expected shape: convergence takes roughly one broadcast interval per");
    println!("hop of distance (knowledge ripples outward one NODES cycle at a time);");
    println!("delivery latency grows with hop count; each added relay contributes its");
    println!("own broadcast load. This is the ARPANET-style backbone the paper wanted.");
}
