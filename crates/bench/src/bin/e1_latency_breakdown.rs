//! E1 — §3 ¶1: "Because the link speed is only 1200 bits per second, the
//! transmission time is the dominant factor in determining throughput
//! and latency."
//!
//! A 64-byte ping crosses the gateway at several radio bit rates. For
//! each rate we report the measured warm-path RTT, the analytically
//! computed radio serialization time for the exchange, and its share of
//! the RTT. At 1200 bit/s the radio transmission time should dominate
//! (the paper's claim); as the rate climbs, the share must fall.

use apps::ping::Pinger;
use bench::banner;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use sim::stats::Sweep;
use sim::{Bandwidth, SimDuration};

const PAYLOAD: usize = 64;

fn main() {
    banner(
        "E1",
        "latency breakdown vs radio bit rate",
        "\"the transmission time is the dominant factor\" at 1200 bit/s (§3)",
    );

    // On-air frame: ICMP(8+64) + IP(20) in AX.25 UI (16B hdr+pid) + FCS.
    let frame_bytes = 8 + PAYLOAD + 20 + 16 + 2;

    let mut sweep = Sweep::new("bit/s");
    for rate in [1200u64, 2400, 4800, 9600, 56_000] {
        let cfg = PaperConfig {
            radio_rate: Bandwidth::bps(rate),
            acl: false,
            ..PaperConfig::default()
        };
        let mut s = paper_topology(cfg.clone(), 1000 + rate);
        let pinger = Pinger::new(ETHER_HOST_IP, 1, 5, SimDuration::from_secs(30), PAYLOAD);
        let report = pinger.report();
        s.world.add_app(s.pc, Box::new(pinger));
        s.world.run_for(SimDuration::from_secs(300));

        let mut r = report.borrow_mut();
        assert_eq!(r.received, 5, "at {rate} bit/s");
        let warm = r.rtts.min().expect("5 samples");
        // Request and reply each serialize once onto the radio.
        let radio_tx = Bandwidth::bps(rate).time_for_bytes(frame_bytes) * 2;
        let keyup = cfg.mac.tx_delay * 2 + cfg.mac.tx_tail * 2;
        let share = radio_tx.as_secs_f64() / warm.as_secs_f64() * 100.0;
        let total_share = (radio_tx + keyup).as_secs_f64() / warm.as_secs_f64() * 100.0;
        sweep
            .row(rate as f64)
            .set("rtt_ms", warm.as_millis_f64())
            .set("radio_tx_ms", radio_tx.as_millis_f64())
            .set("keyup_ms", keyup.as_millis_f64())
            .set("tx_share_%", share)
            .set("radio_total_%", total_share);
    }
    println!("{}", sweep.render());
    println!("expected shape: at 1200 bit/s the radio (serialization + keyup) is the");
    println!("overwhelming share of the RTT — the paper's claim — and pure serialization");
    println!("alone is the single largest term; by 56 kbit/s both are minor.");
}
