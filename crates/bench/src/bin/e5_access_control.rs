//! E5 — §4.3: the access-control table. A scripted sequence walks every
//! rule in the paper's design and prints the gateway's own counters
//! after each phase.
//!
//! The table is the filter engine's soft-state gate (DESIGN.md §13):
//! the legacy standalone ACL was folded into the engine, and this
//! experiment's columns read the engine's counters — `denied` counts
//! every deny verdict (cached ones included), `openings` counts
//! amateur-side opens plus refreshes, exactly what the old table called
//! an "opening".

use apps::ping::Pinger;
use bench::banner;
use filter::{FilterConfig, GateConfig};
use gateway::scenario::{
    paper_topology, PaperConfig, ETHER_HOST_IP, GW_ETHER_IP, GW_RADIO_IP, PC_IP,
};
use netstack::icmp::{GateAuth, IcmpMessage};
use sim::stats::render_table;
use sim::SimDuration;

fn main() {
    banner(
        "E5",
        "the §4.3 access-control table, end to end",
        "\"any communication must be initiated by licensed amateurs\": \
         soft-state entries with TTL, plus authenticated ICMP control",
    );

    // Short TTL so the expiry phase fits the run; one control operator.
    let filter_cfg = FilterConfig {
        gate: Some(GateConfig {
            entry_ttl: SimDuration::from_secs(180),
            operators: vec![("N7AKR".to_string(), "seattle".to_string())],
            ..GateConfig::default()
        }),
        ..FilterConfig::permissive()
    };
    let cfg = PaperConfig {
        filter: Some(filter_cfg),
        ..PaperConfig::default()
    };
    let mut s = paper_topology(cfg, 5000);

    let mut rows = vec![vec![
        "phase".to_string(),
        "inbound ok".to_string(),
        "denied".to_string(),
        "openings".to_string(),
        "forced".to_string(),
        "auth_fail".to_string(),
    ]];
    let mut phase = |s: &mut gateway::scenario::PaperScenario, name: &str, ok: u32| {
        let st = s.world.host(s.gw).filter_stats().unwrap();
        rows.push(vec![
            name.to_string(),
            ok.to_string(),
            st.denied.to_string(),
            (st.gate_opened + st.gate_refreshed).to_string(),
            st.gate_closed.to_string(),
            st.auth_failures.to_string(),
        ]);
    };

    // Phase 1: unsolicited inbound — must be denied.
    let p = Pinger::new(PC_IP, 1, 3, SimDuration::from_secs(15), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    phase(&mut s, "1 unsolicited inbound", r.borrow().received);

    // Phase 2: the amateur initiates — the return path opens.
    let now = s.world.now;
    s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 2, 1, 16);
    s.world.run_for(SimDuration::from_secs(30));
    let p = Pinger::new(PC_IP, 3, 2, SimDuration::from_secs(15), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    phase(&mut s, "2 after amateur initiates", r.borrow().received);

    // Phase 3: TTL expiry with no refresh — denied again.
    s.world.run_for(SimDuration::from_secs(200));
    let p = Pinger::new(PC_IP, 4, 2, SimDuration::from_secs(15), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    phase(&mut s, "3 after TTL expiry", r.borrow().received);

    // Phase 4: the operator re-opens by message, then force-closes.
    let now = s.world.now;
    s.world.host_mut(s.pc).send_gate_message(
        now,
        GW_RADIO_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 600,
            auth: None,
        },
    );
    s.world.run_for(SimDuration::from_secs(30));
    let p = Pinger::new(PC_IP, 5, 1, SimDuration::from_secs(15), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    phase(&mut s, "4 GateOpen from amateur", r.borrow().received);

    let now = s.world.now;
    s.world.host_mut(s.pc).send_gate_message(
        now,
        GW_RADIO_IP,
        IcmpMessage::GateClose {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            auth: None,
        },
    );
    s.world.run_for(SimDuration::from_secs(30));
    let p = Pinger::new(PC_IP, 6, 2, SimDuration::from_secs(15), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    phase(&mut s, "5 GateClose (control op)", r.borrow().received);

    // Phase 6: foreign-side GateOpen without, then with, credentials.
    let now = s.world.now;
    s.world.host_mut(s.ether_host).send_gate_message(
        now,
        GW_ETHER_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 600,
            auth: None,
        },
    );
    s.world.run_for(SimDuration::from_secs(10));
    let p = Pinger::new(PC_IP, 7, 1, SimDuration::from_secs(15), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    phase(&mut s, "6 foreign open, no auth", r.borrow().received);

    let now = s.world.now;
    s.world.host_mut(s.ether_host).send_gate_message(
        now,
        GW_ETHER_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 600,
            auth: Some(GateAuth {
                callsign: "N7AKR".to_string(),
                password: "seattle".to_string(),
            }),
        },
    );
    s.world.run_for(SimDuration::from_secs(10));
    let p = Pinger::new(PC_IP, 8, 1, SimDuration::from_secs(15), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    phase(&mut s, "7 foreign open, authed", r.borrow().received);

    println!("{}", render_table(&rows));
    println!("expected shape: inbound passes ONLY in phases 2, 4, and 7 — after");
    println!("amateur initiation, an amateur-side GateOpen, or an authenticated");
    println!("foreign-side GateOpen; denials and auth failures accumulate otherwise.");
}
