//! E17 — §4.3 at hostile scale: a spoofed-source flood plus control-plane
//! churn against the gateway while it carries E2-style background load
//! and a legitimate bulk TCP transfer.
//!
//! Three runs:
//!
//! * `baseline`  — filter on, nobody attacking: the reference goodput;
//! * `no filter` — a spoofed UDP flood from the Ethernet side is
//!   forwarded onto the 1200 bit/s radio channel, crushing the transfer
//!   (what an unpoliced 1988 gateway would do);
//! * `filtered`  — the compiled engine drops the flood at the radio
//!   output hook, before ARP and before the channel, while GateOpen/
//!   GateClose churn keeps invalidating the decision cache.
//!
//! Verdict (the ISSUE 9 acceptance bar): filtered goodput within ±5% of
//! baseline, flood ≥99% dropped.

use apps::bulk::{BulkSender, BulkSink};
use bench::banner;
use ether::MacAddr;
use filter::FilterConfig;
use gateway::cpu::CpuConfig;
use gateway::host::EtherIfConfig;
use gateway::scenario::{
    paper_topology, PaperConfig, ETHER_HOST_IP, GW_ETHER_IP, GW_RADIO_IP, PC_IP,
};
use gateway::world::App;
use gateway::{Host, HostConfig};
use netstack::icmp::IcmpMessage;
use netstack::ip::{Ipv4Packet, Proto};
use netstack::route::Prefix;
use radio::csma::MacConfig;
use radio::traffic::BeaconConfig;
use sim::stats::render_table;
use sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

const BULK_PORT: u16 = 2100;
const BULK_BYTES: usize = 8 * 1024;
const HORIZON_SECS: u64 = 900;
/// One spoofed datagram every 200 ms ≈ 2× the radio channel's capacity
/// once AX.25 overhead is added — enough to bury the transfer.
const FLOOD_INTERVAL: SimDuration = SimDuration::from_millis(200);

/// The attacker: injects UDP datagrams with rotating spoofed sources at
/// the Ethernet host, which dutifully forwards them toward the amateur
/// net. None of the sources ever initiated contact, so a §4.3 gateway
/// must refuse every one.
struct Flood {
    next: SimTime,
    state: u64,
    sent: Rc<RefCell<u64>>,
}

impl Flood {
    fn new(start: SimTime) -> Flood {
        Flood {
            next: start,
            state: 0xE17,
            sent: Rc::new(RefCell::new(0)),
        }
    }

    fn sent(&self) -> Rc<RefCell<u64>> {
        Rc::clone(&self.sent)
    }
}

impl App for Flood {
    fn poll(&mut self, now: SimTime, host: &mut Host) {
        while self.next <= now {
            self.state = self
                .state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 198.18.0.0/16 (benchmarking range): never amateur, never us.
            let src = Ipv4Addr::from(0xC612_0000 | (self.state >> 32) as u32 & 0xFFFF);
            let mut payload = vec![0u8; 20];
            let udp_len = payload.len() as u16;
            payload[0..2].copy_from_slice(&4242u16.to_be_bytes());
            payload[2..4].copy_from_slice(&2100u16.to_be_bytes());
            payload[4..6].copy_from_slice(&udp_len.to_be_bytes());
            host.inject_ip(
                now,
                Ipv4Packet::new(src, PC_IP, Proto::Udp, payload).encode(),
            );
            *self.sent.borrow_mut() += 1;
            self.next += FLOOD_INTERVAL;
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        Some(self.next)
    }
}

#[derive(Default)]
struct Outcome {
    goodput_bps: f64,
    completed: bool,
    sink_bytes: usize,
    flood_sent: u64,
    flood_dropped: u64,
    drop_pct: f64,
    radio_tx: u64,
    cache_hits: u64,
    cache_misses: u64,
    generation: u32,
    gate_denied: u64,
}

fn run(flood: bool, filtered: bool) -> Outcome {
    let cfg = PaperConfig {
        acl: false,
        filter: filtered.then(FilterConfig::gateway),
        ..PaperConfig::default()
    };
    let mut s = paper_topology(cfg, 1701);

    // E2-style background chatter on the channel.
    for i in 0..2 {
        s.world.add_beacon(
            s.chan,
            BeaconConfig {
                from: ax25::addr::Ax25Addr::parse_or_panic(&format!("BG{}", i + 1)),
                to: ax25::addr::Ax25Addr::parse_or_panic("CHAT"),
                frame_len: 64,
                mean_interval: SimDuration::from_secs(45),
                start: SimTime::ZERO,
                mac: MacConfig::default(),
            },
        );
    }

    // The legitimate transfer: PC (amateur) pushes a file out — §4.3's
    // "initiated by a licensed amateur", which also opens the gate for
    // the returning ACK stream.
    let sink = BulkSink::new(BULK_PORT);
    let sink_report = sink.report();
    s.world.add_app(s.ether_host, Box::new(sink));
    let sender = BulkSender::new(ETHER_HOST_IP, BULK_PORT, BULK_BYTES)
        .with_start_delay(SimDuration::from_secs(5));
    let send_report = sender.report();
    s.world.add_app(s.pc, Box::new(sender));

    let flood_sent = if flood {
        // A separate attacker machine on the department Ethernet, so the
        // injection cost never lands on the legitimate sink. It routes
        // its forged datagrams toward the amateur net, so its stack must
        // be willing to forward them.
        let mut atk_cfg = HostConfig::named("attacker");
        atk_cfg.cpu = CpuConfig::free();
        atk_cfg.ether = Some(EtherIfConfig {
            mac: MacAddr::local(66),
            ip: Ipv4Addr::new(128, 95, 1, 66),
            prefix_len: 24,
        });
        let atk = s.world.add_host(atk_cfg);
        s.world.attach_ether(atk, s.seg);
        s.world.host_mut(atk).stack.set_forwarding(true);
        let atk_if = s.world.host(atk).ether_iface().expect("attacker ether");
        s.world
            .host_mut(atk)
            .stack
            .routes_mut()
            .add(Prefix::amprnet(), Some(GW_ETHER_IP), atk_if);
        let f = Flood::new(SimTime::ZERO + SimDuration::from_secs(10));
        let sent = f.sent();
        s.world.add_app(atk, Box::new(f));
        Some(sent)
    } else {
        None
    };

    // Control-plane churn: the PC's operator keeps opening and closing a
    // pairing for an unrelated station. Each message that lands bumps
    // the engine's generation, so cached flood denials keep dying and
    // the flood keeps paying the full walk — the hostile case the
    // decision cache must absorb without letting anything through.
    let churn_am = Ipv4Addr::new(44, 24, 0, 77);
    let churn_fo = Ipv4Addr::new(198, 18, 0, 1);
    let mut open = true;
    for _ in 0..(HORIZON_SECS / 20) {
        s.world.run_for(SimDuration::from_secs(20));
        let now = s.world.now;
        let msg = if open {
            IcmpMessage::GateOpen {
                amateur: churn_am,
                foreign: churn_fo,
                ttl_secs: 60,
                auth: None,
            }
        } else {
            IcmpMessage::GateClose {
                amateur: churn_am,
                foreign: churn_fo,
                auth: None,
            }
        };
        s.world
            .host_mut(s.pc)
            .send_gate_message(now, GW_RADIO_IP, msg);
        open = !open;
    }

    let sink_bytes = sink_report.borrow().bytes;
    let send = send_report.borrow();
    let completed = send.finished_at.is_some();
    // Completed transfers report their own goodput; a crushed transfer
    // is scored by what trickled into the sink over the whole horizon.
    let goodput = send
        .goodput_bps()
        .unwrap_or(sink_bytes as f64 * 8.0 / HORIZON_SECS as f64);
    let gw = s.world.host(s.gw);
    let drops = gw
        .pr_driver()
        .map(|d| d.stats().filter_drop_out + d.stats().filter_drop_in)
        .unwrap_or(0);
    let fstats = gw.filter_stats().unwrap_or_default();
    let sent = flood_sent.map_or(0, |c| *c.borrow());
    Outcome {
        goodput_bps: goodput,
        completed,
        sink_bytes,
        flood_sent: sent,
        flood_dropped: drops,
        drop_pct: if sent > 0 {
            drops as f64 * 100.0 / sent as f64
        } else {
            0.0
        },
        radio_tx: s.world.channel(s.chan).stats().transmissions,
        cache_hits: fstats.cache_hits,
        cache_misses: fstats.cache_misses,
        generation: gw.filter_engine().map_or(0, |e| e.borrow().generation()),
        gate_denied: fstats.gate_denied,
    }
}

fn main() {
    banner(
        "E17",
        "spoofed-source flood + control churn vs the compiled filter engine",
        "§4.3 at hostile scale: the gate must refuse what no amateur invited, \
         at line rate, without touching what one did",
    );
    println!(
        "({BULK_BYTES}-byte bulk TCP PC→vax2, 2 background beacons, \
         spoofed UDP flood every {:.0} ms, GateOpen/GateClose churn every 20 s, \
         {HORIZON_SECS} s horizon)\n",
        FLOOD_INTERVAL.as_secs_f64() * 1000.0
    );

    let baseline = run(false, true);
    let unprotected = run(true, false);
    let protected = run(true, true);

    let mut rows = vec![vec![
        "config".to_string(),
        "goodput_bps".to_string(),
        "done".to_string(),
        "sink_bytes".to_string(),
        "flood_sent".to_string(),
        "flood_dropped".to_string(),
        "drop_%".to_string(),
        "radio_tx".to_string(),
        "cache_hit".to_string(),
        "cache_miss".to_string(),
        "gate_denied".to_string(),
        "cache_gen".to_string(),
    ]];
    for (name, o) in [
        ("baseline (no flood)", &baseline),
        ("flood, no filter", &unprotected),
        ("flood + filter", &protected),
    ] {
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", o.goodput_bps),
            if o.completed { "yes" } else { "NO" }.to_string(),
            o.sink_bytes.to_string(),
            o.flood_sent.to_string(),
            o.flood_dropped.to_string(),
            format!("{:.1}", o.drop_pct),
            o.radio_tx.to_string(),
            o.cache_hits.to_string(),
            o.cache_misses.to_string(),
            o.gate_denied.to_string(),
            o.generation.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));

    let delta = (protected.goodput_bps / baseline.goodput_bps - 1.0) * 100.0;
    println!("verdict:");
    println!(
        " * filtered goodput {:.0} bps vs baseline {:.0} bps ({delta:+.1}%) — bar: ±5%",
        protected.goodput_bps, baseline.goodput_bps
    );
    println!(
        " * flood drop rate {:.1}% ({} of {}) — bar: ≥99%",
        protected.drop_pct, protected.flood_dropped, protected.flood_sent
    );
    println!("expected shape:");
    println!(" * 'flood, no filter' forwards every spoofed datagram onto the 1200 bit/s");
    println!("   channel (radio_tx balloons) and the transfer never finishes;");
    println!(" * 'flood + filter' drops the flood at the radio output hook — before ARP,");
    println!("   before the channel — so radio_tx and goodput match the baseline;");
    println!(" * cache_gen counts the churn: every GateOpen/GateClose invalidates the");
    println!("   decision cache, the next flood packet per source pays the full walk");
    println!("   (cache_miss), and the steady flood still dies on cache hits between.");
}
