//! E16 — load-model-driven socket-app fleets on the city-scale engine.
//!
//! E15 proved the sharded engine bit-equivalent to the reference stepper
//! under scripted pings. This experiment raises the stakes: the traffic
//! is now a *fleet* — load-model-generated typist/FTP/DNS/echo sessions
//! (crates/workload) whose every connection crosses a radio island
//! boundary through the IPIP tunnels (§4.2), i.e. the cross-shard path.
//!
//! Two phases, both deterministic (the printed tables are byte-stable;
//! wall-clock numbers appear only under `E16_BENCH=1`):
//!
//! 1. **Equivalence under load**: one fleet, run on the reference
//!    stepper and on the sharded engine at 1, 2, and 4 workers. The FNV
//!    event digest AND the rendered telemetry report (per-class fleet
//!    table + server totals) must be bit-identical across all four runs
//!    — the report is a pure function of the simulation, so a single
//!    reordered packet anywhere in the city shows up here.
//! 2. **Knee of the curve**: 3 mixes x 3 intensities on the sharded
//!    engine. Closed-loop think times self-limit; the open-loop column
//!    pushes islands past saturation — completion counts stall, p95
//!    latency and timeouts climb, and channel utilization pins. This is
//!    the "as the number of users of this network grows" (§5) sweep.
//!
//! Knobs: `E16_GATEWAYS` (default 250), `E16_HOSTS` (default 40 per
//! island; 250x40 = 10,251 simulated machines), `E16_SECONDS` (default
//! 120 simulated), `E16_CLIENTS` (clients per island, default 1),
//! `E16_WORKERS` (sweep worker count, default 4), `E16_SWEEP=0` to skip
//! phase 2, `E16_BENCH=1` for ns/iter lines (scripts/bench.sh).

use bench::banner;
use gateway::scenario::{self, MeshNet};
use sim::stats::render_table;
use sim::{SimDuration, SimTime};
use std::time::Instant;
use workload::load::{Arrival, Mix, Pacing};
use workload::report::EngineTelemetry;
use workload::{deploy, Fleet, FleetSpec};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fnv(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// FNV-1a over the event log — the digest the `shard_equivalence` and
/// `workload` determinism suites pin.
fn event_digest(world: &mut gateway::World) -> (u64, usize) {
    let events = world.take_events();
    let n = events.len();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (h, t, e) in events {
        for b in format!("{h:?} {t} {e:?}\n").bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    (hash, n)
}

struct Cfg {
    gateways: usize,
    hosts: usize,
    secs: u64,
    clients: usize,
}

fn base_spec(cfg: &Cfg) -> FleetSpec {
    FleetSpec {
        seed: 1988,
        clients_per_island: cfg.clients,
        sessions_per_client: 3,
        pacing: Pacing::Closed(Arrival::Poisson(SimDuration::from_secs(20))),
        mix: Mix::balanced(),
        start_window: SimDuration::from_secs(10),
        session_timeout: SimDuration::from_secs(60),
        ..FleetSpec::default()
    }
}

fn build(cfg: &Cfg, spec: &FleetSpec) -> (MeshNet, Fleet) {
    let mut m = scenario::mesh(cfg.gateways, cfg.hosts, spec.seed);
    let fleet = deploy(&mut m, spec);
    (m, fleet)
}

/// One full run; returns (event digest, events, report, fleet, telemetry).
fn run(
    cfg: &Cfg,
    spec: &FleetSpec,
    workers: Option<usize>,
) -> (
    u64,
    usize,
    String,
    Fleet,
    EngineTelemetry,
    std::time::Duration,
) {
    let (mut m, fleet) = build(cfg, spec);
    let t0 = Instant::now();
    match workers {
        None => m
            .world
            .run_until_reference(SimTime::from_millis(cfg.secs * 1000)),
        Some(n) => {
            m.world.set_workers(n);
            m.world.run_for(SimDuration::from_secs(cfg.secs));
        }
    }
    let wall = t0.elapsed();
    let (digest, events) = event_digest(&mut m.world);
    let span = SimDuration::from_secs(cfg.secs);
    let report = format!("{}\n{}", fleet.class_table(span), fleet.server_table());
    let telemetry = EngineTelemetry::gather(&m);
    (digest, events, report, fleet, telemetry, wall)
}

fn main() {
    let cfg = Cfg {
        gateways: env_usize("E16_GATEWAYS", 250),
        hosts: env_usize("E16_HOSTS", 40),
        secs: env_usize("E16_SECONDS", 120) as u64,
        clients: env_usize("E16_CLIENTS", 1),
    };
    let sweep_workers = env_usize("E16_WORKERS", 4);
    let do_sweep = env_usize("E16_SWEEP", 1) == 1;
    let bench_mode = std::env::var("E16_BENCH").is_ok_and(|v| v == "1");

    banner(
        "E16",
        "load-model fleets: mixed socket-app traffic on the sharded engine",
        "the city under load — generated typist/FTP/DNS/echo sessions cross \
         every island boundary; the sharded engine stays bit-equivalent to \
         the reference, and the telemetry layer finds the knee of the curve",
    );
    println!(
        "({} islands x {} stations = {} simulated machines, {} client(s)/island, {} s simulated)\n",
        cfg.gateways,
        cfg.hosts + 1,
        cfg.gateways * (cfg.hosts + 1) + 1,
        cfg.clients,
        cfg.secs,
    );

    // --- Phase 1: equivalence under fleet load --------------------------
    let spec = base_spec(&cfg);
    let mut rows = vec![vec![
        "engine".to_string(),
        "workers".to_string(),
        "events".to_string(),
        "sessions done".to_string(),
        "event digest".to_string(),
        "report fnv".to_string(),
    ]];
    let mut digests = Vec::new();
    let mut reports = Vec::new();
    let mut walls = Vec::new();

    let runs: [(String, Option<usize>); 4] = [
        ("reference".into(), None),
        ("sharded_1w".into(), Some(1)),
        ("sharded_2w".into(), Some(2)),
        ("sharded_4w".into(), Some(4)),
    ];
    let mut first_report = String::new();
    let mut first_telemetry = None;
    for (name, workers) in runs {
        let (digest, events, report, fleet, telemetry, wall) = run(&cfg, &spec, workers);
        if workers.is_some() {
            let mb = m_stats(&telemetry);
            assert!(mb.0 > 0, "fleet traffic must cross shards");
            assert_eq!(mb.0, mb.1, "every cross-shard hand-off is consumed");
        }
        rows.push(vec![
            name.clone(),
            workers.map_or("-".into(), |w| w.to_string()),
            events.to_string(),
            fleet.completed().to_string(),
            format!("{digest:016x}"),
            format!("{:016x}", fnv(report.bytes())),
        ]);
        walls.push((name, wall));
        digests.push(digest);
        if first_report.is_empty() {
            first_report = report.clone();
            first_telemetry = Some(telemetry);
        }
        reports.push(report);
    }
    println!("{}", render_table(&rows));

    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "event digest mismatch across engines: {digests:x?}"
    );
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "rendered report mismatch across engines"
    );
    println!(
        "\nall {} event digests AND rendered reports bit-identical across the\n\
         reference stepper and every sharded worker count (DESIGN.md §12).\n",
        digests.len()
    );
    println!("fleet report (identical on every engine):\n{first_report}");
    if let Some(t) = first_telemetry {
        println!("engine telemetry (reference run):\n{}", t.table());
    }

    // --- Phase 2: knee of the curve --------------------------------------
    if do_sweep {
        let mixes = [Mix::interactive(), Mix::bulk(), Mix::resolve()];
        let intensities: [(&str, Pacing); 3] = [
            (
                "light",
                Pacing::Closed(Arrival::Poisson(SimDuration::from_secs(45))),
            ),
            (
                "steady",
                Pacing::Closed(Arrival::Poisson(SimDuration::from_secs(12))),
            ),
            (
                "overload",
                Pacing::Open(Arrival::Poisson(SimDuration::from_secs(15))),
            ),
        ];
        let mut sweep = vec![vec![
            "mix".to_string(),
            "intensity".to_string(),
            "started".to_string(),
            "done".to_string(),
            "t/o".to_string(),
            "err".to_string(),
            "goodput B/s".to_string(),
            "p50 ms".to_string(),
            "p95 ms".to_string(),
            "p99 ms".to_string(),
            "util %".to_string(),
            "offered %".to_string(),
        ]];
        for mix in &mixes {
            for (label, pacing) in &intensities {
                let spec = FleetSpec {
                    mix: mix.clone(),
                    pacing: *pacing,
                    ..base_spec(&cfg)
                };
                let (_, _, _, fleet, telemetry, wall) = run(&cfg, &spec, Some(sweep_workers));
                walls.push((format!("sweep_{}_{label}", mix.name), wall));
                let merged = fleet.merged();
                let mut total = workload::report::FlowRecorder::new();
                for r in &merged {
                    total.merge(r);
                }
                let span = SimDuration::from_secs(cfg.secs).as_secs_f64();
                sweep.push(vec![
                    mix.name.to_string(),
                    label.to_string(),
                    total.started.to_string(),
                    total.completed.to_string(),
                    total.timeouts.to_string(),
                    total.errors.to_string(),
                    format!("{:.1}", total.goodput_bytes as f64 / span),
                    q_ms(total.latency.p50()),
                    q_ms(total.latency.p95()),
                    q_ms(total.latency.p99()),
                    format!("{:.1}", telemetry.chan_util_mean),
                    format!("{:.1}", telemetry.chan_offered_mean),
                ]);
            }
        }
        println!(
            "\nknee of the curve ({sweep_workers} workers; open-loop overload pushes past it):\n"
        );
        println!("{}", render_table(&sweep));
    }

    // --- Bench mode: wall clock ------------------------------------------
    if bench_mode {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!("\nwall-clock (host machine: {cores} core(s)):");
        for (name, wall) in &walls {
            let ns = wall.as_nanos();
            println!(
                "e16/city{}x{}_{}s_{name} ... bench: {ns} ns/iter",
                cfg.gateways, cfg.hosts, cfg.secs
            );
        }
    }
}

fn q_ms(us: Option<u64>) -> String {
    match us {
        Some(us) => format!("{:.1}", us as f64 / 1_000.0),
        None => "-".into(),
    }
}

fn m_stats(t: &EngineTelemetry) -> (u64, u64) {
    (t.mailboxes.pushed, t.mailboxes.popped)
}
