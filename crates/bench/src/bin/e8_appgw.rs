//! E8 — §2.4's application-layer gateway, measured: a non-IP AX.25
//! terminal user logs into an Internet telnet host through the gateway's
//! user-space bridge, alongside an IP user doing the same session, so
//! the overhead of the two approaches can be compared.

use apps::ax25chat::TerminalUser;
use apps::telnet::{TelnetClient, TelnetServer};
use ax25::addr::Ax25Addr;
use bench::banner;
use gateway::appgw::AppGateway;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use sim::stats::render_table;
use sim::SimDuration;

fn main() {
    banner(
        "E8",
        "the application-layer gateway for non-IP users (§2.4)",
        "\"a user program can then read from this line, and maintain the state \
         required to keep track of AX.25 level connections\"",
    );

    // --- The non-IP path: AX.25 terminal -> appgw -> TCP telnet ---
    let mut s = paper_topology(PaperConfig::default(), 8001);
    let server = TelnetServer::new(23, "vax2");
    s.world.add_app(s.ether_host, Box::new(server));
    let gw_call = s.world.host(s.gw).callsign().unwrap();
    let appgw = AppGateway::new(gw_call, (ETHER_HOST_IP, 23));
    let gw_report = appgw.report_handle();
    s.world.add_app(s.gw, Box::new(appgw));
    let user = TerminalUser::new(
        Ax25Addr::parse_or_panic("KB7DZ"),
        gw_call,
        vec![
            ("login: ", "bcn\r"),
            ("Password:", "radio\r"),
            ("% ", "date\r"),
            ("% ", "who\r"),
            ("% ", "logout\r"),
        ],
    );
    let user_report = user.report();
    let start = s.world.now;
    s.world.add_app(s.pc, Box::new(user));
    s.world.run_for(SimDuration::from_secs(1800));
    let ax25_done = user_report.borrow().done;
    let ax25_time = s
        .world
        .events()
        .iter()
        .map(|(_, t, _)| *t)
        .max()
        .unwrap_or(start);
    let ax25_radio_tx = s.world.channel(s.chan).stats().transmissions;
    let g = gw_report.borrow();
    let (to_tcp, to_radio, sessions) = (g.bytes_to_tcp, g.bytes_to_radio, g.sessions_accepted);
    drop(g);
    let pc_ip_frames = s.world.host(s.pc).pr_driver().unwrap().stats().ip_in;

    // --- The IP path: the same session via TCP/IP from the PC ---
    let mut s = paper_topology(PaperConfig::default(), 8002);
    let server = TelnetServer::new(23, "vax2");
    s.world.add_app(s.ether_host, Box::new(server));
    let client = TelnetClient::standard_session(ETHER_HOST_IP, 23);
    let client_report = client.report();
    s.world.add_app(s.pc, Box::new(client));
    s.world.run_for(SimDuration::from_secs(1800));
    let ip_done = client_report.borrow().done;
    let ip_time = client_report.borrow().finished_at;
    let ip_radio_tx = s.world.channel(s.chan).stats().transmissions;

    let rows = vec![
        vec![
            "path".to_string(),
            "session ok".to_string(),
            "approx time".to_string(),
            "radio transmissions".to_string(),
        ],
        vec![
            "AX.25 conn -> appgw -> TCP".to_string(),
            ax25_done.to_string(),
            ax25_time.to_string(),
            ax25_radio_tx.to_string(),
        ],
        vec![
            "native TCP/IP end to end".to_string(),
            ip_done.to_string(),
            ip_time.map(|t| t.to_string()).unwrap_or("-".into()),
            ip_radio_tx.to_string(),
        ],
    ];
    println!("{}", render_table(&rows));
    println!("appgw bridge: {sessions} session(s), {to_tcp} B radio->TCP, {to_radio} B TCP->radio");
    println!("the terminal PC decoded {pc_ip_frames} IP frames — i.e. none: it never ran IP.");
    println!();
    println!("expected shape: both sessions complete; the AX.25 path works without any");
    println!("IP on the user's machine — \"such applications do not require kernel");
    println!("support, even though they extend down to layer three\" (§2.4).");
}
