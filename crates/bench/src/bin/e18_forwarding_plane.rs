//! E18 — the compiled forwarding plane under city-mesh load.
//!
//! §4.2's aggregate route ("all of net 44 via one gateway") kept the
//! paper's tables tiny; a converged city of islands does not have that
//! luxury — each gateway carries a learned `/24` for every other island,
//! and every forwarded packet pays longest-prefix match over the lot,
//! twice (once for the tunnel endpoint, once for the egress). This
//! experiment exercises DESIGN.md §14's answer: the compiled multibit
//! trie plus the per-destination next-hop cache.
//!
//! Three claims, the first two deterministic (this file's output is
//! byte-stable), the third wall-clock and therefore printed to stderr:
//!
//! 1. **The walk is flat in table size**: the compiled trie answers any
//!    lookup in at most four node visits whether the table holds 8
//!    routes or 1024 — the shape sweep prints node counts and the
//!    deepest walk over every installed prefix.
//! 2. **The cache is invisible to the traffic**: a full-table mesh run
//!    with the next-hop cache enabled delivers byte-identical events to
//!    its cache-off twin (the system-level face of the `cached ≡
//!    uncached` differential proptest), while the gateways' counters
//!    show the hit rate doing the work.
//! 3. **Per-packet lookup cost**: mean ns per compiled lookup at each
//!    table size, flat where the linear scan grows linearly — wall
//!    clock, so printed only in bench mode (`E18_BENCH=1`, used by
//!    scripts/bench.sh) and to stderr.
//!
//! Knobs: `E18_GATEWAYS` (default 48), `E18_HOSTS` (default 3 per
//! island), `E18_SECONDS` (default 40). The issue-brief full run is
//! `E18_GATEWAYS=1000`, giving ~1000-route gateway tables.

use apps::ping::Pinger;
use bench::banner;
use gateway::scenario::{self, city, MeshOptions};
use netstack::route::{Prefix, RouteTable};
use sim::stats::render_table;
use sim::SimDuration;
use std::net::Ipv4Addr;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A route table shaped like a converged E18 gateway's: `n` island
/// `/24`s plus the default toward the wired internet.
fn island_table(n: usize) -> RouteTable {
    let mut rt = RouteTable::new();
    for i in 0..n {
        let addr = Ipv4Addr::from(0x2C00_0000 | ((i as u32) << 8));
        rt.add(
            Prefix::new(addr, 24),
            Some(Ipv4Addr::new(10, 0, 0, 1)),
            netstack::stack::IfaceId::new(0),
        );
    }
    rt.add(
        Prefix::default_route(),
        Some(Ipv4Addr::new(10, 0, 0, 254)),
        netstack::stack::IfaceId::new(1),
    );
    rt
}

/// FNV-1a over the event log (same digest as E15).
fn event_digest(world: &mut gateway::World) -> (u64, usize, usize) {
    let events = world.take_events();
    let n = events.len();
    let mut replies = 0;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (h, t, e) in events {
        let line = format!("{h:?} {t} {e:?}\n");
        if line.contains("PingReply") {
            replies += 1;
        }
        for b in line.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    (hash, n, replies)
}

/// Builds the full-table mesh and wires forwarding-heavy traffic: host 0
/// of every island pings host 0 of the next island *and* host 1 (when
/// present) pings two islands over, so each gateway forwards flows for
/// several distinct destinations — a working set the next-hop cache must
/// actually hold, not a single hot slot.
fn build(gateways: usize, hosts_per_gw: usize, seed: u64, bits: u8) -> scenario::MeshNet {
    let mut m = scenario::mesh_with(
        gateways,
        hosts_per_gw,
        seed,
        MeshOptions {
            full_tables: true,
            fwd_cache_bits: bits,
        },
    );
    for g in 0..gateways {
        let p = Pinger::new(
            city::host_ip((g + 1) % gateways, 0),
            g as u16,
            9,
            SimDuration::from_secs(4),
            64,
        )
        .delayed(SimDuration::from_millis(300 + (41 * g as u64) % 2100));
        m.world.add_app(m.hosts[g][0], Box::new(p));
        if hosts_per_gw > 1 {
            let p2 = Pinger::new(
                city::host_ip((g + 2) % gateways, 0),
                (gateways + g) as u16,
                6,
                SimDuration::from_secs(6),
                64,
            )
            .delayed(SimDuration::from_millis(1100 + (53 * g as u64) % 2300));
            m.world.add_app(m.hosts[g][1], Box::new(p2));
        }
    }
    m
}

fn main() {
    let gateways = env_usize("E18_GATEWAYS", 48);
    let hosts_per_gw = env_usize("E18_HOSTS", 3);
    let secs = env_usize("E18_SECONDS", 40) as u64;
    let bench_mode = std::env::var("E18_BENCH").is_ok_and(|v| v == "1");
    let seed = 2244;

    banner(
        "E18",
        "compiled LPM forwarding plane with per-destination next-hop cache",
        "a converged city has no §4.2 aggregate — every gateway carries a /24 \
         per island, and per-packet lookup cost must stay flat in table size \
         (DESIGN.md §14)",
    );

    // --- Claim 1: trie shape is flat in table size ----------------------
    println!("compiled-trie shape (routes = island /24s + default):\n");
    let mut rows = vec![vec![
        "routes".to_string(),
        "trie nodes".to_string(),
        "max walk depth".to_string(),
    ]];
    for n in [8usize, 64, 256, 1024] {
        let mut rt = island_table(n);
        let (nodes, depth) = rt.compiled_shape();
        rows.push(vec![
            format!("{}", rt.routes().len()),
            format!("{nodes}"),
            format!("{depth}"),
        ]);
    }
    println!("{}", render_table(&rows));

    // --- Claim 3 (bench mode, stderr): per-packet lookup cost -----------
    for n in if bench_mode {
        &[8usize, 64, 256, 1024][..]
    } else {
        &[]
    } {
        let n = *n;
        let mut rt = island_table(n);
        let probe = Ipv4Addr::new(9, 9, 9, 9);
        rt.lookup_fast(probe);
        let iters = 200_000u32;
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(rt.lookup_fast(std::hint::black_box(probe)));
        }
        let fast = t.elapsed().as_nanos() as f64 / f64::from(iters);
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(rt.lookup(std::hint::black_box(probe)));
        }
        let linear = t.elapsed().as_nanos() as f64 / f64::from(iters);
        eprintln!(
            "lookup cost at {:4} routes: compiled {fast:6.1} ns, linear {linear:8.1} ns",
            rt.routes().len()
        );
    }

    // --- Claim 2: cached ≡ uncached at the system level -----------------
    println!(
        "full-table mesh: {gateways} islands x {} stations, {}+ routes per \
         gateway, {secs} s simulated\n",
        hosts_per_gw + 1,
        gateways + 1,
    );
    let mut rows = vec![vec![
        "next-hop cache".to_string(),
        "events".to_string(),
        "ping replies".to_string(),
        "digest".to_string(),
        "fwd hits".to_string(),
        "misses".to_string(),
        "stale".to_string(),
    ]];
    let mut digests = Vec::new();
    for bits in [0u8, 12] {
        let mut m = build(gateways, hosts_per_gw, seed, bits);
        let t0 = Instant::now();
        m.world
            .run_until_reference(sim::SimTime::from_millis(secs * 1000));
        let wall = t0.elapsed();
        let (d, n, replies) = event_digest(&mut m.world);
        let (mut hits, mut misses, mut stale) = (0u64, 0u64, 0u64);
        for g in 0..gateways {
            let st = m.world.host(m.gateways[g]).stack.stats();
            hits += st.fwd_cache_hits;
            misses += st.fwd_cache_misses;
            stale += st.fwd_cache_stale;
        }
        rows.push(vec![
            if bits == 0 {
                "off".to_string()
            } else {
                format!("2^{bits} slots")
            },
            format!("{n}"),
            format!("{replies}"),
            format!("{d:016x}"),
            format!("{hits}"),
            format!("{misses}"),
            format!("{stale}"),
        ]);
        digests.push(d);
        if bench_mode {
            // The bench.sh row: ns per simulated second of mesh, so the
            // cached and uncached engines are directly comparable.
            let label = if bits == 0 { "nocache" } else { "cache" };
            println!(
                "e18_mesh/{label} ... {:.1} ns/iter",
                wall.as_nanos() as f64 / secs as f64
            );
            eprintln!(
                "mesh run (cache bits {bits}): {:.2} s wall",
                wall.as_secs_f64()
            );
        }
        if bits != 0 {
            assert!(hits > 0, "the cached run must actually hit");
            assert!(
                hits > 2 * misses,
                "the cache must absorb the bulk of the decisions \
                 (hits {hits}, misses {misses})"
            );
        }
    }
    println!("{}", render_table(&rows));
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "cached and uncached meshes must deliver identical event logs"
    );
    println!("cached and cache-off runs: event logs byte-identical.");
}
