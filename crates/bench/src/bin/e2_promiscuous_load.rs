//! E2 — §3 ¶2: "the gateway slows considerably as traffic on the packet
//! radio subnet climbs. Part of the reason for this is that the present
//! code running inside the TNC passes every packet it receives to the
//! packet radio driver regardless of the destination address."
//!
//! Background stations load the channel while the PC pings through the
//! gateway. For each offered load we run the gateway's TNC both
//! promiscuous (stock 1988) and address-filtered (the paper's proposed
//! fix), reporting:
//!
//! * the RTT of the gateway's own traffic (rises with load — the
//!   "slows considerably" part; mostly channel contention);
//! * the characters and packets the gateway host is forced to process
//!   (the interrupt-load part the filter eliminates);
//! * the gateway CPU utilization attributable to the radio port.

use apps::ping::Pinger;
use ax25::addr::Ax25Addr;
use bench::banner;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use radio::traffic::BeaconConfig;
use sim::stats::Sweep;
use sim::{SimDuration, SimTime};

struct Outcome {
    rtt_ms: f64,
    p95_ms: f64,
    delivered: u32,
    gw_chars: u64,
    gw_packets: u64,
    gw_cpu_pct: f64,
    filtered: u64,
    /// Offered airtime / wall clock — can exceed 1.0 under contention.
    offered_load: f64,
    /// Occupied airtime (union of transmissions) / wall clock — clamped.
    channel_util: f64,
    sched: sim::SchedStats,
    pool_misses: u64,
    pool_hits: u64,
    pool_high_water: u64,
}

fn run(mode: RxMode, stations: usize) -> Outcome {
    let cfg = PaperConfig {
        // Everything starts as stock 1988 promiscuous firmware; the
        // filtered variant is switched on at runtime below, exercising
        // Tnc::set_address_filter — the deployable form of the fix.
        tnc_mode: RxMode::Promiscuous,
        // TNC-2-era serial: barely above the channel rate, so unwanted
        // promiscuous traffic competes with wanted frames on the RS-232.
        serial_baud: 2400,
        acl: false,
        ..PaperConfig::default()
    };
    let mut s = paper_topology(cfg, 2000 + stations as u64);
    if mode == RxMode::AddressFilter {
        s.world.tnc_mut(s.gw_tnc).set_address_filter(&[]);
    }
    for i in 0..stations {
        s.world.add_beacon(
            s.chan,
            BeaconConfig {
                from: Ax25Addr::parse_or_panic(&format!("BG{}", i + 1)),
                to: Ax25Addr::parse_or_panic("CHAT"),
                frame_len: 120,
                mean_interval: SimDuration::from_secs(8),
                start: SimTime::ZERO,
                mac: MacConfig::default(),
            },
        );
    }
    let pinger = Pinger::new(ETHER_HOST_IP, 1, 20, SimDuration::from_secs(60), 32);
    let report = pinger.report();
    s.world.add_app(s.pc, Box::new(pinger));
    let horizon = SimDuration::from_secs(1500);
    s.world.run_for(horizon);

    let mut r = report.borrow_mut();
    let gw = s.world.host(s.gw);
    let pool = gw.pr_driver().map(|d| d.pool_stats()).unwrap_or_default();
    Outcome {
        rtt_ms: r.rtts.mean().map(|d| d.as_millis_f64()).unwrap_or(f64::NAN),
        p95_ms: r
            .rtts
            .quantile(0.95)
            .map(|d| d.as_millis_f64())
            .unwrap_or(f64::NAN),
        delivered: r.received,
        gw_chars: gw.cpu.stats().char_interrupts,
        gw_packets: gw.cpu.stats().packets,
        gw_cpu_pct: gw.cpu.utilization(s.world.now) * 100.0,
        filtered: s.world.tnc(s.gw_tnc).stats().filtered,
        offered_load: s.world.channel(s.chan).offered_utilization(s.world.now),
        channel_util: s.world.channel(s.chan).utilization(s.world.now),
        sched: s.world.sched_stats(),
        pool_misses: pool.misses.get(),
        pool_hits: pool.hits.get(),
        pool_high_water: pool.high_water,
    }
}

fn main() {
    banner(
        "E2",
        "gateway under promiscuous subnet load vs TNC address filtering",
        "\"the gateway slows considerably as traffic on the packet radio subnet \
         climbs\" because the TNC \"passes every packet it receives\" (§3)",
    );
    println!("(20 pings PC→vax2, 25 min of background chatter per point; serial 2400 Bd)\n");

    let mut sweep = Sweep::new("bg_stations");
    for stations in [0usize, 2, 4, 6, 8, 12] {
        let p = run(RxMode::Promiscuous, stations);
        let f = run(RxMode::AddressFilter, stations);
        sweep
            .row(stations as f64)
            .set("offered_load_%", p.offered_load * 100.0)
            .set("chan_util_%", p.channel_util * 100.0)
            .set("rtt_prom_ms", p.rtt_ms)
            .set("rtt_filt_ms", f.rtt_ms)
            .set("p95_prom_ms", p.p95_ms)
            .set("ok_prom", f64::from(p.delivered))
            .set("gw_chars_prom", p.gw_chars as f64)
            .set("gw_chars_filt", f.gw_chars as f64)
            .set(
                "chars_saved_%",
                (1.0 - f.gw_chars as f64 / (p.gw_chars as f64).max(1.0)) * 100.0,
            )
            .set("gw_cpu_prom_%", p.gw_cpu_pct)
            .set("gw_cpu_filt_%", f.gw_cpu_pct)
            .set("tnc_filtered", f.filtered as f64)
            .set("gw_pkts_prom", p.gw_packets as f64)
            .set("pool_alloc_prom", p.pool_misses as f64)
            .set("pool_hit_prom", p.pool_hits as f64)
            .set("pool_hw_prom", p.pool_high_water as f64)
            .set("sched_pops", p.sched.pops as f64)
            .set("sched_rekeys", p.sched.rekeys as f64)
            .set("sched_skips", p.sched.tombstone_skips as f64)
            .set("sched_polls", p.sched.polled as f64)
            .set("sched_instants", p.sched.instants as f64)
            .set("sched_batched", p.sched.batched_chars as f64);
    }
    println!("{}", sweep.render());
    println!("expected shape:");
    println!(" * rtt rises steeply with load in BOTH modes (channel contention — the");
    println!("   dominant slowdown), reproducing \"slows considerably\";");
    println!(" * gw_chars/gw_cpu in promiscuous mode scale with the background load");
    println!("   while the filtered TNC holds them flat at the gateway's own traffic —");
    println!("   chars_saved_% is the per-character interrupt reduction the runtime");
    println!("   Tnc::set_address_filter switch buys at each load point;");
    println!(" * pool_alloc_prom stays flat as background load grows: frames for other");
    println!("   stations never lease a transmit buffer, so the driver's buffer-pool");
    println!("   allocations track only the gateway's own sends (pool_hw is the depth);");
    println!(" * offered_load_% exceeds 100% once stations offer more airtime than the");
    println!("   channel has (queueing), while chan_util_% — occupied airtime as a");
    println!("   union of transmissions — saturates at 100%;");
    println!(" * sched_polls counts component visits by the deadline-indexed engine:");
    println!("   sched_polls/sched_instants stays near the handful of components that");
    println!("   are actually dirty per instant, instead of the whole world, and");
    println!("   sched_batched counts serial characters delivered with no calendar");
    println!("   traffic at all.");
}
