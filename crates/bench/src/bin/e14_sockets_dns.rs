//! E14 — socket-layer capstone: name resolution and socket applications
//! across the two-coast gateway mesh.
//!
//! Everything in this run is a program on the BSD-style socket layer:
//! the west gateway publishes the AMPRnet callsign zone from a DNS
//! server (UDP port 53), the Internet host runs a stub resolver plus a
//! typist and an FTP client, and the radio hosts run the echo and file
//! servers — all `SocketProgram`s scheduled through poll/select
//! readiness, none touching `NetStack::tcp_*`/`udp_*` directly.
//!
//! The sequence a 4.3BSD user would take for granted: resolve a
//! callsign-host name, connect to the returned 44.x address, transfer —
//! with the packets crossing the Ethernet in IPIP tunnels and the last
//! hop at 1200 b/s over radio.

use std::collections::BTreeMap;

use apps::dns::{DnsServer, Resolver};
use apps::echo::EchoServer;
use apps::ftp::{FileClient, FileServer};
use apps::typist::Typist;
use bench::banner;
use gateway::ripd::RipConfig;
use gateway::scenario::{mesh_addrs, three_gateway, PaperConfig};
use sim::stats::render_table;
use sim::SimDuration;

fn main() {
    banner(
        "E14",
        "DNS + socket apps end to end across the gateway mesh",
        "the BSD socket layer carries real applications: resolve a \
         callsign host, connect, transfer — no app touches the raw stack API",
    );
    println!("(names served by west-gw from the AMPRnet callsign zone, TTL 300 s;");
    println!(" echo on east-host, FTP on gulf-host, clients on the Internet host)\n");

    let rip = RipConfig {
        announce_interval: SimDuration::from_secs(10),
        route_ttl: SimDuration::from_secs(60),
        holddown: SimDuration::from_secs(20),
        ..RipConfig::default()
    };
    let cfg = PaperConfig {
        acl: false,
        ..PaperConfig::default()
    };
    let mut s = three_gateway(&cfg, rip, 1400);

    // Servers first, so every listener is up before any client asks.
    let dns = DnsServer::new(
        &[
            ("ka2eh.ampr.org", mesh_addrs::EAST_HOST),
            ("kd5gh.ampr.org", mesh_addrs::GULF_HOST),
            ("n7akr-1.ampr.org", mesh_addrs::WEST_GW_RADIO),
        ],
        SimDuration::from_secs(300),
    );
    let dns_report = dns.report();
    s.world.add_app(s.west_gw, Box::new(dns));

    let echo = EchoServer::new(7);
    let echo_report = echo.report();
    s.world.add_app(s.east_host, Box::new(echo));

    let files = FileServer::new(21, &[("map.txt", 1500)]);
    let files_report = files.report();
    s.world.add_app(s.gulf_host, Box::new(files));

    let resolver = Resolver::new(mesh_addrs::WEST_GW_ETHER, 1053);
    let core = resolver.core();
    s.world.add_app(s.internet_host, Box::new(resolver));

    // Let RIP44 converge so the 44.56/16 and 44.88/16 tunnels exist.
    s.world.run_for(SimDuration::from_secs(30));

    // --- Phase 1: resolve three names (one of them bogus). --------------
    let names = ["ka2eh.ampr.org", "kd5gh.ampr.org", "nocall.ampr.org"];
    let t_ask = s.world.now;
    for n in names {
        core.borrow_mut().resolve(n, s.world.now);
    }
    let mut answered_at: BTreeMap<&str, (Option<std::net::Ipv4Addr>, f64)> = BTreeMap::new();
    for _ in 0..600 {
        s.world.run_for(SimDuration::from_millis(100));
        for n in names {
            if !answered_at.contains_key(n) {
                if let Some(outcome) = core.borrow().result(n) {
                    answered_at.insert(
                        n,
                        (outcome, s.world.now.saturating_since(t_ask).as_secs_f64()),
                    );
                }
            }
        }
        if answered_at.len() == names.len() {
            break;
        }
    }

    let mut rows = vec![vec![
        "name".to_string(),
        "answer".to_string(),
        "latency".to_string(),
    ]];
    for n in names {
        let (outcome, dt) = answered_at.get(n).copied().unwrap_or((None, f64::NAN));
        rows.push(vec![
            n.to_string(),
            outcome.map_or("NXDOMAIN".to_string(), |a| a.to_string()),
            format!("{dt:.3} s"),
        ]);
    }
    println!("{}", render_table(&rows));

    // A repeat lookup is answered from the cache, no datagram sent.
    let east = core
        .borrow_mut()
        .resolve("ka2eh.ampr.org", s.world.now)
        .expect("cached answer");
    let gulf = core
        .borrow_mut()
        .resolve("kd5gh.ampr.org", s.world.now)
        .expect("cached answer");
    {
        let st = &core.borrow().stats;
        println!(
            "\nresolver: {} queries sent ({} retries), {} answers, {} from cache, {} failures",
            st.queries_sent, st.retries, st.answers, st.from_cache, st.failures
        );
        let d = dns_report.borrow();
        println!(
            "server:   {} queries, {} answered, {} nxdomain\n",
            d.queries, d.answered, d.nxdomain
        );
    }

    // --- Phase 2: connect to the resolved addresses and transfer. -------
    let typist = Typist::new(east, 7, 10);
    let typist_report = typist.report();
    s.world.add_app(s.internet_host, Box::new(typist));

    let get = FileClient::new(gulf, 21, "map.txt");
    let get_report = get.report();
    s.world.add_app(s.internet_host, Box::new(get));

    s.world.run_for(SimDuration::from_secs(900));

    let mut rows = vec![vec![
        "app".to_string(),
        "target".to_string(),
        "outcome".to_string(),
        "detail".to_string(),
    ]];
    {
        let t = typist_report.borrow();
        rows.push(vec![
            "typist (echo)".into(),
            format!("{east}:7"),
            if t.done { "ok".into() } else { "FAILED".into() },
            format!(
                "{}/{} echoed, mean rtt {:.2} s",
                t.echoed,
                t.sent,
                t.mean_rtt().map_or(f64::NAN, |d| d.as_secs_f64())
            ),
        ]);
        let f = get_report.borrow();
        rows.push(vec![
            "ftp GET map.txt".into(),
            format!("{gulf}:21"),
            if f.done { "ok".into() } else { "FAILED".into() },
            format!(
                "{}/{} bytes intact in {:.1} s",
                f.received,
                f.announced,
                f.duration().map_or(f64::NAN, |d| d.as_secs_f64())
            ),
        ]);
    }
    println!("{}", render_table(&rows));
    println!(
        "\nservers: echo accepted {} conn / {} B echoed; ftp served {} GET / {} B sent",
        echo_report.borrow().accepted,
        echo_report.borrow().bytes_echoed,
        files_report.borrow().serves,
        files_report.borrow().bytes_sent,
    );
}
