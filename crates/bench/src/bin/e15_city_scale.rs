//! E15 — city-scale AMPRnet on the sharded multi-core engine.
//!
//! The paper networked one PC, one gateway, and one Ethernet host. §5
//! closes with the ambition: "as the number of users of this network
//! grows" the gateway model must scale to a *city* of radio subnets.
//! This experiment builds that city — hundreds of radio islands, each a
//! 1200 b/s channel with its own MicroVAX gateway, joined by one
//! department Ethernet carrying IPIP tunnels (§4.2) — and runs it on the
//! sharded engine (DESIGN.md §11), one shard per island.
//!
//! Three claims are checked, the first two deterministic (this file's
//! output is byte-stable), the third wall-clock and therefore printed
//! only in bench mode (`E15_BENCH=1`, used by scripts/bench.sh):
//!
//! 1. **Equivalence at scale**: the FNV digest of the event log is
//!    identical at 1, 2, 4, and 8 workers, and equal to the full-scan
//!    reference stepper's digest.
//! 2. **Traffic flows**: cross-island pings tunnel over the Ethernet and
//!    come back; the cross-shard mailboxes carry every hand-off without
//!    growing once warm.
//! 3. **Scaling**: wall-clock per simulated second at each worker count
//!    (honest numbers: this is a thread-scaling harness, and on a
//!    single-core container the extra workers measure coordination
//!    overhead, not speedup — the row's `threads` field in
//!    BENCH_engine.json says what was used).
//!
//! Knobs: `E15_GATEWAYS` (default 250), `E15_HOSTS` (default 40 per
//! island), `E15_SECONDS` (default 20). The full run from the issue
//! brief is `E15_GATEWAYS=1000 E15_HOSTS=97` — ~100k hosts.

use apps::ping::Pinger;
use bench::banner;
use gateway::scenario::{self, city};
use sim::stats::render_table;
use sim::SimDuration;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// FNV-1a over the event log, the same digest the `shard_equivalence`
/// suite pins.
fn event_digest(world: &mut gateway::World) -> (u64, usize, usize) {
    let events = world.take_events();
    let n = events.len();
    let mut replies = 0;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (h, t, e) in events {
        let line = format!("{h:?} {t} {e:?}\n");
        if line.contains("PingReply") {
            replies += 1;
        }
        for b in line.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    (hash, n, replies)
}

/// Builds the city and wires the traffic: host 0 of every island pings
/// host 0 of the next island (two pings, starts staggered island by
/// island so the first CSMA contention never synchronizes city-wide).
fn build(gateways: usize, hosts_per_gw: usize, seed: u64) -> scenario::MeshNet {
    let mut m = scenario::mesh(gateways, hosts_per_gw, seed);
    for g in 0..gateways {
        let p = Pinger::new(
            city::host_ip((g + 1) % gateways, 0),
            g as u16,
            2,
            SimDuration::from_secs(4),
            64,
        )
        .delayed(SimDuration::from_millis(200 + (37 * g as u64) % 1800));
        m.world.add_app(m.hosts[g][0], Box::new(p));
    }
    m
}

fn main() {
    let gateways = env_usize("E15_GATEWAYS", 250);
    let hosts_per_gw = env_usize("E15_HOSTS", 40);
    let secs = env_usize("E15_SECONDS", 20) as u64;
    let bench_mode = std::env::var("E15_BENCH").is_ok_and(|v| v == "1");
    let seed = 1988;

    banner(
        "E15",
        "city-scale AMPRnet: sharded multi-core simulation engine",
        "\"as the number of users of this network grows\" (§5) — one shard per \
         radio island, IPIP tunnels (§4.2) as the only cross-shard traffic, \
         bit-identical event logs at every worker count",
    );
    println!(
        "({gateways} islands x {} stations = {} simulated machines, {secs} s simulated)\n",
        hosts_per_gw + 1,
        gateways * (hosts_per_gw + 1) + 1,
    );

    // --- Claim 1 + 2: digest equivalence and flowing traffic ------------
    let mut rows = vec![vec![
        "engine".to_string(),
        "workers".to_string(),
        "events".to_string(),
        "ping replies".to_string(),
        "digest".to_string(),
    ]];
    let mut digests = Vec::new();
    let mut walls = Vec::new();

    let mut m = build(gateways, hosts_per_gw, seed);
    let t0 = Instant::now();
    m.world
        .run_until_reference(sim::SimTime::from_millis(secs * 1000));
    walls.push(("reference".to_string(), 0, t0.elapsed()));
    let (d, n, replies) = event_digest(&mut m.world);
    digests.push(d);
    rows.push(vec![
        "reference".into(),
        "-".into(),
        n.to_string(),
        replies.to_string(),
        format!("{d:016x}"),
    ]);
    drop(m);

    for workers in [1usize, 2, 4, 8] {
        let mut m = build(gateways, hosts_per_gw, seed);
        m.world.set_workers(workers);
        let t0 = Instant::now();
        m.world.run_for(SimDuration::from_secs(secs));
        walls.push((format!("sharded_{workers}w"), workers, t0.elapsed()));
        let (d, n, replies) = event_digest(&mut m.world);
        let mb = m.world.mailbox_stats();
        digests.push(d);
        rows.push(vec![
            "sharded".into(),
            workers.to_string(),
            n.to_string(),
            replies.to_string(),
            format!("{d:016x}"),
        ]);
        assert!(replies > 0, "cross-island traffic must flow");
        assert!(mb.pushed > 0, "tunnel traffic must cross shards");
        assert_eq!(mb.pushed, mb.popped, "every hand-off is consumed");
    }
    println!("{}", render_table(&rows));

    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "digest mismatch across engines: {digests:x?}"
    );
    println!(
        "\nall {} digests identical: the sharded engine is bit-equivalent to the",
        digests.len()
    );
    println!("reference at every worker count (DESIGN.md §11 contract).");

    // --- Claim 3: wall-clock scaling (bench mode only; nondeterministic)
    if bench_mode {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!("\nwall-clock scaling (host machine: {cores} core(s)):");
        for (name, _, wall) in &walls {
            let ns = wall.as_nanos();
            println!("e15/city{gateways}x{hosts_per_gw}_{secs}s_{name} ... bench: {ns} ns/iter");
        }
    }
}
