//! E4 — §4.2: "Since AMPRnet has been allocated a class 'A' network,
//! most systems will maintain only a single route for it. All packets
//! destined for AMPRnet originating from another internet host must pass
//! through a single gateway. This is not desirable since a packet
//! destined for 44.24.0.5 should be sent to a West Coast gateway …
//! whereas a packet destined for 44.56.0.5 should be sent to an East
//! Coast gateway."
//!
//! The two-coast topology: a distant Internet host talks to an
//! east-coast radio host, once with the single class-A route (everything
//! lands at the west gateway, which must relay across an RF backbone)
//! and once with per-subnet routes (straight to the east gateway).

use apps::bulk::{BulkSender, BulkSink};
use apps::ping::Pinger;
use bench::{banner, open_config, two_coast, two_coast_addrs, RouteMode};
use sim::stats::render_table;
use sim::SimDuration;

struct Outcome {
    warm_rtt_s: f64,
    first_rtt_s: f64,
    goodput_bps: f64,
    radio_txs: u64,
    delivered: bool,
}

fn run(mode: RouteMode) -> Outcome {
    let mut t = two_coast(mode, &open_config(), 4000);
    let pinger = Pinger::new(
        two_coast_addrs::EAST_HOST,
        1,
        4,
        SimDuration::from_secs(60),
        32,
    );
    let ping_report = pinger.report();
    t.world.add_app(t.internet_host, Box::new(pinger));
    t.world.run_for(SimDuration::from_secs(300));
    let ping_txs_end = t.world.channel(t.chan).stats().transmissions;

    // Then a 4 kB transfer to the east host.
    let sink = BulkSink::new(7000);
    let sink_report = sink.report();
    t.world.add_app(t.east_host, Box::new(sink));
    let sender = BulkSender::new(two_coast_addrs::EAST_HOST, 7000, 4000);
    let send_report = sender.report();
    t.world.add_app(t.internet_host, Box::new(sender));
    t.world.run_for(SimDuration::from_secs(3 * 3600));

    let mut pr = ping_report.borrow_mut();
    let goodput_bps = send_report.borrow().goodput_bps().unwrap_or(f64::NAN);
    let sink_bytes = sink_report.borrow().bytes;
    Outcome {
        warm_rtt_s: pr.rtts.min().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
        first_rtt_s: pr.rtts.max().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
        goodput_bps,
        radio_txs: ping_txs_end,
        delivered: pr.received == 4 && sink_bytes == 4000,
    }
}

fn main() {
    banner(
        "E4",
        "single class-A route vs per-subnet routes to AMPRnet",
        "one gateway for all of net 44 forces cross-country relays; \
         per-subnet routing would deliver to the right coast (§4.2)",
    );
    println!("(internet host → east radio host 44.56.0.5; single route lands at the");
    println!(" WEST gateway, which must relay via the BBONE RF backbone digipeater)\n");

    let single = run(RouteMode::SingleClassA);
    let per = run(RouteMode::PerSubnet);

    let rows = vec![
        vec![
            "route mode".to_string(),
            "warm_rtt_s".to_string(),
            "cold_rtt_s".to_string(),
            "goodput_bps".to_string(),
            "radio_txs(ping)".to_string(),
            "all_ok".to_string(),
        ],
        vec![
            "single 44/8 via west".to_string(),
            format!("{:.2}", single.warm_rtt_s),
            format!("{:.2}", single.first_rtt_s),
            format!("{:.0}", single.goodput_bps),
            single.radio_txs.to_string(),
            single.delivered.to_string(),
        ],
        vec![
            "per-subnet (44.56 via east)".to_string(),
            format!("{:.2}", per.warm_rtt_s),
            format!("{:.2}", per.first_rtt_s),
            format!("{:.0}", per.goodput_bps),
            per.radio_txs.to_string(),
            per.delivered.to_string(),
        ],
    ];
    println!("{}", render_table(&rows));
    println!(
        "expected shape: the single class-A route roughly doubles RTT (every frame\n\
         crosses the shared channel twice via the backbone digipeater) and halves\n\
         goodput; per-subnet routes deliver at the right coast. The paper notes\n\
         \"it is conceivable that something like this could be handled using\n\
         ICMP, but at this time, no mechanism is in place.\""
    );
}
