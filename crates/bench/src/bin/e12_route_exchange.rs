//! E12 — §4.2's endgame: multi-gateway route exchange over IPIP tunnels.
//!
//! E4 showed the complaint: with one class-A route, traffic for the east
//! subnet lands at the west gateway and detours cross-country over the
//! BBONE RF backbone. This experiment shows the fix working end to end.
//! Three gateways on one Internet segment run the RIP44 daemon: each
//! announces its 44.x/16 subnet on the wire and learns its peers' as
//! IPIP tunnel endpoints, while radio hosts learn their default route
//! from their gateway's radio-side announcements.
//!
//! Three claims are measured:
//!
//! 1. **Convergence**: after the first announcement round, ≥90% of
//!    Internet→east traffic rides the west→east IPIP tunnel across the
//!    10 Mb/s Ethernet instead of the 1200 b/s RF backbone.
//! 2. **Failure**: killing the east gateway mid-run expires the learned
//!    state within one route TTL — the west gateway's tunnel entry and
//!    the east host's learned default both fall back to the static
//!    aggregate path, and an in-flight TCP transfer finishes over the
//!    backbone without a reset.
//! 3. **Recovery**: reviving the gateway re-converges, but only after
//!    the hold-down window rejects its first announcements (flap
//!    damping).

use apps::bulk::{BulkSender, BulkSink};
use apps::ping::Pinger;
use bench::banner;
use gateway::ripd::RipConfig;
use gateway::scenario::{mesh_addrs, three_gateway, PaperConfig};
use sim::stats::render_table;
use sim::SimDuration;

fn main() {
    banner(
        "E12",
        "RIP44 route exchange between AMPRnet gateways over IPIP",
        "per-subnet routes \"should be sent to a West Coast gateway … an East \
         Coast gateway\" (§4.2); learned tunnels replace the single class-A \
         detour and survive gateway failure",
    );
    println!("(three gateways, announce 10 s, route TTL 25 s, hold-down 20 s;");
    println!(" the Internet host still holds only the 44/8 aggregate via west-gw)\n");

    let rip = RipConfig {
        announce_interval: SimDuration::from_secs(10),
        route_ttl: SimDuration::from_secs(25),
        holddown: SimDuration::from_secs(20),
        ..RipConfig::default()
    };
    let cfg = PaperConfig {
        acl: false,
        ..PaperConfig::default()
    };
    let mut s = three_gateway(&cfg, rip, 1200);

    // A probe pinging the east host every 10 s for the whole run.
    let pinger = Pinger::new(mesh_addrs::EAST_HOST, 1, 90, SimDuration::from_secs(10), 32);
    let ping_report = pinger.report();
    s.world.add_app(s.internet_host, Box::new(pinger));

    // --- Phase 1: convergence. -----------------------------------------
    // The first probes race the first announcements, so they detour over
    // the backbone; by t=30 s every gateway has heard every peer.
    s.world.run_for(SimDuration::from_secs(30));
    let cold_rtt = ping_report
        .borrow_mut()
        .rtts
        .max()
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN);
    let replies_at_30 = ping_report.borrow().received;
    let ipip_at_30 = s.world.host(s.east_gw).stack.stats().ipip_in;
    let west_learned: Vec<String> = s.west_tunnels.with(|t| {
        t.entries()
            .iter()
            .map(|e| format!("{}→{}", e.subnet, e.endpoint))
            .collect()
    });
    println!(
        "west-gw tunnel table at t=30s: {}\n",
        west_learned.join(", ")
    );

    // Converged window: 200 s of steady probing.
    s.world.run_for(SimDuration::from_secs(200));
    let replies_in_window = ping_report.borrow().received - replies_at_30;
    let tunneled_in_window = s.world.host(s.east_gw).stack.stats().ipip_in - ipip_at_30;
    let tunneled_fraction = tunneled_in_window as f64 / replies_in_window.max(1) as f64;
    let warm_rtt = ping_report
        .borrow_mut()
        .rtts
        .min()
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN);

    // --- Phase 2: kill the east gateway mid-transfer. -------------------
    let sink = BulkSink::new(7000);
    let sink_report = sink.report();
    s.world.add_app(s.east_host, Box::new(sink));
    let sender = BulkSender::new(mesh_addrs::EAST_HOST, 7000, 3000);
    let send_report = sender.report();
    s.world.add_app(s.internet_host, Box::new(sender));
    s.world.run_for(SimDuration::from_secs(15));
    let bytes_before_kill = sink_report.borrow().bytes;

    let t_kill = s.world.now;
    s.world.host_mut(s.east_gw).set_down(true);
    let mut expiry_delay = f64::NAN;
    for _ in 0..40 {
        s.world.run_for(SimDuration::from_secs(1));
        if s.west_tunnels
            .with(|t| t.lookup(mesh_addrs::EAST_HOST).is_none())
        {
            expiry_delay = s.world.now.saturating_since(t_kill).as_secs_f64();
            break;
        }
    }
    let fallback_via = s
        .world
        .host(s.east_host)
        .stack
        .routes()
        .lookup_route(mesh_addrs::INTERNET_HOST)
        .and_then(|r| r.via)
        .map(|v| v.to_string())
        .unwrap_or_else(|| "NONE".into());
    let ipip_out_at_expiry = s.world.host(s.west_gw).stack.stats().ipip_out;

    // Let the transfer finish over the 1200 b/s backbone.
    s.world.run_for(SimDuration::from_secs(3600));
    let sink_bytes = sink_report.borrow().bytes;
    let reset = send_report.borrow().reset;
    let finished = send_report.borrow().finished_at.is_some();
    let retransmits = send_report.borrow().tcb.retransmissions;
    let ipip_out_after_outage = s.world.host(s.west_gw).stack.stats().ipip_out;

    // --- Phase 3: revive and re-converge. -------------------------------
    // The hold-down window (20 s past expiry) is long gone, so the first
    // announcement is believed again.
    s.world.host_mut(s.east_gw).set_down(false);
    s.world.run_for(SimDuration::from_secs(60));
    let relearned = s
        .west_tunnels
        .with(|t| t.lookup(mesh_addrs::EAST_HOST).is_some());

    // --- Phase 4: flap damping. -----------------------------------------
    // Kill the gateway again, but this time revive it the moment the
    // entry expires: its announcements land inside the hold-down window
    // and must be rejected before being believed.
    s.world.host_mut(s.east_gw).set_down(true);
    for _ in 0..40 {
        s.world.run_for(SimDuration::from_secs(1));
        if s.west_tunnels
            .with(|t| t.lookup(mesh_addrs::EAST_HOST).is_none())
        {
            break;
        }
    }
    s.world.host_mut(s.east_gw).set_down(false);
    s.world.run_for(SimDuration::from_secs(12));
    let held_after_flap = s
        .west_tunnels
        .with(|t| t.lookup(mesh_addrs::EAST_HOST).is_none());
    let holddown_rejects = s.west_tunnels.stats().holddown_rejects;
    s.world.run_for(SimDuration::from_secs(40));
    let relearned_after_flap = s
        .west_tunnels
        .with(|t| t.lookup(mesh_addrs::EAST_HOST).is_some());

    let rows = vec![
        vec![
            "metric".to_string(),
            "value".to_string(),
            "expectation".to_string(),
        ],
        vec![
            "cold RTT (detour, s)".to_string(),
            format!("{cold_rtt:.2}"),
            "backbone relay / ARP warm-up".to_string(),
        ],
        vec![
            "warm RTT (tunnel, s)".to_string(),
            format!("{warm_rtt:.2}"),
            "one RF hop via east-gw".to_string(),
        ],
        vec![
            "tunneled fraction (converged)".to_string(),
            format!("{:.0}%", tunneled_fraction * 100.0),
            ">= 90%".to_string(),
        ],
        vec![
            "tunnel expiry after kill (s)".to_string(),
            format!("{expiry_delay:.0}"),
            "<= route TTL (25)".to_string(),
        ],
        vec![
            "east-host fallback via".to_string(),
            fallback_via.clone(),
            "44.24.0.28 (static, metric 10)".to_string(),
        ],
        vec![
            "TCP bytes delivered".to_string(),
            format!("{sink_bytes}/3000 (pre-kill {bytes_before_kill})"),
            "all, across the outage".to_string(),
        ],
        vec![
            "TCP closed cleanly".to_string(),
            format!("{} (reset={reset}, rexmt={retransmits})", finished),
            "no reset".to_string(),
        ],
        vec![
            "encaps during outage".to_string(),
            format!("{}", ipip_out_after_outage - ipip_out_at_expiry),
            "0 (nothing toward dead gw)".to_string(),
        ],
        vec![
            "relearned after revival".to_string(),
            relearned.to_string(),
            "yes (hold-down long past)".to_string(),
        ],
        vec![
            "flap held down 12 s after revive".to_string(),
            format!("{held_after_flap} (rejects {holddown_rejects})"),
            "yes, announcements rejected".to_string(),
        ],
        vec![
            "relearned after hold-down".to_string(),
            relearned_after_flap.to_string(),
            "yes".to_string(),
        ],
    ];
    println!("{}", render_table(&rows));

    let ok = tunneled_fraction >= 0.9
        && expiry_delay <= 25.0
        && sink_bytes == 3000
        && !reset
        && finished
        && relearned
        && held_after_flap
        && holddown_rejects >= 1
        && relearned_after_flap;
    println!(
        "\nverdict: {}",
        if ok {
            "PASS — learned tunnels carry converged traffic, expire within one \
             TTL of gateway death, and the aggregate path carries the TCP \
             transfer through the outage"
        } else {
            "FAIL — see table"
        }
    );
}
