//! E13 — RFC 1144 VJ header compression on the radio link, on vs. off.
//!
//! E1 showed transmission time dominating the 1200 bit/s channel; this
//! experiment shows where those transmitted bytes go for interactive TCP.
//! A stop-and-wait typist (one character per segment, remote echo — the
//! RFC 1144 motivating workload) and a 6 kB FTP transfer each run twice
//! through the paper topology: once with the link as the paper built it,
//! once with VJ compression enabled on both radio drivers. The TCP MSS is
//! clamped to the radio MTU in all runs so the comparison is segmentation
//! -for-segmentation.
//!
//! Layered accounting, reported separately and honestly:
//! * **TCP/IP bytes per keystroke** — the headline RFC 1144 number: a
//!   40-byte header on one echoed byte shrinks to 3–4 delta bytes, so the
//!   IP-level cost of a keystroke falls ~9x.
//! * **Session-level speedup** (chars/s, echo RTT) is smaller — each
//!   frame still pays ~19 bytes of AX.25 address + control + KISS
//!   overhead that no IP-layer compression can touch (the frame-level
//!   ceiling is (40+1+19)/(4+1+19) ≈ 2.6x).
//! * **FTP goodput** moves least: data segments are header-light already.

use apps::echo::EchoServer;
use apps::ftp::{FileClient, FileServer};
use apps::typist::Typist;
use bench::banner;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use sim::stats::render_table;
use sim::SimDuration;
use vj::VjConfig;

const KEYSTROKES: usize = 40;
const FILE_BYTES: usize = 6000;

struct RadioLink {
    /// TCP/IP (info-field) bytes both radio drivers put on the air.
    ip_bytes: u64,
    /// Header bytes VJ removed (sum of both compressors).
    saved: u64,
    /// Compressed packets / refresh packets sent.
    compressed: u64,
    refreshes: u64,
}

fn radio_link_stats(s: &gateway::scenario::PaperScenario) -> RadioLink {
    let mut out = RadioLink {
        ip_bytes: 0,
        saved: 0,
        compressed: 0,
        refreshes: 0,
    };
    for h in [s.pc, s.gw] {
        let drv = s.world.host(h).pr_driver().expect("radio host");
        out.ip_bytes += drv.stats().ip_bytes_out;
        if let Some((cs, _)) = drv.vj_stats() {
            out.saved += cs.hdr_bytes_saved;
            out.compressed += cs.compressed;
            out.refreshes += cs.refreshes;
        }
    }
    out
}

fn config(vj: bool) -> PaperConfig {
    PaperConfig {
        vj: vj.then(VjConfig::default),
        clamp_mss: true,
        ..PaperConfig::default()
    }
}

struct InteractiveRun {
    echoed: usize,
    done: bool,
    mean_rtt: Option<SimDuration>,
    chars_per_sec: f64,
    link: RadioLink,
}

fn interactive(vj: bool) -> InteractiveRun {
    let mut s = paper_topology(config(vj), 13001);
    let server = EchoServer::new(7);
    s.world.add_app(s.ether_host, Box::new(server));
    let typist = Typist::new(ETHER_HOST_IP, 7, KEYSTROKES);
    let r = typist.report();
    s.world.add_app(s.pc, Box::new(typist));
    s.world.run_for(SimDuration::from_secs(1800));
    let rep = r.borrow();
    InteractiveRun {
        echoed: rep.echoed,
        done: rep.done,
        mean_rtt: rep.mean_rtt(),
        chars_per_sec: rep.chars_per_sec(),
        link: radio_link_stats(&s),
    }
}

struct FtpRun {
    received: usize,
    intact: bool,
    duration: Option<SimDuration>,
    link: RadioLink,
}

fn ftp(vj: bool) -> FtpRun {
    let mut s = paper_topology(config(vj), 13002);
    let server = FileServer::new(21, &[("paper.dvi", FILE_BYTES)]);
    s.world.add_app(s.ether_host, Box::new(server));
    let client = FileClient::new(ETHER_HOST_IP, 21, "paper.dvi");
    let r = client.report();
    s.world.add_app(s.pc, Box::new(client));
    s.world.run_for(SimDuration::from_secs(3600));
    let rep = r.borrow();
    FtpRun {
        received: rep.received,
        intact: rep.intact && rep.done,
        duration: rep.duration(),
        link: radio_link_stats(&s),
    }
}

fn main() {
    banner(
        "E13",
        "VJ (RFC 1144) TCP/IP header compression on the radio link",
        "AX.25 reserves PIDs 0x06/0x07 for compressed TCP/IP; a 1-byte \
         telnet echo otherwise costs ~41x its payload in header airtime",
    );

    // --- interactive: stop-and-wait keystroke echo --------------------------
    let runs = [(false, interactive(false)), (true, interactive(true))];
    let mut rows = vec![vec![
        "mode".to_string(),
        "echoes".to_string(),
        "mean RTT".to_string(),
        "chars/s".to_string(),
        "TCP/IP B on air".to_string(),
        "B/keystroke".to_string(),
        "hdr B saved".to_string(),
        "comp/refresh".to_string(),
    ]];
    for (vj, r) in &runs {
        let per_char = r.link.ip_bytes as f64 / r.echoed.max(1) as f64;
        rows.push(vec![
            if *vj { "vj on" } else { "vj off" }.into(),
            format!(
                "{}/{}{}",
                r.echoed,
                KEYSTROKES,
                if r.done { "" } else { " (INCOMPLETE)" }
            ),
            r.mean_rtt.map(|d| d.to_string()).unwrap_or("-".into()),
            format!("{:.2}", r.chars_per_sec),
            r.link.ip_bytes.to_string(),
            format!("{per_char:.1}"),
            r.link.saved.to_string(),
            format!("{}/{}", r.link.compressed, r.link.refreshes),
        ]);
    }
    println!("interactive (typist, {KEYSTROKES} keystrokes, remote echo):");
    println!("{}", render_table(&rows));

    let (off, on) = (&runs[0].1, &runs[1].1);
    let per_char_off = off.link.ip_bytes as f64 / off.echoed.max(1) as f64;
    let per_char_on = on.link.ip_bytes as f64 / on.echoed.max(1) as f64;
    let ip_ratio = per_char_off / per_char_on;
    let rtt_ratio = match (off.mean_rtt, on.mean_rtt) {
        (Some(a), Some(b)) if b.as_secs_f64() > 0.0 => a.as_secs_f64() / b.as_secs_f64(),
        _ => 0.0,
    };
    let rate_ratio = if off.chars_per_sec > 0.0 {
        on.chars_per_sec / off.chars_per_sec
    } else {
        0.0
    };
    println!("interactive IP goodput: {ip_ratio:.1}x fewer TCP/IP bytes per keystroke");
    println!("session level: {rate_ratio:.2}x chars/s, {rtt_ratio:.2}x echo RTT — capped near the");
    println!("(40+1+19)/(4+1+19) = 2.6x frame ceiling by AX.25+KISS per-frame overhead");
    println!();

    // --- bulk: 6 kB FTP get --------------------------------------------------
    let fruns = [(false, ftp(false)), (true, ftp(true))];
    let mut rows = vec![vec![
        "mode".to_string(),
        "outcome".to_string(),
        "duration".to_string(),
        "goodput B/s".to_string(),
        "TCP/IP B on air".to_string(),
        "hdr B saved".to_string(),
    ]];
    for (vj, r) in &fruns {
        let goodput = match r.duration {
            Some(d) if d.as_secs_f64() > 0.0 => r.received as f64 / d.as_secs_f64(),
            _ => 0.0,
        };
        rows.push(vec![
            if *vj { "vj on" } else { "vj off" }.into(),
            if r.intact {
                format!("{} B intact", r.received)
            } else {
                format!("FAILED ({} B)", r.received)
            },
            r.duration.map(|d| d.to_string()).unwrap_or("-".into()),
            format!("{goodput:.1}"),
            r.link.ip_bytes.to_string(),
            r.link.saved.to_string(),
        ]);
    }
    println!("bulk (ftp get {FILE_BYTES} B, MSS clamped to radio MTU in both runs):");
    println!("{}", render_table(&rows));
    let (foff, fon) = (&fruns[0].1, &fruns[1].1);
    let g = |r: &FtpRun| match r.duration {
        Some(d) if d.as_secs_f64() > 0.0 => r.received as f64 / d.as_secs_f64(),
        _ => 0.0,
    };
    if g(foff) > 0.0 {
        println!(
            "ftp goodput: {:.2}x — data segments are header-light already",
            g(fon) / g(foff)
        );
    }
    println!();
    println!("expected shape: >=3x interactive IP goodput (B/keystroke), ~9x typical;");
    println!("session chars/s gains bounded ~2.6x by frame overhead; ftp ~1.1x; all");
    println!("transfers intact, compressed streams resynchronise via 0x07 refreshes.");
}
