//! E9 — the MTU mismatch the gateway lives with: Ethernet carries 1500
//! octets, the AX.25 info field 256 (§2.2's driver uses the standard N1).
//! Ethernet-side datagrams bigger than the radio MTU must fragment at
//! the gateway and reassemble at the PC. This sweep measures the cost,
//! and compares TCP with fragment-sized vs MSS-clamped segments.

use apps::bulk::{BulkSender, BulkSink};
use apps::ping::Pinger;
use bench::banner;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP, GW_RADIO_IP, PC_IP};
use netstack::icmp::IcmpMessage;
use netstack::tcp::TcpConfig;
use sim::stats::Sweep;
use sim::SimDuration;

fn authorize(s: &mut gateway::scenario::PaperScenario) {
    let now = s.world.now;
    s.world.host_mut(s.pc).send_gate_message(
        now,
        GW_RADIO_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 14_400,
            auth: None,
        },
    );
}

fn main() {
    banner(
        "E9",
        "Ethernet (1500) to AX.25 (256) MTU mismatch at the gateway",
        "the driver encapsulates IP in 256-octet AX.25 frames; bigger \
         Ethernet-side packets fragment at the gateway (§2.2)",
    );
    println!("(pings Ethernet host → PC, payload sweep; gateway fragments onto pr0)\n");

    let mut sweep = Sweep::new("icmp_payload_B");
    for payload in [64usize, 200, 400, 600, 1000, 1400] {
        let mut s = paper_topology(PaperConfig::default(), 9000 + payload as u64);
        authorize(&mut s);
        // Warm ARP both ways first.
        let now = s.world.now;
        s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 1, 1, 8);
        s.world.run_for(SimDuration::from_secs(30));

        let frags_before = s.world.host(s.gw).pr_driver().unwrap().stats().ip_out;
        let pinger = Pinger::new(PC_IP, 2, 2, SimDuration::from_secs(120), payload);
        let report = pinger.report();
        s.world.add_app(s.ether_host, Box::new(pinger));
        s.world.run_for(SimDuration::from_secs(400));

        let mut r = report.borrow_mut();
        let frags = s.world.host(s.gw).pr_driver().unwrap().stats().ip_out - frags_before;
        sweep
            .row(payload as f64)
            .set("replies", f64::from(r.received))
            .set(
                "warm_rtt_s",
                r.rtts.min().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
            )
            .set("radio_pkts/ping", frags as f64 / 2.0)
            .set(
                "overhead_B/ping",
                // Extra IP(20) + AX.25(18) header bytes per extra fragment.
                ((frags as f64 / 2.0) - 1.0).max(0.0) * 38.0,
            );
    }
    println!("{}", sweep.render());

    // TCP comparison: default MSS 536 (fragments on pr0) vs MSS clamped
    // to fit the radio MTU (no fragmentation).
    println!("TCP 4 kB transfer Ethernet→PC, MSS variants:");
    let mut rows = vec![vec![
        "mss".to_string(),
        "segments".to_string(),
        "radio_ip_pkts".to_string(),
        "time_s".to_string(),
        "goodput_bps".to_string(),
        "ok".to_string(),
    ]];
    for mss in [536u16, 216] {
        let mut s = paper_topology(PaperConfig::default(), 9100 + u64::from(mss));
        authorize(&mut s);
        let sink = BulkSink::new(6100);
        let sink_report = sink.report();
        s.world.add_app(s.pc, Box::new(sink));
        let sender = BulkSender::new(PC_IP, 6100, 4000)
            .with_tcp(TcpConfig {
                mss,
                ..TcpConfig::default()
            })
            .with_start_delay(SimDuration::from_secs(10));
        let send_report = sender.report();
        s.world.add_app(s.ether_host, Box::new(sender));
        s.world.run_for(SimDuration::from_secs(2 * 3600));
        let tx = send_report.borrow();
        let radio_pkts = s.world.host(s.gw).pr_driver().unwrap().stats().ip_out;
        rows.push(vec![
            mss.to_string(),
            tx.tcb.segments_sent.to_string(),
            radio_pkts.to_string(),
            tx.duration()
                .map(|d| format!("{:.0}", d.as_secs_f64()))
                .unwrap_or("-".into()),
            tx.goodput_bps()
                .map(|g| format!("{g:.0}"))
                .unwrap_or("-".into()),
            (sink_report.borrow().bytes == 4000).to_string(),
        ]);
    }
    println!("{}", sim::stats::render_table(&rows));
    println!("expected shape: payloads ≤ ~200 B cross in one radio frame; larger pings");
    println!("split into ceil((28+payload)/232) fragments each way, and every one");
    println!("reassembles (replies=2 throughout) with RTT growing linearly in the");
    println!("fragment count. For TCP the trade is close: a 536-octet MSS fragments on");
    println!("the radio leg (more radio frames per segment) while a clamped MSS sends");
    println!("more segments and therefore more ACKs across the same half-duplex");
    println!("channel — measured, the larger MSS wins clearly. Both arrive intact.");
}
