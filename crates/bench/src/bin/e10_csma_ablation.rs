//! E10 — ablation of the MAC parameters behind §3's contention story:
//! p-persistence, slot time, and hidden terminals on the shared channel.
//! These are the knobs the KISS TNC exposes (TXDELAY, P, SlotTime) and
//! that every operator of the paper's network tuned by hand.

use ax25::addr::Ax25Addr;
use bench::banner;
use radio::channel::{Channel, StationId};
use radio::csma::MacConfig;
use radio::traffic::{BeaconConfig, BeaconStation};
use sim::stats::Sweep;
use sim::{Bandwidth, SimDuration, SimRng, SimTime};

/// Runs `n` stations offering Poisson traffic for `horizon`, returning
/// (clean receptions, corrupted receptions, offered utilization).
fn run(
    n: usize,
    persistence: f64,
    slot_ms: u64,
    mean_interval: SimDuration,
    hidden: bool,
    seed: u64,
) -> (u64, u64, f64) {
    let mut ch = Channel::new(Bandwidth::RADIO_1200);
    let mut rng = SimRng::seed_from(seed);
    let mac = MacConfig {
        persistence,
        slot_time: SimDuration::from_millis(slot_ms),
        ..MacConfig::default()
    };
    let mut stations: Vec<BeaconStation> = (0..n)
        .map(|i| {
            let sid = ch.add_station();
            BeaconStation::new(
                BeaconConfig {
                    from: Ax25Addr::parse_or_panic(&format!("S{i}")),
                    to: Ax25Addr::parse_or_panic("QST"),
                    frame_len: 100,
                    mean_interval,
                    start: SimTime::ZERO,
                    mac,
                },
                sid,
                rng.fork(),
            )
        })
        .collect();
    // One silent monitor hears everyone and is the measurement point.
    let _monitor = ch.add_station();
    if hidden {
        // Split the transmitters into two halves that cannot hear each
        // other (the monitor still hears all).
        for i in 0..n {
            for j in 0..n {
                if (i < n / 2) != (j < n / 2) {
                    ch.set_hears(StationId(i), StationId(j), false);
                }
            }
        }
    }

    let horizon = SimTime::from_secs(1800);
    let mut now = SimTime::ZERO;
    loop {
        for s in &mut stations {
            s.poll(now, &mut ch);
        }
        ch.advance(now);
        for s in &mut stations {
            s.poll(now, &mut ch);
        }
        let next = stations
            .iter()
            .filter_map(|s| s.next_deadline())
            .chain(ch.next_deadline())
            .min();
        match next {
            Some(t) if t <= horizon => now = t,
            _ => break,
        }
    }
    let st = ch.stats();
    // Count only the monitor's receptions (last station).
    // ChannelStats aggregates all; per-receiver counts are approximated
    // by dividing by hearers — instead, report aggregate ratios.
    (
        st.clean_receptions,
        st.corrupted_receptions,
        ch.offered_utilization(horizon),
    )
}

fn main() {
    banner(
        "E10",
        "CSMA parameter & hidden-terminal ablation",
        "channel contention is what makes \"the gateway slow considerably\" \
         (§3); p/SlotTime are the TNC's tuning knobs",
    );

    println!("persistence sweep (8 stations, 100 B frames, 6 s mean interval):\n");
    let mut sweep = Sweep::new("persistence");
    for &p in &[0.05, 0.1, 0.25, 0.5, 0.9, 1.0] {
        let (clean, corrupt, util) = run(8, p, 100, SimDuration::from_secs(6), false, 42);
        let loss = corrupt as f64 / (clean + corrupt).max(1) as f64 * 100.0;
        sweep
            .row(p)
            .set("clean_rx", clean as f64)
            .set("corrupt_rx", corrupt as f64)
            .set("loss_%", loss)
            .set("offered_util_%", util * 100.0);
    }
    println!("{}", sweep.render());

    println!("slot-time sweep (p = 0.25):\n");
    let mut sweep = Sweep::new("slot_ms");
    for &slot in &[20u64, 50, 100, 200, 400] {
        let (clean, corrupt, util) = run(8, 0.25, slot, SimDuration::from_secs(6), false, 43);
        let loss = corrupt as f64 / (clean + corrupt).max(1) as f64 * 100.0;
        sweep
            .row(slot as f64)
            .set("clean_rx", clean as f64)
            .set("corrupt_rx", corrupt as f64)
            .set("loss_%", loss)
            .set("offered_util_%", util * 100.0);
    }
    println!("{}", sweep.render());

    println!("hidden terminals (p = 0.25, slot 100 ms):\n");
    let mut sweep = Sweep::new("load(1/s)");
    for &per_station in &[0.05f64, 0.1, 0.2] {
        let mean = SimDuration::from_secs_f64(1.0 / per_station);
        let (c0, x0, _) = run(8, 0.25, 100, mean, false, 44);
        let (c1, x1, _) = run(8, 0.25, 100, mean, true, 44);
        let l0 = x0 as f64 / (c0 + x0).max(1) as f64 * 100.0;
        let l1 = x1 as f64 / (c1 + x1).max(1) as f64 * 100.0;
        sweep
            .row(per_station * 8.0)
            .set("loss_open_%", l0)
            .set("loss_hidden_%", l1);
    }
    println!("{}", sweep.render());
    println!("expected shape: aggressive persistence (p→1) collides heavily under");
    println!("load; small p with a sane slot time trades delay for clean deliveries;");
    println!("hidden terminals collide at the victim even when carrier sense is");
    println!("perfect at the senders — the physics digipeaters were invented for.");
}
