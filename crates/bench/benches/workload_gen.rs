//! Criterion benchmark for the workload subsystem (DESIGN.md §12).
//!
//! Two things are measured and one is asserted:
//!
//! * fleet schedule generation — the pure expansion of a [`FleetSpec`]
//!   into per-client session plans plus its FNV digest (the cost of
//!   standing up a city's worth of users);
//! * the recorder hot path — latency record + counter updates, the
//!   code every live flow runs per operation;
//! * **asserted**: the recorder hot path (record, observe, complete,
//!   merge, quantile) performs **zero** heap allocations under a
//!   counting global allocator. A fleet of ten thousand clients records
//!   from inside the per-shard step loop — a single allocation there
//!   would multiply across the whole city.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sim::SimDuration;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use workload::report::{fleet_table, FlowRecorder, LatencyHisto};
use workload::{build_schedule, Arrival, FleetSpec, Mix, Pacing};

/// Counts heap allocations so the benches can assert on them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn city_spec() -> FleetSpec {
    FleetSpec {
        clients_per_island: 4,
        sessions_per_client: 6,
        pacing: Pacing::Open(Arrival::Poisson(SimDuration::from_secs(5))),
        mix: Mix::interactive(),
        ..FleetSpec::default()
    }
}

fn bench_schedule(c: &mut Criterion) {
    let spec = city_spec();
    let mut g = c.benchmark_group("workload_gen");
    // 64 islands x 4 clients x 6 sessions = 1536 planned sessions.
    g.throughput(Throughput::Elements(64 * 4 * 6));
    g.bench_function("schedule_64islands", |b| {
        b.iter(|| {
            let s = build_schedule(64, black_box(&spec));
            black_box(s.digest())
        })
    });
    g.finish();
}

fn bench_recorder(c: &mut Criterion) {
    // Assert first: the whole per-operation recording path is
    // allocation-free once the recorder exists.
    let mut r = FlowRecorder::new();
    let mut other = FlowRecorder::new();
    let allocs = allocs_during(|| {
        for i in 0..10_000u64 {
            r.start();
            r.observe(SimDuration::from_micros(50 + (i * 37) % 900_000));
            r.complete(64);
            if i % 16 == 0 {
                r.timeout();
            }
        }
        other.merge(&r);
        black_box(other.latency.p50());
        black_box(other.latency.p95());
        black_box(other.latency.p99());
    });
    assert_eq!(
        allocs, 0,
        "recorder hot path must not allocate (got {allocs} allocations / 10k ops)"
    );

    let mut g = c.benchmark_group("workload_gen");
    g.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    g.bench_function("recorder_record", |b| {
        let mut r = FlowRecorder::new();
        b.iter(|| {
            i = i.wrapping_add(1);
            r.start();
            r.observe(SimDuration::from_micros(50 + (i * 37) % 900_000));
            r.complete(64);
            black_box(&r);
        })
    });
    g.bench_function("histo_quantile", |b| {
        let mut h = LatencyHisto::new();
        for k in 0..100_000u64 {
            h.record_us(10 + (k * 131) % 5_000_000);
        }
        b.iter(|| black_box(h.p99()))
    });
    g.bench_function("histo_merge", |b| {
        let mut a = LatencyHisto::new();
        let mut src = LatencyHisto::new();
        for k in 0..1_000u64 {
            src.record_us(k * 997 % 800_000);
        }
        b.iter(|| {
            a.merge(black_box(&src));
            black_box(&a);
        })
    });
    g.finish();

    // The rendered table allocates (strings) — just prove it works on
    // merged recorders.
    let table = fleet_table(&[("typist", &other)], SimDuration::from_secs(30));
    assert!(table.contains("p99"));
}

criterion_group!(benches, bench_schedule, bench_recorder);
criterion_main!(benches);
