//! Criterion benchmark for the paper's "most difficult routine": the
//! per-character receive interrupt handler (`rint`), measured over a full
//! frame — the work the gateway's CPU does for every frame a promiscuous
//! TNC passes up (§2.2/§3).

use ax25::addr::Ax25Addr;
use ax25::frame::{Frame, Pid};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gateway::prdriver::{PacketRadioDriver, PrConfig};
use netstack::ip::{Ipv4Packet, Proto};
use sim::SimTime;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn wire_for(dest: &str, payload_len: usize) -> Vec<u8> {
    let ip = Ipv4Packet::new(
        Ipv4Addr::new(44, 24, 0, 5),
        Ipv4Addr::new(44, 24, 0, 28),
        Proto::Udp,
        vec![0x33; payload_len],
    );
    let frame = Frame::ui(
        Ax25Addr::parse_or_panic(dest),
        Ax25Addr::parse_or_panic("KB7DZ"),
        Pid::Ip,
        ip.encode(),
    );
    kiss::encode(0, kiss::Command::Data, &frame.encode())
}

fn bench_rint(c: &mut Criterion) {
    let mut g = c.benchmark_group("driver_rint");
    for (label, dest) in [("frame_for_us", "N7AKR-1"), ("frame_for_other", "W1GOH")] {
        let wire = wire_for(dest, 180);
        g.throughput(Throughput::Bytes(wire.len() as u64));
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    PacketRadioDriver::new(
                        PrConfig::new(Ax25Addr::parse_or_panic("N7AKR-1")),
                        Ipv4Addr::new(44, 24, 0, 28),
                    )
                },
                |mut drv| {
                    let mut out = None;
                    for &byte in &wire {
                        let (ev, _tx) = drv.rint(SimTime::ZERO, byte);
                        if ev.is_some() {
                            out = ev;
                        }
                    }
                    black_box(out)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_output(c: &mut Criterion) {
    let mut g = c.benchmark_group("driver_output");
    g.bench_function("encapsulate_ip_cached_arp", |b| {
        b.iter_batched(
            || {
                let mut drv = PacketRadioDriver::new(
                    PrConfig::new(Ax25Addr::parse_or_panic("N7AKR-1")),
                    Ipv4Addr::new(44, 24, 0, 28),
                );
                drv.arp_mut().insert_static(
                    Ipv4Addr::new(44, 24, 0, 5),
                    gateway::hwaddr::Ax25Hw::direct(Ax25Addr::parse_or_panic("KB7DZ")).encode(),
                );
                drv
            },
            |mut drv| {
                let p = Ipv4Packet::new(
                    Ipv4Addr::new(44, 24, 0, 28),
                    Ipv4Addr::new(44, 24, 0, 5),
                    Proto::Udp,
                    vec![7; 180],
                );
                black_box(drv.output(SimTime::ZERO, p, Ipv4Addr::new(44, 24, 0, 5)))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_rint, bench_output);
criterion_main!(benches);
