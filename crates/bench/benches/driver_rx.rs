//! Criterion benchmark for the paper's "most difficult routine": the
//! receive interrupt handler (`rint`), measured over a full frame — the
//! work the gateway's CPU does for every frame a promiscuous TNC passes up
//! (§2.2/§3). The hot path is the batched `rint_slice` (SWAR deframing
//! over whole serial bursts); the per-byte scalar path it must match is
//! benchmarked separately in `byte_kernels`.
//!
//! The binary installs a counting global allocator so that, besides
//! throughput, it reports how many heap allocations each path performs.
//! The not-for-us fast path (the §3 promiscuous load) must perform zero.

use ax25::addr::Ax25Addr;
use ax25::frame::{Frame, Pid};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gateway::prdriver::{PacketRadioDriver, PrConfig};
use netstack::ip::{Ipv4Packet, Proto};
use sim::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations so the benches can report them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn wire_for(dest: &str, payload_len: usize) -> Vec<u8> {
    let ip = Ipv4Packet::new(
        Ipv4Addr::new(44, 24, 0, 5),
        Ipv4Addr::new(44, 24, 0, 28),
        Proto::Udp,
        vec![0x33; payload_len],
    );
    let frame = Frame::ui(
        Ax25Addr::parse_or_panic(dest),
        Ax25Addr::parse_or_panic("KB7DZ"),
        Pid::Ip,
        ip.encode(),
    );
    kiss::encode(0, kiss::Command::Data, &frame.encode())
}

fn gateway_driver() -> PacketRadioDriver {
    PacketRadioDriver::new(
        PrConfig::new(Ax25Addr::parse_or_panic("N7AKR-1")),
        Ipv4Addr::new(44, 24, 0, 28),
    )
}

fn bench_rint(c: &mut Criterion) {
    let mut g = c.benchmark_group("driver_rint");
    for (label, dest) in [("frame_for_us", "N7AKR-1"), ("frame_for_other", "W1GOH")] {
        let wire = wire_for(dest, 180);
        g.throughput(Throughput::Bytes(wire.len() as u64));
        // Steady state: one long-lived driver, one reusable sink, so the
        // measurement covers the per-frame cost and not driver setup.
        let mut drv = gateway_driver();
        let mut tx: Vec<sim::PacketBuf> = Vec::new();
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut out = None;
                drv.rint_slice(SimTime::ZERO, &wire, &mut tx, |_, ev| out = Some(ev));
                tx.clear();
                black_box(out)
            })
        });
        let allocs = allocs_during(|| {
            drv.rint_slice(SimTime::ZERO, &wire, &mut tx, |_, ev| {
                black_box(ev);
            });
            tx.clear();
        });
        eprintln!("driver_rint/{label}: {allocs} heap allocations per frame");
        if label == "frame_for_other" {
            assert_eq!(
                allocs, 0,
                "the not-for-us fast path must not touch the heap"
            );
        }
    }
    g.finish();
}

fn bench_output(c: &mut Criterion) {
    let mut g = c.benchmark_group("driver_output");
    // Warm driver: static ARP entry, pool primed by the first send.
    let mut drv = gateway_driver();
    drv.arp_mut().insert_static(
        Ipv4Addr::new(44, 24, 0, 5),
        gateway::hwaddr::Ax25Hw::direct(Ax25Addr::parse_or_panic("KB7DZ")).encode(),
    );
    let mut tx: Vec<sim::PacketBuf> = Vec::new();
    g.bench_function("encapsulate_ip_cached_arp", |b| {
        b.iter(|| {
            let p = Ipv4Packet::new(
                Ipv4Addr::new(44, 24, 0, 28),
                Ipv4Addr::new(44, 24, 0, 5),
                Proto::Udp,
                vec![7; 180],
            );
            drv.output(SimTime::ZERO, p, Ipv4Addr::new(44, 24, 0, 5), &mut tx);
            black_box(tx.len());
            tx.clear(); // recycles the transmit buffer into the pool
        })
    });
    let stats = drv.pool_stats();
    eprintln!(
        "driver_output/encapsulate_ip_cached_arp: pool hits {} misses {} high water {}",
        stats.hits.get(),
        stats.misses.get(),
        stats.high_water
    );
    g.finish();
}

criterion_group!(benches, bench_rint, bench_output);
criterion_main!(benches);
