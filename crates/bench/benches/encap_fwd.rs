//! Criterion benchmark for the encapsulated-forwarding hot path (§4.2's
//! multi-gateway mesh): a gateway wrapping a forwarded datagram in an
//! outer IPIP header toward a tunnel endpoint, and the peer gateway
//! stripping it. With a pooled buffer leased with header headroom, both
//! directions must stay zero-allocation, like the rest of the datapath.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use encap::ipip::{decap_in_place, encap_in_place, OUTER_HEADER_LEN};
use encap::table::EncapTable;
use netstack::ip::{Ipv4Packet, Proto};
use netstack::route::Prefix;
use sim::{BufPool, SimDuration};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations so the benches can report them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

const WEST_GW: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 100);
const EAST_GW: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 101);

fn bench_encap_fwd(c: &mut Criterion) {
    let mut g = c.benchmark_group("encap_fwd");
    // The datagram a gateway forwards: a 180-byte UDP payload headed for
    // the east subnet.
    let inner = Ipv4Packet::new(
        Ipv4Addr::new(128, 95, 1, 4),
        Ipv4Addr::new(44, 56, 0, 5),
        Proto::Udp,
        vec![0x33; 180],
    )
    .encode();
    g.throughput(Throughput::Bytes(inner.len() as u64));

    // Steady state: one pool, one table; the first lease primes the pool.
    let pool = BufPool::new(2048);
    let mut table = EncapTable::new(SimDuration::from_secs(60));
    table.add_static(Prefix::new(Ipv4Addr::new(44, 56, 0, 0), 16), EAST_GW, 1);

    let mut roundtrip = || {
        // Gateway out: table hit, then prepend the outer header into the
        // leased headroom.
        let endpoint = table.lookup(Ipv4Addr::new(44, 56, 0, 5)).unwrap();
        let mut buf = pool.take_with_headroom(OUTER_HEADER_LEN);
        buf.extend_from_slice(&inner);
        encap_in_place(&mut buf, WEST_GW, endpoint, 64);
        // Peer gateway in: verify and strip the outer header in place.
        let outer = decap_in_place(&mut buf).unwrap();
        black_box((outer.src, buf.as_slice().len()));
        // Dropping `buf` recycles it into the pool.
    };
    g.bench_function("lookup_encap_decap", |b| b.iter(&mut roundtrip));

    let allocs = allocs_during(&mut roundtrip);
    eprintln!("encap_fwd/lookup_encap_decap: {allocs} heap allocations per packet");
    assert_eq!(
        allocs, 0,
        "the encap/decap fast path must not touch the heap"
    );
    g.finish();
}

criterion_group!(benches, bench_encap_fwd);
criterion_main!(benches);
