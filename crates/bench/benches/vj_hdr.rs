//! Criterion benchmark for the RFC 1144 header compression hot path: the
//! steady-state keystroke stream (one byte of payload, SPECIAL_D deltas)
//! compressed and reconstructed. Both directions run on stack buffers and
//! a reused output `Vec`, and both must stay zero-allocation like the
//! rest of the datapath.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use vj::{VjCompressor, VjConfig, VjDecompressor, VjOutcome};

/// Counts heap allocations so the benches can report them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// One keystroke datagram: 40-byte TCP/IP header + 1 payload byte.
const DGRAM_LEN: usize = 41;

/// Writes packet `n` of the keystroke stream into `buf`: seq and IP ID
/// advance by one each packet, everything else is constant, and the TCP
/// checksum is correct (the decompressor verifies it).
fn make_packet(buf: &mut [u8; DGRAM_LEN], n: u32) {
    *buf = [0; DGRAM_LEN];
    buf[0] = 0x45;
    buf[2..4].copy_from_slice(&(DGRAM_LEN as u16).to_be_bytes());
    buf[4..6].copy_from_slice(&((7 + n) as u16).to_be_bytes());
    buf[8] = 30;
    buf[9] = 6;
    buf[12..16].copy_from_slice(&[44, 24, 0, 5]);
    buf[16..20].copy_from_slice(&[128, 95, 1, 4]);
    buf[20..22].copy_from_slice(&1024u16.to_be_bytes());
    buf[22..24].copy_from_slice(&7u16.to_be_bytes());
    buf[24..28].copy_from_slice(&(100 + n).to_be_bytes());
    buf[28..32].copy_from_slice(&9000u32.to_be_bytes());
    buf[32] = 5 << 4;
    buf[33] = 0x10 | 0x08; // ACK + PSH
    buf[34..36].copy_from_slice(&4096u16.to_be_bytes());
    buf[40] = b'a' + (n % 26) as u8;
    let ck = tcp_checksum(buf);
    buf[36..38].copy_from_slice(&ck.to_be_bytes());
    // IP header checksum: the compressor ignores it, but keep the packet
    // honest for the refresh path.
    buf[10..12].copy_from_slice(&[0, 0]);
    let ipck = ones_complement(&buf[..20], &[]);
    buf[10..12].copy_from_slice(&ipck.to_be_bytes());
}

/// RFC 1071 checksum over two slices (on the stack, no allocation).
fn ones_complement(a: &[u8], b: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut carry: Option<u8> = None;
    for &byte in a.iter().chain(b) {
        match carry.take() {
            None => carry = Some(byte),
            Some(hi) => sum += u32::from(u16::from_be_bytes([hi, byte])),
        }
    }
    if let Some(hi) = carry {
        sum += u32::from(u16::from_be_bytes([hi, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

fn tcp_checksum(dgram: &[u8; DGRAM_LEN]) -> u16 {
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&dgram[12..16]);
    pseudo[4..8].copy_from_slice(&dgram[16..20]);
    pseudo[9] = 6;
    pseudo[10..12].copy_from_slice(&((DGRAM_LEN - 20) as u16).to_be_bytes());
    ones_complement(&pseudo, &dgram[20..])
}

fn bench_vj_hdr(c: &mut Criterion) {
    let mut g = c.benchmark_group("vj_hdr");
    g.throughput(Throughput::Bytes(DGRAM_LEN as u64));

    // --- compress only ------------------------------------------------------
    let mut comp = VjCompressor::new(VjConfig::default());
    let mut n = 0u32;
    let mut buf = [0u8; DGRAM_LEN];
    let mut compress = || {
        make_packet(&mut buf, n);
        n += 1;
        black_box(comp.compress(&mut buf));
    };
    compress(); // packet 0 seeds the slot (refresh); steady state after
    g.bench_function("compress", |b| b.iter(&mut compress));
    let allocs = allocs_during(&mut compress);
    eprintln!("vj_hdr/compress: {allocs} heap allocations per packet");
    assert_eq!(
        allocs, 0,
        "the VJ compress fast path must not touch the heap"
    );

    // --- compress + decompress ----------------------------------------------
    let mut comp = VjCompressor::new(VjConfig::default());
    let mut deco = VjDecompressor::new(VjConfig::default());
    let mut out = Vec::with_capacity(4 * DGRAM_LEN);
    let mut m = 0u32;
    let mut roundtrip = || {
        let mut dgram = [0u8; DGRAM_LEN];
        make_packet(&mut dgram, m);
        m += 1;
        match comp.compress(&mut dgram) {
            VjOutcome::Compressed { start } => {
                deco.decompress(&dgram[start..], &mut out).expect("in sync");
            }
            VjOutcome::Uncompressed => {
                deco.refresh(&mut dgram).expect("refresh ok");
                out.clear();
                out.extend_from_slice(&dgram);
            }
            VjOutcome::Ip => unreachable!("keystroke stream is compressible"),
        }
        black_box(out.len());
    };
    roundtrip(); // refresh seeds the slot and warms `out`
    g.bench_function("compress_decompress", |b| b.iter(&mut roundtrip));
    let allocs = allocs_during(&mut roundtrip);
    eprintln!("vj_hdr/compress_decompress: {allocs} heap allocations per packet");
    assert_eq!(
        allocs, 0,
        "the VJ decompress fast path must not touch the heap"
    );
    g.finish();
}

criterion_group!(benches, bench_vj_hdr);
criterion_main!(benches);
