//! Criterion benchmark for the forwarding-plane hot path (DESIGN.md
//! §14): a next-hop-cache hit against compiled-LPM walks and linear
//! table scans at 16, 256, and 4096 routes. Every measured path must be
//! allocation-free under the counting allocator — lookups happen per
//! packet inside `send_ip`, with the same discipline as the filter
//! engine's eval path — and two ratios are asserted outside `--test`
//! mode: the cache hit undercuts the 4096-route linear walk by at least
//! 10× (the point of memoizing the decision), and the compiled walk
//! beats the linear scan once the table holds 256 routes or more (the
//! point of compiling).

use criterion::{criterion_group, criterion_main, Criterion};
use netstack::fwd::{FwdCache, FwdDecision, FwdKind, FwdProbe};
use netstack::route::{Prefix, RouteTable};
use netstack::stack::IfaceId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the benches can report them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// `n` distinct /24 routes none of which match the probe destination,
/// plus a default route — the probe therefore fails every specific
/// prefix and lands on the default, the worst case a linear scan faces
/// and the case the compiled trie answers in a bounded walk.
fn table(n: usize) -> RouteTable {
    let mut rt = RouteTable::new();
    for i in 0..n {
        let addr = Ipv4Addr::from(0x2C00_0000 | ((i as u32) << 8));
        rt.add(
            Prefix::new(addr, 24),
            Some(Ipv4Addr::new(10, 0, 0, 1)),
            IfaceId::new(0),
        );
    }
    rt.add(
        Prefix::default_route(),
        Some(Ipv4Addr::new(10, 0, 0, 254)),
        IfaceId::new(1),
    );
    rt
}

/// The steady-state probe: a destination only the default route covers.
const PROBE: Ipv4Addr = Ipv4Addr::new(9, 9, 9, 9);

/// Mean ns/lookup over `iters` calls of `f` (for the acceptance ratios).
fn time_lookups(iters: u32, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn bench_route_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_lookup");

    // --- next-hop-cache hit (decision replayed, no walk at all) -------------
    let mut cache = FwdCache::new(12);
    let decision = FwdDecision::Via {
        prefix: Prefix::default_route(),
        iface: IfaceId::new(1),
        hop: Ipv4Addr::new(10, 0, 0, 254),
        encap: None,
    };
    cache.store(PROBE, FwdKind::Full, 7, 3, decision);
    g.bench_function("cache_hit", |b| {
        b.iter(|| black_box(cache.probe(black_box(PROBE), FwdKind::Full, 7, 3)))
    });
    let allocs = allocs_during(|| {
        black_box(cache.probe(PROBE, FwdKind::Full, 7, 3));
    });
    eprintln!("route_lookup/cache_hit: {allocs} heap allocations per probe");
    assert_eq!(allocs, 0, "the cache-hit path must not touch the heap");
    assert!(
        matches!(cache.probe(PROBE, FwdKind::Full, 7, 3), FwdProbe::Hit(d) if d == decision),
        "the probe must replay the stored decision"
    );

    // --- compiled walk and linear scan at each table size -------------------
    for n in [16usize, 256, 4096] {
        let mut rt = table(n);
        rt.lookup_fast(PROBE); // compile before timing
        g.bench_function(&format!("compiled_walk_{n}_routes"), |b| {
            b.iter(|| black_box(rt.lookup_fast(black_box(PROBE))))
        });
        let allocs = allocs_during(|| {
            black_box(rt.lookup_fast(PROBE));
        });
        eprintln!("route_lookup/compiled_walk_{n}: {allocs} heap allocations per lookup");
        assert_eq!(allocs, 0, "the compiled walk must not touch the heap");

        g.bench_function(&format!("linear_scan_{n}_routes"), |b| {
            b.iter(|| black_box(rt.lookup(black_box(PROBE))))
        });
        let allocs = allocs_during(|| {
            black_box(rt.lookup(PROBE));
        });
        eprintln!("route_lookup/linear_scan_{n}: {allocs} heap allocations per lookup");
        assert_eq!(allocs, 0, "the linear scan must not touch the heap");
    }
    g.finish();

    // --- the acceptance ratios ----------------------------------------------
    // Self-timed (Criterion keeps its medians to itself) and skipped under
    // --test, which runs each routine once without meaningful timing.
    if !std::env::args().any(|a| a == "--test") {
        let mut rt4096 = table(4096);
        let mut rt256 = table(256);
        rt4096.lookup_fast(PROBE);
        rt256.lookup_fast(PROBE);
        time_lookups(100_000, || {
            black_box(cache.probe(PROBE, FwdKind::Full, 7, 3));
        });
        let hit = time_lookups(1_000_000, || {
            black_box(cache.probe(PROBE, FwdKind::Full, 7, 3));
        });
        let linear = time_lookups(100_000, || {
            black_box(rt4096.lookup(PROBE));
        });
        let compiled = time_lookups(1_000_000, || {
            black_box(rt4096.lookup_fast(PROBE));
        });
        let linear256 = time_lookups(300_000, || {
            black_box(rt256.lookup(PROBE));
        });
        let compiled256 = time_lookups(1_000_000, || {
            black_box(rt256.lookup_fast(PROBE));
        });
        eprintln!(
            "route_lookup: cache hit {hit:.1} ns vs 4096-route linear {linear:.1} ns \
             ({:.0}×); compiled {compiled:.1} ns",
            linear / hit
        );
        eprintln!(
            "route_lookup: 256 routes — compiled {compiled256:.1} ns vs linear {linear256:.1} ns"
        );
        assert!(
            linear >= 10.0 * hit,
            "next-hop cache must be ≥10× cheaper than the 4096-route linear scan \
             (hit {hit:.1} ns, linear {linear:.1} ns)"
        );
        assert!(
            compiled256 < linear256,
            "the compiled walk must beat the linear scan at 256 routes \
             (compiled {compiled256:.1} ns, linear {linear256:.1} ns)"
        );
    }
}

criterion_group!(benches, bench_route_lookup);
criterion_main!(benches);
