//! Criterion benchmarks for the bulk byte kernels against their scalar
//! reference paths (DESIGN.md §9): KISS deframing and escaping, the
//! AX.25 CRC-16/X.25, and the RFC 1071 internet checksum.
//!
//! Each kernel is measured next to the per-byte/bitwise implementation it
//! must stay bit-identical to, so the speedup — and any regression — is
//! visible in one report. A counting global allocator asserts the bulk
//! paths never touch the heap in steady state.

use ax25::fcs::{crc16_x25, crc16_x25_ref};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sim::wire::{internet_checksum, internet_checksum_ref};
use sim::ByteSink;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations so the benches can assert zero on hot paths.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// A frame-sized payload with both escape triggers present, the shape the
/// gateway sees from a promiscuous TNC.
fn frame_payload() -> Vec<u8> {
    let mut payload = vec![0u8; 220];
    for (i, b) in payload.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(31).wrapping_add(7);
    }
    payload[40] = kiss::FEND;
    payload[80] = kiss::FESC;
    payload
}

/// A serial burst of KISS data frames carrying [`frame_payload`].
fn kiss_burst() -> Vec<u8> {
    let frame = kiss::encode(0, kiss::Command::Data, &frame_payload());
    let mut burst = Vec::new();
    for _ in 0..8 {
        burst.extend_from_slice(&frame);
    }
    burst
}

fn bench_deframe(c: &mut Criterion) {
    let burst = kiss_burst();
    let mut g = c.benchmark_group("byte_kernels");
    g.throughput(Throughput::Bytes(burst.len() as u64));
    let mut bulk = kiss::Deframer::new();
    g.bench_function("deframe_bulk", |b| {
        b.iter(|| {
            let mut frames = 0u32;
            bulk.push_slice(&burst, |_, f| frames += f.payload.len() as u32);
            black_box(frames)
        })
    });
    let allocs = allocs_during(|| {
        bulk.push_slice(&burst, |_, f| {
            black_box(f.payload.len());
        });
    });
    assert_eq!(allocs, 0, "warm bulk deframing must not touch the heap");
    let mut scalar = kiss::Deframer::new();
    g.bench_function("deframe_per_byte", |b| {
        b.iter(|| {
            let mut frames = 0u32;
            for &byte in &burst {
                if let Some(f) = scalar.push(byte) {
                    frames += f.payload.len() as u32;
                }
            }
            black_box(frames)
        })
    });
    g.finish();
}

fn bench_escape(c: &mut Criterion) {
    let payload = frame_payload();
    let mut g = c.benchmark_group("byte_kernels");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    let mut out: Vec<u8> = Vec::with_capacity(payload.len() * 2 + 8);
    g.bench_function("escape_bulk", |b| {
        b.iter(|| {
            out.clear();
            kiss::encode_frame_into(0, kiss::Command::Data, &mut out, |esc| {
                esc.put_slice(&payload);
            });
            black_box(out.len())
        })
    });
    let allocs = allocs_during(|| {
        out.clear();
        kiss::encode_frame_into(0, kiss::Command::Data, &mut out, |esc| {
            esc.put_slice(&payload);
        });
    });
    assert_eq!(allocs, 0, "warm bulk escaping must not touch the heap");
    g.bench_function("escape_per_byte", |b| {
        b.iter(|| {
            out.clear();
            kiss::encode_frame_into(0, kiss::Command::Data, &mut out, |esc| {
                for &byte in &payload {
                    esc.put(byte);
                }
            });
            black_box(out.len())
        })
    });
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let data: Vec<u8> = (0..256u32)
        .map(|i| (i.wrapping_mul(37) >> 2) as u8)
        .collect();
    let mut g = c.benchmark_group("byte_kernels");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("crc16_sliced", |b| b.iter(|| black_box(crc16_x25(&data))));
    let allocs = allocs_during(|| {
        black_box(crc16_x25(&data));
    });
    assert_eq!(allocs, 0, "CRC kernel must not touch the heap");
    g.bench_function("crc16_bitwise", |b| {
        b.iter(|| black_box(crc16_x25_ref(&data)))
    });
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    // An MTU-ish datagram body plus a small pseudo-header part, the shape
    // the TCP/UDP checksummers pass in.
    let header = vec![0x11u8; 12];
    let body: Vec<u8> = (0..1480u32)
        .map(|i| (i.wrapping_mul(101) >> 3) as u8)
        .collect();
    let mut g = c.benchmark_group("byte_kernels");
    g.throughput(Throughput::Bytes((header.len() + body.len()) as u64));
    g.bench_function("checksum_folded", |b| {
        b.iter(|| black_box(internet_checksum(&[&header, &body])))
    });
    let allocs = allocs_during(|| {
        black_box(internet_checksum(&[&header, &body]));
    });
    assert_eq!(allocs, 0, "checksum kernel must not touch the heap");
    g.bench_function("checksum_scalar", |b| {
        b.iter(|| black_box(internet_checksum_ref(&[&header, &body])))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_deframe,
    bench_escape,
    bench_crc,
    bench_checksum
);
criterion_main!(benches);
