//! Criterion micro-benchmarks for the wire codecs: the per-packet work a
//! real kernel driver would do in interrupt context.

use ax25::addr::Ax25Addr;
use ax25::fcs::crc16_x25;
use ax25::frame::{Frame, Pid};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use netstack::ip::{Ipv4Packet, Proto};
use netstack::tcp::{TcpFlags, TcpSegment};
use netstack::udp::UdpDatagram;
use sim::wire::internet_checksum;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn sample_frame(info_len: usize) -> Frame {
    Frame::ui(
        Ax25Addr::parse_or_panic("N7AKR-1"),
        Ax25Addr::parse_or_panic("KB7DZ"),
        Pid::Ip,
        vec![0xA5; info_len],
    )
    .via(&[
        Ax25Addr::parse_or_panic("WA6BEV-1"),
        Ax25Addr::parse_or_panic("K3MC-2"),
    ])
}

fn bench_kiss(c: &mut Criterion) {
    let mut g = c.benchmark_group("kiss");
    let payload: Vec<u8> = (0..256).map(|i| (i % 256) as u8).collect();
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("encode_256B", |b| {
        b.iter(|| kiss::encode(0, kiss::Command::Data, black_box(&payload)))
    });
    let wire = kiss::encode(0, kiss::Command::Data, &payload);
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("deframe_256B_per_byte", |b| {
        b.iter_batched(
            kiss::Deframer::new,
            |mut d| {
                // The deframed payload borrows the deframer, so reduce it
                // to a value that doesn't: its length.
                let mut out = 0usize;
                for &byte in &wire {
                    if let Some(f) = d.push(byte) {
                        out = f.payload.len();
                    }
                }
                black_box(out)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ax25(c: &mut Criterion) {
    let mut g = c.benchmark_group("ax25");
    let frame = sample_frame(200);
    g.bench_function("frame_encode", |b| b.iter(|| black_box(&frame).encode()));
    let bytes = frame.encode();
    g.bench_function("frame_decode", |b| {
        b.iter(|| Frame::decode(black_box(&bytes)).unwrap())
    });
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("crc16_x25", |b| b.iter(|| crc16_x25(black_box(&bytes))));
    g.finish();
}

fn bench_ip_tcp_udp(c: &mut Criterion) {
    let mut g = c.benchmark_group("inet");
    let src = Ipv4Addr::new(44, 24, 0, 5);
    let dst = Ipv4Addr::new(128, 95, 1, 4);
    let packet = Ipv4Packet::new(src, dst, Proto::Tcp, vec![0x42; 512]);
    g.bench_function("ipv4_encode_512B", |b| {
        b.iter(|| black_box(&packet).encode())
    });
    let bytes = packet.encode();
    g.bench_function("ipv4_decode_512B", |b| {
        b.iter(|| Ipv4Packet::decode(black_box(&bytes)).unwrap())
    });
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("internet_checksum_532B", |b| {
        b.iter(|| internet_checksum(&[black_box(&bytes)]))
    });

    let seg = TcpSegment {
        src_port: 1025,
        dst_port: 23,
        seq: 1,
        ack: 2,
        flags: TcpFlags {
            ack: true,
            psh: true,
            ..TcpFlags::default()
        },
        window: 4096,
        mss: None,
        payload: vec![0x55; 512],
    };
    g.bench_function("tcp_encode_512B", |b| {
        b.iter(|| black_box(&seg).encode(src, dst))
    });
    let tbytes = seg.encode(src, dst);
    g.bench_function("tcp_decode_512B", |b| {
        b.iter(|| TcpSegment::decode(black_box(&tbytes), src, dst).unwrap())
    });

    let dg = UdpDatagram {
        src_port: 2001,
        dst_port: 1235,
        payload: vec![9; 128],
    };
    g.bench_function("udp_roundtrip_128B", |b| {
        b.iter(|| {
            let e = black_box(&dg).encode(src, dst);
            UdpDatagram::decode(&e, src, dst).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kiss, bench_ax25, bench_ip_tcp_udp);
criterion_main!(benches);
