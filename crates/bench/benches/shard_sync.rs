//! Criterion benchmark for the sharded engine's cross-shard hand-off
//! (DESIGN.md §11). One claim is asserted, not just measured: a *warm*
//! hand-off — spare-pool buffer reuse, `clone_into` copy, mailbox push,
//! shard-side pop, buffer return — performs **zero** heap allocations per
//! frame. A counting global allocator backs the assertion, and a whole
//! warmed-up mesh run double-checks it end to end through the world's
//! mailbox growth counters.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ether::EtherFrame;
use sim::mailbox::Mailbox;
use sim::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations so the benches can report them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// One coordinator→shard hand-off, exactly as the engine performs it:
/// recycle a buffer from the spare pool, copy the wire frame into it,
/// stamp and push it into the shard's mailbox; the shard pops it at its
/// delivery time and the consumed buffer goes back to the pool.
fn handoff(
    src: &EtherFrame,
    mailbox: &mut Mailbox<(SimTime, usize, EtherFrame)>,
    spare: &mut Vec<EtherFrame>,
    t: SimTime,
) {
    let mut buf = spare.pop().unwrap_or_else(EtherFrame::empty);
    src.clone_into(&mut buf);
    mailbox.push((t, 0, buf));
    let (_, _, frame) = mailbox.pop().expect("just pushed");
    spare.push(frame);
}

fn bench_handoff(c: &mut Criterion) {
    let src = EtherFrame::new(
        ether::MacAddr::local(1),
        ether::MacAddr::local(2),
        ether::EtherType::Ipv4,
        vec![0x5a; 256],
    );
    let mut mailbox = Mailbox::with_capacity(4);
    let mut spare: Vec<EtherFrame> = Vec::with_capacity(4);

    // Warm-up: size the spare buffer's payload and the ring once.
    handoff(&src, &mut mailbox, &mut spare, SimTime::ZERO);

    // The assertion behind §11's acceptance line: a warm hand-off is
    // allocation-free, no matter how many frames cross.
    let allocs = allocs_during(|| {
        for i in 0..10_000u64 {
            handoff(&src, &mut mailbox, &mut spare, SimTime::from_nanos(i));
        }
    });
    assert_eq!(
        allocs, 0,
        "warm cross-shard hand-off must not allocate (saw {allocs} allocations / 10k frames)"
    );
    assert_eq!(mailbox.stats().grows, 0, "pre-sized ring must not grow");

    let mut g = c.benchmark_group("shard_sync");
    g.throughput(Throughput::Elements(1));
    g.bench_function("handoff_warm", |b| {
        b.iter(|| {
            handoff(
                black_box(&src),
                &mut mailbox,
                &mut spare,
                SimTime::from_nanos(7),
            );
        })
    });
    g.finish();
}

/// End-to-end: a warmed-up two-island mesh keeps exchanging cross-shard
/// pings without a single mailbox ring growth, and the sharded run stays
/// digest-identical to the reference (checked exhaustively in the
/// `shard_equivalence` suite; here we only keep the rings honest).
fn bench_mesh_warm(c: &mut Criterion) {
    fn setup() -> gateway::scenario::MeshNet {
        let mut m = gateway::scenario::mesh(2, 1, 9);
        for (g, island) in m.hosts.iter().enumerate() {
            let p = apps::ping::Pinger::new(
                gateway::scenario::city::host_ip((g + 1) % 2, 0),
                g as u16,
                20,
                SimDuration::from_secs(3),
                64,
            )
            .delayed(SimDuration::from_millis(300 + 700 * g as u64));
            m.world.add_app(island[0], Box::new(p));
        }
        m.world.set_workers(2);
        m
    }

    // Warm a world, then assert steady state: more hand-offs, zero ring
    // growth.
    let mut m = setup();
    m.world.run_for(SimDuration::from_secs(30));
    let warm = m.world.mailbox_stats();
    assert!(warm.pushed > 0, "pings must cross shards");
    m.world.run_for(SimDuration::from_secs(30));
    let done = m.world.mailbox_stats();
    assert!(done.pushed > warm.pushed, "traffic must keep flowing");
    assert_eq!(done.grows, warm.grows, "warm mailbox rings must not grow");

    let mut g = c.benchmark_group("shard_sync");
    g.sample_size(10);
    g.bench_function("mesh2_60s_2workers", |b| {
        b.iter_batched(
            setup,
            |mut m| {
                m.world.run_for(SimDuration::from_secs(60));
                black_box(m.world.now)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_handoff, bench_mesh_warm);
criterion_main!(benches);
