//! Criterion benchmark for the compiled packet-filter hot path
//! (DESIGN.md §13): a decision-cache hit against full rule walks at 16,
//! 256, and 4096 compiled rules. Every measured path must be
//! allocation-free under the counting allocator — the engine judges
//! packets inside `rint`, on stack buffers, with the same discipline as
//! the byte kernels — and the cache hit must undercut the 4096-rule walk
//! by at least 10× (the point of caching; asserted outside `--test`
//! mode, where nothing is actually timed).

use criterion::{criterion_group, criterion_main, Criterion};
use filter::{Action, FilterConfig, FilterEngine, LimitConfig, PacketMeta, Rule};
use netstack::route::Prefix;
use sim::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations so the benches can report them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// `n` distinct /32-source rules, none of which match the probe packet,
/// so an uncached evaluation must consider the whole table — the
/// worst-case walk the decision cache exists to amortize.
fn miss_rules(n: usize) -> Vec<Rule> {
    (0..n)
        .map(|i| {
            let addr = Ipv4Addr::from(0x0A00_0000 | i as u32);
            Rule::any(Action::Deny).from(Prefix::new(addr, 32)).proto(6)
        })
        .collect()
}

/// The steady-state probe: one TCP flow, ports visible.
fn probe() -> PacketMeta {
    PacketMeta {
        src: u32::from(Ipv4Addr::new(44, 24, 0, 5)),
        dst: u32::from(Ipv4Addr::new(128, 95, 1, 4)),
        proto: 6,
        dport: 25,
        has_port: false, // port-independent walk: cacheable
    }
}

fn engine(rules: Vec<Rule>, cache_bits: u8) -> FilterEngine {
    FilterEngine::new(FilterConfig {
        gate: None,
        rules,
        default_action: Action::Allow,
        cache_bits,
        limit: LimitConfig::default(),
    })
}

/// Mean ns/eval over `iters` evaluations (for the hit-vs-walk ratio).
fn time_evals(e: &mut FilterEngine, m: &PacketMeta, iters: u32) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        black_box(e.eval(SimTime::ZERO, black_box(m)));
    }
    t.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn bench_filter_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter_eval");
    let m = probe();

    // --- cache hit (4096 rules compiled, never walked) ----------------------
    let mut hot = engine(miss_rules(4096), 12);
    hot.eval(SimTime::ZERO, &m); // miss seeds the slot
    g.bench_function("cache_hit_4096_rules", |b| {
        b.iter(|| black_box(hot.eval(SimTime::ZERO, black_box(&m))))
    });
    let allocs = allocs_during(|| {
        hot.eval(SimTime::ZERO, &m);
    });
    eprintln!("filter_eval/cache_hit: {allocs} heap allocations per eval");
    assert_eq!(allocs, 0, "the cache-hit path must not touch the heap");

    // --- full walks at each table size --------------------------------------
    for n in [16usize, 256, 4096] {
        let mut e = engine(miss_rules(n), 0); // cache off: every eval walks
        e.eval(SimTime::ZERO, &m);
        g.bench_function(&format!("walk_{n}_rules"), |b| {
            b.iter(|| black_box(e.eval(SimTime::ZERO, black_box(&m))))
        });
        let allocs = allocs_during(|| {
            e.eval(SimTime::ZERO, &m);
        });
        eprintln!("filter_eval/walk_{n}: {allocs} heap allocations per eval");
        assert_eq!(allocs, 0, "the rule walk must not touch the heap");
    }
    g.finish();

    // --- the acceptance ratio: hit ≥10× cheaper than the 4096 walk ----------
    // Self-timed (Criterion keeps its medians to itself) and skipped under
    // --test, which runs each routine once without meaningful timing.
    if !std::env::args().any(|a| a == "--test") {
        let mut hot = engine(miss_rules(4096), 12);
        let mut cold = engine(miss_rules(4096), 0);
        hot.eval(SimTime::ZERO, &m);
        cold.eval(SimTime::ZERO, &m);
        time_evals(&mut hot, &m, 100_000); // warm-up
        time_evals(&mut cold, &m, 10_000);
        let hit = time_evals(&mut hot, &m, 1_000_000);
        let walk = time_evals(&mut cold, &m, 100_000);
        eprintln!(
            "filter_eval: cache hit {hit:.1} ns vs 4096-rule walk {walk:.1} ns ({:.0}×)",
            walk / hit
        );
        assert!(
            walk >= 10.0 * hit,
            "decision cache must be ≥10× cheaper than the 4096-rule walk \
             (hit {hit:.1} ns, walk {walk:.1} ns)"
        );
    }
}

criterion_group!(benches, bench_filter_eval);
criterion_main!(benches);
