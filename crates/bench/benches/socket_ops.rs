//! Criterion benchmark for the BSD-style socket layer (DESIGN.md §10).
//!
//! Two claims are asserted, not just measured:
//!
//! 1. The poll/select readiness scan — the code every socket program
//!    runs on every scheduler visit — performs **zero** heap
//!    allocations.
//! 2. The socket shim is free: a TCP echo roundtrip and a UDP echo
//!    roundtrip driven through `SocketTable` verbs allocate **exactly as
//!    much** as the same wire exchange driven through the raw
//!    `NetStack` API. (The datapath itself allocates per packet — each
//!    `Ipv4Packet` owns its payload — so "zero added" is the meaningful
//!    bound for the layer.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netstack::stack::{IfaceId, SockId, StackAction, UdpId};
use netstack::NetStack;
use sim::SimTime;
use socket::{SocketHandle, SocketTable};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations so the benches can report them.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn ipa(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

const PAYLOAD: [u8; 64] = [0x55; 64];
const NOW: SimTime = SimTime::ZERO;

/// Two stacks on a lossless zero-delay wire.
struct Wire {
    a: NetStack,
    b: NetStack,
    a_if: IfaceId,
    b_if: IfaceId,
}

impl Wire {
    fn new() -> Wire {
        let (a, a_if) = NetStack::simple_host(ipa(1), 24, 1500, None);
        let (b, b_if) = NetStack::simple_host(ipa(2), 24, 1500, None);
        Wire { a, b, a_if, b_if }
    }

    /// Pumps packets until both sides go quiet, feeding every action to
    /// `observe` (the socket harness routes them into its tables; the
    /// raw harness ignores them).
    fn settle(&mut self, mut observe: impl FnMut(bool, &NetStack, &StackAction)) {
        let mut from_a = self.a.drain_actions();
        let mut from_b = self.b.drain_actions();
        for _ in 0..10_000 {
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for act in from_a.drain(..) {
                observe(true, &self.a, &act);
                if let StackAction::Egress { packet, .. } = act {
                    next_b.extend(self.b.input(NOW, self.b_if, &packet.encode()));
                }
            }
            for act in from_b.drain(..) {
                observe(false, &self.b, &act);
                if let StackAction::Egress { packet, .. } = act {
                    next_a.extend(self.a.input(NOW, self.a_if, &packet.encode()));
                }
            }
            from_a = next_a;
            from_b = next_b;
        }
        panic!("wire did not settle");
    }
}

/// The socket-layer harness: a connected stream pair plus a datagram
/// pair, driven through `SocketTable` verbs only.
struct SockHarness {
    wire: Wire,
    sa: SocketTable,
    sb: SocketTable,
    listener: SocketHandle,
    client: SocketHandle,
    server: SocketHandle,
    udp_a: SocketHandle,
    udp_b: SocketHandle,
}

impl SockHarness {
    fn new() -> SockHarness {
        let mut wire = Wire::new();
        let mut sa = SocketTable::new();
        let mut sb = SocketTable::new();
        let listener = sb.listen(&mut wire.b, 7, Some(4)).unwrap();
        let client = sa.connect(&mut wire.a, NOW, ipa(2), 7).unwrap();
        {
            let (sa, sb) = (&mut sa, &mut sb);
            wire.settle(|is_a, st, act| {
                if is_a {
                    sa.on_action(st, act)
                } else {
                    sb.on_action(st, act)
                }
            });
        }
        let server = sb.accept(&mut wire.b, listener).unwrap();
        let udp_a = sa.bind_udp(&mut wire.a, 9000).unwrap();
        let udp_b = sb.bind_udp(&mut wire.b, 9001).unwrap();
        SockHarness {
            wire,
            sa,
            sb,
            listener,
            client,
            server,
            udp_a,
            udp_b,
        }
    }

    fn settle(&mut self) {
        let (sa, sb) = (&mut self.sa, &mut self.sb);
        self.wire.settle(|is_a, st, act| {
            if is_a {
                sa.on_action(st, act)
            } else {
                sb.on_action(st, act)
            }
        });
    }

    /// One stop-and-wait echo over the established stream.
    fn tcp_echo(&mut self) {
        self.sa
            .send(&mut self.wire.a, NOW, self.client, &PAYLOAD)
            .unwrap();
        self.settle();
        let req = self.sb.recv(&mut self.wire.b, NOW, self.server).unwrap();
        self.sb
            .send(&mut self.wire.b, NOW, self.server, &req)
            .unwrap();
        self.settle();
        let echo = self.sa.recv(&mut self.wire.a, NOW, self.client).unwrap();
        assert_eq!(echo.len(), PAYLOAD.len());
    }

    /// One datagram each way.
    fn udp_echo(&mut self) {
        self.sa
            .send_to(&mut self.wire.a, self.udp_a, ipa(2), 9001, PAYLOAD.to_vec())
            .unwrap();
        self.settle();
        let (_, _, dgram) = self.sb.recv_from(&mut self.wire.b, self.udp_b).unwrap();
        self.sb
            .send_to(
                &mut self.wire.b,
                self.udp_b,
                ipa(1),
                9000,
                dgram.as_slice().to_vec(),
            )
            .unwrap();
        drop(dgram);
        self.settle();
        let (_, _, back) = self.sa.recv_from(&mut self.wire.a, self.udp_a).unwrap();
        assert_eq!(back.as_slice().len(), PAYLOAD.len());
    }

    /// The per-visit readiness scan: every handle both sides watch.
    fn poll_scan(&self) -> u32 {
        let mut live = 0u32;
        for &h in &[self.client, self.udp_a] {
            if !self.sa.poll(&self.wire.a, h).is_empty() {
                live += 1;
            }
        }
        for &h in &[self.listener, self.server, self.udp_b] {
            if !self.sb.poll(&self.wire.b, h).is_empty() {
                live += 1;
            }
        }
        live
    }
}

/// The same wire exchanges driven through the raw `NetStack` API — the
/// allocation baseline the shim is compared against.
struct RawHarness {
    wire: Wire,
    client: SockId,
    server: SockId,
    udp_a: UdpId,
    udp_b: UdpId,
}

impl RawHarness {
    fn new() -> RawHarness {
        let mut wire = Wire::new();
        let listener = wire.b.tcp_listen_with(7, 4).unwrap();
        let client = wire.a.tcp_connect(NOW, ipa(2), 7).unwrap();
        let mut accepted = None;
        wire.settle(|is_a, _st, act| {
            if !is_a {
                if let StackAction::TcpAccepted { sock, .. } = act {
                    accepted = Some(*sock);
                }
            }
        });
        let server = accepted.expect("accepted");
        wire.b.tcp_claim(server);
        let _ = listener;
        let udp_a = wire.a.udp_bind(9000).unwrap();
        let udp_b = wire.b.udp_bind(9001).unwrap();
        RawHarness {
            wire,
            client,
            server,
            udp_a,
            udp_b,
        }
    }

    fn settle(&mut self) {
        self.wire.settle(|_, _, _| {});
    }

    fn tcp_echo(&mut self) {
        self.wire.a.tcp_send(NOW, self.client, &PAYLOAD);
        self.settle();
        let req = self.wire.b.tcp_recv(NOW, self.server);
        self.wire.b.tcp_send(NOW, self.server, &req);
        self.settle();
        let echo = self.wire.a.tcp_recv(NOW, self.client);
        assert_eq!(echo.len(), PAYLOAD.len());
    }

    fn udp_echo(&mut self) {
        self.wire
            .a
            .udp_send(self.udp_a, ipa(2), 9001, PAYLOAD.to_vec());
        self.settle();
        let (_, _, dgram) = self.wire.b.udp_recv(self.udp_b).unwrap();
        self.wire
            .b
            .udp_send(self.udp_b, ipa(1), 9000, dgram.as_slice().to_vec());
        drop(dgram);
        self.settle();
        let (_, _, back) = self.wire.a.udp_recv(self.udp_a).unwrap();
        assert_eq!(back.as_slice().len(), PAYLOAD.len());
    }
}

fn bench_socket_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("socket_ops");
    g.throughput(Throughput::Bytes(2 * PAYLOAD.len() as u64));

    let mut sock = SockHarness::new();
    let mut raw = RawHarness::new();

    // Warm every buffer, pool, and action queue into steady state.
    for _ in 0..16 {
        sock.tcp_echo();
        sock.udp_echo();
        raw.tcp_echo();
        raw.udp_echo();
    }

    g.bench_function("poll_scan", |b| b.iter(|| black_box(sock.poll_scan())));
    let poll_allocs = allocs_during(|| {
        black_box(sock.poll_scan());
    });
    eprintln!("socket_ops/poll_scan: {poll_allocs} heap allocations per scan");
    assert_eq!(poll_allocs, 0, "the readiness scan must not touch the heap");

    g.bench_function("tcp_echo", |b| b.iter(|| sock.tcp_echo()));
    let sock_tcp = allocs_during(|| sock.tcp_echo());
    let raw_tcp = allocs_during(|| raw.tcp_echo());
    eprintln!("socket_ops/tcp_echo: {sock_tcp} allocations via sockets, {raw_tcp} via raw stack");
    assert_eq!(sock_tcp, raw_tcp, "the socket shim must add no allocations");

    g.bench_function("udp_echo", |b| b.iter(|| sock.udp_echo()));
    let sock_udp = allocs_during(|| sock.udp_echo());
    let raw_udp = allocs_during(|| raw.udp_echo());
    eprintln!("socket_ops/udp_echo: {sock_udp} allocations via sockets, {raw_udp} via raw stack");
    assert_eq!(sock_udp, raw_udp, "the socket shim must add no allocations");

    g.finish();
}

criterion_group!(benches, bench_socket_ops);
criterion_main!(benches);
