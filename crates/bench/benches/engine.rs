//! Criterion benchmarks for the simulation engine itself: event queue
//! operations, TCP state-machine steps, and a whole simulated second of
//! the paper topology — the costs that bound how fast experiments run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netstack::tcp::{Tcb, TcpConfig};
use sim::{EventQueue, SimDuration, SimTime};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
    g.bench_function("schedule_cancel_half_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = (0..1000u64)
                .map(|i| q.schedule(SimTime::from_nanos(i), i))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_tcp_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_machine");
    let a = (Ipv4Addr::new(10, 0, 0, 1), 1025u16);
    let b_addr = (Ipv4Addr::new(10, 0, 0, 2), 23u16);
    g.bench_function("handshake_and_1k_transfer", |b| {
        b.iter(|| {
            let now = SimTime::ZERO;
            let (mut alice, ev) = Tcb::connect(now, a, b_addr, 1000, TcpConfig::default());
            let syn = match &ev[0] {
                netstack::tcp::TcbEvent::Transmit(s) => s.clone(),
                _ => unreachable!(),
            };
            let (mut bob, ev) = Tcb::accept(now, b_addr, a, &syn, 9000, TcpConfig::default());
            let synack = match &ev[0] {
                netstack::tcp::TcbEvent::Transmit(s) => s.clone(),
                _ => unreachable!(),
            };
            let mut to_bob: Vec<netstack::tcp::TcpSegment> = Vec::new();
            for e in alice.on_segment(now, &synack) {
                if let netstack::tcp::TcbEvent::Transmit(s) = e {
                    to_bob.push(s);
                }
            }
            let (_, ev) = alice.send(now, &[0xAA; 1024]);
            for e in ev {
                if let netstack::tcp::TcbEvent::Transmit(s) = e {
                    to_bob.push(s);
                }
            }
            // One relay round is enough to exercise the hot paths.
            let mut to_alice = Vec::new();
            for s in &to_bob {
                for e in bob.on_segment(now, s) {
                    if let netstack::tcp::TcbEvent::Transmit(s) = e {
                        to_alice.push(s);
                    }
                }
            }
            for s in &to_alice {
                let _ = alice.on_segment(now, s);
            }
            black_box((alice.state(), bob.recv_available()))
        })
    });
    g.finish();
}

fn bench_world(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(20);
    g.bench_function("paper_topology_60s_with_ping", |b| {
        b.iter_batched(
            || {
                let mut s =
                    gateway::scenario::paper_topology(gateway::scenario::PaperConfig::default(), 1);
                let p = apps::ping::Pinger::new(
                    gateway::scenario::ETHER_HOST_IP,
                    1,
                    3,
                    SimDuration::from_secs(15),
                    32,
                );
                s.world.add_app(s.pc, Box::new(p));
                s
            },
            |mut s| {
                s.world.run_for(SimDuration::from_secs(60));
                black_box(s.world.now)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The tentpole comparison: the deadline-indexed engine vs the full-scan
/// reference stepper on identical worlds. `paper_*` is the Figure-1
/// topology with a pinger (serial-character dominated); `beacons50_*` is
/// the E2-style overload: the gateway's promiscuous TNC behind a 2400 Bd
/// line hears 50 chattering stations, so every instant is either a
/// per-character serial delivery (batched by the fast lane) or one due
/// MAC among 50 — the reference re-scans all ~60 components either way.
fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);

    fn paper_setup() -> gateway::scenario::PaperScenario {
        let mut s = gateway::scenario::paper_topology(gateway::scenario::PaperConfig::default(), 1);
        let p = apps::ping::Pinger::new(
            gateway::scenario::ETHER_HOST_IP,
            1,
            3,
            SimDuration::from_secs(15),
            32,
        );
        s.world.add_app(s.pc, Box::new(p));
        s
    }
    g.bench_function("paper_60s_reference", |b| {
        b.iter_batched(
            paper_setup,
            |mut s| {
                let t = s.world.now + SimDuration::from_secs(60);
                s.world.run_until_reference(t);
                black_box(s.world.now)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("paper_60s_indexed", |b| {
        b.iter_batched(
            paper_setup,
            |mut s| {
                s.world.run_for(SimDuration::from_secs(60));
                black_box(s.world.now)
            },
            BatchSize::SmallInput,
        )
    });

    fn beacons_setup() -> gateway::scenario::PaperScenario {
        let cfg = gateway::scenario::PaperConfig {
            serial_baud: 2400,
            acl: false,
            ..gateway::scenario::PaperConfig::default()
        };
        let mut s = gateway::scenario::paper_topology(cfg, 50);
        for i in 0..50 {
            s.world.add_beacon(
                s.chan,
                radio::traffic::BeaconConfig {
                    from: ax25::addr::Ax25Addr::parse_or_panic(&format!("BG{i}")),
                    to: ax25::addr::Ax25Addr::parse_or_panic("CHAT"),
                    frame_len: 120,
                    mean_interval: SimDuration::from_secs(60),
                    start: SimTime::from_millis(100 * i),
                    mac: radio::csma::MacConfig::default(),
                },
            );
        }
        // Only the gateway eavesdrops; the PC's TNC filters, so its
        // serial line stays quiet and the flood lands on one line.
        s.world
            .tnc_mut(s.pc_tnc)
            .set_mode(radio::tnc::RxMode::AddressFilter);
        s
    }
    g.bench_function("beacons50_60s_reference", |b| {
        b.iter_batched(
            beacons_setup,
            |mut s| {
                s.world.run_until_reference(SimTime::from_secs(60));
                black_box(s.world.now)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("beacons50_60s_indexed", |b| {
        b.iter_batched(
            beacons_setup,
            |mut s| {
                s.world.run_for(SimDuration::from_secs(60));
                black_box(s.world.now)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("beacons50_60s_wheel", |b| {
        b.iter_batched(
            || {
                let mut s = beacons_setup();
                s.world.use_timer_wheel(SimDuration::from_millis(1));
                s
            },
            |mut s| {
                s.world.run_for(SimDuration::from_secs(60));
                black_box(s.world.now)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Worker-count scaling on a 16-island mesh (DESIGN.md §11): the same
/// world stepped by the sharded engine at 1, 2, 4, and 8 workers, plus
/// the full-scan reference. On a multi-core host the worker sweep shows
/// speedup; on a single core it shows coordination overhead — either way
/// the digest is bit-identical (asserted in `shard_equivalence`), so the
/// numbers are comparable. bench.sh stamps each row's worker count into
/// the `threads` field via the `_<n>w` name suffix.
fn bench_engine_shard(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_shard");
    g.sample_size(10);

    fn mesh_setup() -> gateway::scenario::MeshNet {
        let gateways = 16;
        let mut m = gateway::scenario::mesh(gateways, 2, 3);
        for gw in 0..gateways {
            let p = apps::ping::Pinger::new(
                gateway::scenario::city::host_ip((gw + 1) % gateways, 0),
                gw as u16,
                2,
                SimDuration::from_secs(5),
                64,
            )
            .delayed(SimDuration::from_millis(200 + (37 * gw as u64) % 1800));
            m.world.add_app(m.hosts[gw][0], Box::new(p));
        }
        m
    }
    g.bench_function("mesh16_30s_reference", |b| {
        b.iter_batched(
            mesh_setup,
            |mut m| {
                m.world.run_until_reference(SimTime::from_secs(30));
                black_box(m.world.now)
            },
            BatchSize::SmallInput,
        )
    });
    for workers in [1usize, 2, 4, 8] {
        g.bench_function(&format!("mesh16_30s_{workers}w"), |b| {
            b.iter_batched(
                || {
                    let mut m = mesh_setup();
                    m.world.set_workers(workers);
                    m
                },
                |mut m| {
                    m.world.run_for(SimDuration::from_secs(30));
                    black_box(m.world.now)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_tcp_machine,
    bench_world,
    bench_engine,
    bench_engine_shard
);
criterion_main!(benches);
