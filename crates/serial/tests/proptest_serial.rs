//! Property tests for the serial line model.

use proptest::prelude::*;
use serial::{End, SerialConfig, SerialLine};
use sim::SimTime;

fn drain(line: &mut SerialLine) {
    while let Some(t) = line.next_deadline() {
        line.advance(t);
    }
}

proptest! {
    /// Any byte stream arrives intact and in order on a clean line, and
    /// total transfer time is exactly n × char_time.
    #[test]
    fn clean_line_is_order_preserving(
        bytes in proptest::collection::vec(any::<u8>(), 1..500),
        baud in 300u32..115_200,
    ) {
        let cfg = SerialConfig::baud(baud).with_rx_fifo(usize::MAX);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, &bytes);
        let mut last = SimTime::ZERO;
        while let Some(t) = line.next_deadline() {
            line.advance(t);
            last = t;
        }
        prop_assert_eq!(line.take_rx(End::B), bytes.clone());
        let expected = SimTime::ZERO + cfg.char_time() * bytes.len() as u64;
        prop_assert_eq!(last, expected);
    }

    /// Full duplex: interleaved sends in both directions never cross.
    #[test]
    fn directions_never_interfere(
        a_bytes in proptest::collection::vec(any::<u8>(), 0..200),
        b_bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let cfg = SerialConfig::baud(9600).with_rx_fifo(usize::MAX);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, &a_bytes);
        line.send(SimTime::ZERO, End::B, &b_bytes);
        drain(&mut line);
        prop_assert_eq!(line.take_rx(End::B), a_bytes);
        prop_assert_eq!(line.take_rx(End::A), b_bytes);
    }

    /// Conservation: sent = delivered + overruns + errors, always.
    #[test]
    fn byte_conservation_with_small_fifo(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..50), 1..8),
        fifo in 1usize..16,
        drain_between in any::<bool>(),
    ) {
        let cfg = SerialConfig::baud(9600).with_rx_fifo(fifo);
        let mut line = SerialLine::new(cfg);
        let mut taken = 0u64;
        let mut now = SimTime::ZERO;
        for chunk in &chunks {
            line.send(now, End::A, chunk);
            while let Some(t) = line.next_deadline() {
                line.advance(t);
                now = t;
                if drain_between {
                    taken += line.take_rx(End::B).len() as u64;
                }
            }
        }
        taken += line.take_rx(End::B).len() as u64;
        let s = line.stats(End::A);
        prop_assert_eq!(s.sent, s.delivered + s.overruns + s.errors);
        prop_assert_eq!(taken, s.delivered);
        if drain_between {
            prop_assert_eq!(s.overruns, 0, "prompt draining avoids overruns");
        }
    }
}
