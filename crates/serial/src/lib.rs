//! RS-232 serial line model.
//!
//! In the paper's hardware (Figure 1) the host talks to the KISS TNC over a
//! DZ serial line: *"the TNC does not sit on the bus. Instead, one
//! communicates with it through a serial line"* (§2.2). This crate models
//! that line at the character level:
//!
//! * full duplex — each direction serializes independently;
//! * one character occupies the line for `bits_per_char / baud` seconds
//!   (10 bits per character for the usual 8N1 framing);
//! * the receiving end has a finite FIFO; characters arriving while it is
//!   full are dropped and counted as **overruns** (the DZ11's infamous silo
//!   overflow);
//! * optional per-character error injection (line noise).
//!
//! The model is sans-io: callers [`SerialLine::send`] bytes, poll
//! [`SerialLine::next_deadline`], and call [`SerialLine::advance`] when the
//! simulation clock reaches it.
//!
//! # Examples
//!
//! ```
//! use serial::{End, SerialConfig, SerialLine};
//! use sim::SimTime;
//!
//! let mut line = SerialLine::new(SerialConfig::baud(9600));
//! line.send(SimTime::ZERO, End::A, b"hi");
//! // Each 8N1 character takes 10/9600 s ≈ 1.0417 ms.
//! let t1 = line.next_deadline().unwrap();
//! line.advance(t1);
//! let t2 = line.next_deadline().unwrap();
//! line.advance(t2);
//! assert_eq!(line.take_rx(End::B), vec![b'h', b'i']);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use sim::{Bandwidth, SimDuration, SimRng, SimTime};

/// Which end of the line a byte is sent from (the other end receives it).
///
/// By convention in this workspace, `A` is the host (DZ) side and `B` is
/// the device (TNC) side, but the model is symmetric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum End {
    /// The host side.
    A,
    /// The device side.
    B,
}

impl End {
    /// The opposite end.
    pub fn peer(self) -> End {
        match self {
            End::A => End::B,
            End::B => End::A,
        }
    }

    fn index(self) -> usize {
        match self {
            End::A => 0,
            End::B => 1,
        }
    }
}

/// Static parameters of a serial line.
#[derive(Debug, Clone, Copy)]
pub struct SerialConfig {
    /// Line rate in baud (bits per second on the wire).
    pub baud: u32,
    /// Bits occupied per character including start/stop framing (8N1 = 10).
    pub bits_per_char: u32,
    /// Receive FIFO depth at each end; arrivals beyond this are dropped.
    pub rx_fifo: usize,
    /// Probability that any one delivered character is corrupted/lost.
    pub error_rate: f64,
}

impl SerialConfig {
    /// A standard 8N1 line at the given baud rate with a DZ-like 64-char
    /// receive FIFO and no noise.
    pub fn baud(baud: u32) -> SerialConfig {
        SerialConfig {
            baud,
            bits_per_char: 10,
            rx_fifo: 64,
            error_rate: 0.0,
        }
    }

    /// Sets the per-character error probability.
    pub fn with_error_rate(mut self, rate: f64) -> SerialConfig {
        self.error_rate = rate;
        self
    }

    /// Sets the receive FIFO depth.
    pub fn with_rx_fifo(mut self, depth: usize) -> SerialConfig {
        self.rx_fifo = depth;
        self
    }

    /// Time one character occupies the line.
    pub fn char_time(&self) -> SimDuration {
        Bandwidth::bps(u64::from(self.baud)).time_for_bits(u64::from(self.bits_per_char))
    }
}

/// Per-direction transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Characters accepted for transmission.
    pub sent: u64,
    /// Characters delivered into the peer's FIFO.
    pub delivered: u64,
    /// Characters dropped because the peer's FIFO was full.
    pub overruns: u64,
    /// Characters lost to injected line errors.
    pub errors: u64,
}

/// Description of a batched delivery produced by [`SerialLine::take_run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunInfo {
    /// The end that received the run.
    pub to: End,
    /// Delivery instant of the first character (the `now` passed in).
    pub t0: SimTime,
    /// Delivery instant of the last character in the run.
    pub t_last: SimTime,
}

#[derive(Debug)]
struct Direction {
    /// Characters waiting to go onto the wire.
    tx_queue: VecDeque<u8>,
    /// The character currently on the wire and when it finishes.
    in_flight: Option<(SimTime, u8)>,
    /// Received characters waiting for the receiver to take them.
    rx_fifo: VecDeque<u8>,
    stats: DirStats,
}

impl Direction {
    fn new() -> Direction {
        Direction {
            tx_queue: VecDeque::new(),
            in_flight: None,
            rx_fifo: VecDeque::new(),
            stats: DirStats::default(),
        }
    }
}

/// A full-duplex, character-timed serial line between two endpoints.
///
/// See the [crate docs](crate) for the model and an example.
#[derive(Debug)]
pub struct SerialLine {
    cfg: SerialConfig,
    /// `dirs[0]` carries A→B traffic, `dirs[1]` carries B→A traffic.
    dirs: [Direction; 2],
    noise: Option<SimRng>,
    /// Min over both directions' in-flight completion times, maintained on
    /// every mutation so `next_deadline` is a field read, not a re-derive.
    cached_deadline: Option<SimTime>,
}

impl SerialLine {
    /// Creates an idle line. If `cfg.error_rate > 0`, pair with
    /// [`SerialLine::with_noise`] to supply the random stream.
    pub fn new(cfg: SerialConfig) -> SerialLine {
        SerialLine {
            cfg,
            dirs: [Direction::new(), Direction::new()],
            noise: None,
            cached_deadline: None,
        }
    }

    /// Creates a line that injects per-character errors using `rng`.
    pub fn with_noise(cfg: SerialConfig, rng: SimRng) -> SerialLine {
        SerialLine {
            cfg,
            dirs: [Direction::new(), Direction::new()],
            noise: Some(rng),
            cached_deadline: None,
        }
    }

    /// The line's static configuration.
    pub fn config(&self) -> &SerialConfig {
        &self.cfg
    }

    /// Queues `bytes` for transmission from `from` toward its peer.
    ///
    /// The first character starts serializing immediately if the direction
    /// is idle; otherwise characters follow back-to-back.
    pub fn send(&mut self, now: SimTime, from: End, bytes: &[u8]) {
        let char_time = self.cfg.char_time();
        let dir = &mut self.dirs[from.index()];
        dir.stats.sent += bytes.len() as u64;
        dir.tx_queue.extend(bytes.iter().copied());
        if dir.in_flight.is_none() {
            if let Some(b) = dir.tx_queue.pop_front() {
                dir.in_flight = Some((now + char_time, b));
            }
        }
        self.recache_deadline();
    }

    fn recache_deadline(&mut self) {
        self.cached_deadline = self
            .dirs
            .iter()
            .filter_map(|d| d.in_flight.map(|(t, _)| t))
            .min();
    }

    /// The earliest time at which [`SerialLine::advance`] will have work.
    ///
    /// This is a cached field maintained by [`SerialLine::send`] and
    /// [`SerialLine::advance`]; polling it costs nothing.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.cached_deadline
    }

    /// Completes every character whose serialization finishes at or before
    /// `now`, moving it into the peer's receive FIFO (or dropping it on
    /// overrun/noise). Returns the number of characters delivered.
    pub fn advance(&mut self, now: SimTime) -> usize {
        let char_time = self.cfg.char_time();
        let mut delivered = 0;
        for dir in &mut self.dirs {
            while let Some((done, byte)) = dir.in_flight {
                if done > now {
                    break;
                }
                dir.in_flight = None;
                let corrupted = match (&mut self.noise, self.cfg.error_rate) {
                    (Some(rng), rate) if rate > 0.0 => rng.chance(rate),
                    _ => false,
                };
                if corrupted {
                    dir.stats.errors += 1;
                } else if dir.rx_fifo.len() >= self.cfg.rx_fifo {
                    dir.stats.overruns += 1;
                } else {
                    dir.rx_fifo.push_back(byte);
                    dir.stats.delivered += 1;
                    delivered += 1;
                }
                if let Some(next) = dir.tx_queue.pop_front() {
                    dir.in_flight = Some((done + char_time, next));
                }
            }
        }
        self.recache_deadline();
        delivered
    }

    /// Extracts a whole run of back-to-back deliveries in one call,
    /// bypassing the per-character [`SerialLine::advance`]/
    /// [`SerialLine::take_rx`] cycle. This is the world's serial fast lane:
    /// a quiet run of characters is pulled off the wire in a batch instead
    /// of one event per character.
    ///
    /// The run starts with the character completing exactly at `now` and
    /// extends through queued characters at `now + i·char_time`, stopping
    ///
    /// * after including the first `stop_byte` (only a frame delimiter can
    ///   make the receiver do more than buffer the character),
    /// * before any delivery past `limit`, and
    /// * before any delivery at or past `before` (the scheduler's next
    ///   foreign event — those must still interleave).
    ///
    /// Returns `None` — with the line untouched — whenever batching could
    /// be observably different from the per-character path: noise is
    /// enabled (the RNG must be rolled in global delivery order), both
    /// directions are active (their deliveries interleave), undrained
    /// receive FIFOs exist, the FIFO capacity is zero (every delivery would
    /// overrun), or nothing completes exactly at `now`.
    ///
    /// On success `out` is cleared and filled with the run, the per-char
    /// delivery stats are applied, and the next queued character (if any)
    /// is put on the wire at `t_last + char_time`, exactly as repeated
    /// `advance` calls would have.
    pub fn take_run(
        &mut self,
        now: SimTime,
        limit: SimTime,
        before: Option<SimTime>,
        stop_byte: u8,
        out: &mut Vec<u8>,
    ) -> Option<RunInfo> {
        if self.noise.is_some() && self.cfg.error_rate > 0.0 {
            return None;
        }
        if self.cfg.rx_fifo == 0 {
            return None;
        }
        let active = match (&self.dirs[0].in_flight, &self.dirs[1].in_flight) {
            (Some(_), None) => 0,
            (None, Some(_)) => 1,
            _ => return None,
        };
        let other = &self.dirs[1 - active];
        if !other.tx_queue.is_empty() || !other.rx_fifo.is_empty() {
            return None;
        }
        let char_time = self.cfg.char_time();
        let dir = &mut self.dirs[active];
        if !dir.rx_fifo.is_empty() {
            return None;
        }
        let (done0, b0) = dir
            .in_flight
            .expect("active direction has a char in flight");
        if done0 != now {
            return None;
        }
        out.clear();
        out.push(b0);
        let mut t_last = now;
        if b0 != stop_byte {
            while let Some(&next) = dir.tx_queue.front() {
                let t = t_last + char_time;
                if t > limit || before.is_some_and(|o| t >= o) {
                    break;
                }
                dir.tx_queue.pop_front();
                out.push(next);
                t_last = t;
                if next == stop_byte {
                    break;
                }
            }
        }
        dir.stats.delivered += out.len() as u64;
        dir.in_flight = dir.tx_queue.pop_front().map(|b| (t_last + char_time, b));
        self.recache_deadline();
        Some(RunInfo {
            to: if active == 0 { End::B } else { End::A },
            t0: now,
            t_last,
        })
    }

    /// Takes all characters waiting in the FIFO at `end`.
    pub fn take_rx(&mut self, end: End) -> Vec<u8> {
        // Traffic *arriving at* `end` was sent by its peer.
        let dir = &mut self.dirs[end.peer().index()];
        dir.rx_fifo.drain(..).collect()
    }

    /// Takes at most `max` characters from the FIFO at `end`.
    pub fn take_rx_limited(&mut self, end: End, max: usize) -> Vec<u8> {
        let dir = &mut self.dirs[end.peer().index()];
        let n = dir.rx_fifo.len().min(max);
        dir.rx_fifo.drain(..n).collect()
    }

    /// Number of characters waiting in the FIFO at `end`.
    pub fn rx_len(&self, end: End) -> usize {
        self.dirs[end.peer().index()].rx_fifo.len()
    }

    /// Number of characters still queued or in flight from `from`.
    pub fn tx_backlog(&self, from: End) -> usize {
        let dir = &self.dirs[from.index()];
        dir.tx_queue.len() + usize::from(dir.in_flight.is_some())
    }

    /// True if neither direction has queued, in-flight, or undelivered data.
    pub fn is_idle(&self) -> bool {
        self.dirs
            .iter()
            .all(|d| d.tx_queue.is_empty() && d.in_flight.is_none())
    }

    /// Statistics for the direction transmitting from `from`.
    pub fn stats(&self, from: End) -> DirStats {
        self.dirs[from.index()].stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(line: &mut SerialLine) -> SimTime {
        let mut now = SimTime::ZERO;
        while let Some(t) = line.next_deadline() {
            now = t;
            line.advance(now);
        }
        now
    }

    #[test]
    fn bytes_arrive_in_order_with_char_timing() {
        let cfg = SerialConfig::baud(9600);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"abc");
        // First char done at one char time.
        let t = line.next_deadline().unwrap();
        assert_eq!(t, SimTime::ZERO + cfg.char_time());
        let end = drain_all(&mut line);
        assert_eq!(end, SimTime::ZERO + cfg.char_time() * 3);
        assert_eq!(line.take_rx(End::B), b"abc".to_vec());
    }

    #[test]
    fn full_duplex_directions_are_independent() {
        let cfg = SerialConfig::baud(1200);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"x");
        line.send(SimTime::ZERO, End::B, b"y");
        drain_all(&mut line);
        assert_eq!(line.take_rx(End::B), b"x".to_vec());
        assert_eq!(line.take_rx(End::A), b"y".to_vec());
    }

    #[test]
    fn back_to_back_after_busy_line() {
        let cfg = SerialConfig::baud(9600);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"a");
        // Queue more mid-character; it must serialize after the first.
        let mid = SimTime::ZERO + cfg.char_time() / 2;
        line.send(mid, End::A, b"b");
        let end = drain_all(&mut line);
        assert_eq!(end, SimTime::ZERO + cfg.char_time() * 2);
        assert_eq!(line.take_rx(End::B), b"ab".to_vec());
    }

    #[test]
    fn idle_gap_restarts_clock() {
        let cfg = SerialConfig::baud(9600);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"a");
        drain_all(&mut line);
        let later = SimTime::from_secs(5);
        line.send(later, End::A, b"b");
        assert_eq!(line.next_deadline(), Some(later + cfg.char_time()));
    }

    #[test]
    fn rx_fifo_overrun_drops_and_counts() {
        let cfg = SerialConfig::baud(9600).with_rx_fifo(2);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"abcd");
        drain_all(&mut line);
        assert_eq!(line.take_rx(End::B), b"ab".to_vec());
        let s = line.stats(End::A);
        assert_eq!(s.sent, 4);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.overruns, 2);
    }

    #[test]
    fn draining_fifo_prevents_overrun() {
        let cfg = SerialConfig::baud(9600).with_rx_fifo(1);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"ab");
        let mut got = Vec::new();
        while let Some(t) = line.next_deadline() {
            line.advance(t);
            got.extend(line.take_rx(End::B));
        }
        assert_eq!(got, b"ab".to_vec());
        assert_eq!(line.stats(End::A).overruns, 0);
    }

    #[test]
    fn noise_drops_characters() {
        let cfg = SerialConfig::baud(9600).with_error_rate(1.0);
        let mut line = SerialLine::with_noise(cfg, SimRng::seed_from(1));
        line.send(SimTime::ZERO, End::A, b"abc");
        drain_all(&mut line);
        assert!(line.take_rx(End::B).is_empty());
        assert_eq!(line.stats(End::A).errors, 3);
    }

    #[test]
    fn partial_noise_loses_roughly_the_configured_fraction() {
        let cfg = SerialConfig::baud(u32::MAX)
            .with_error_rate(0.2)
            .with_rx_fifo(usize::MAX);
        let mut line = SerialLine::with_noise(cfg, SimRng::seed_from(7));
        let data = vec![0u8; 10_000];
        line.send(SimTime::ZERO, End::A, &data);
        drain_all(&mut line);
        let errors = line.stats(End::A).errors as f64;
        assert!((errors / 10_000.0 - 0.2).abs() < 0.03);
    }

    #[test]
    fn take_rx_limited_respects_cap() {
        let cfg = SerialConfig::baud(9600);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"abcdef");
        drain_all(&mut line);
        assert_eq!(line.take_rx_limited(End::B, 2), b"ab".to_vec());
        assert_eq!(line.rx_len(End::B), 4);
        assert_eq!(line.take_rx(End::B), b"cdef".to_vec());
    }

    #[test]
    fn backlog_and_idle_reporting() {
        let cfg = SerialConfig::baud(9600);
        let mut line = SerialLine::new(cfg);
        assert!(line.is_idle());
        line.send(SimTime::ZERO, End::A, b"abc");
        assert_eq!(line.tx_backlog(End::A), 3);
        assert!(!line.is_idle());
        drain_all(&mut line);
        assert!(line.is_idle());
        assert_eq!(line.tx_backlog(End::A), 0);
    }

    #[test]
    fn char_time_math() {
        // 9600 baud, 10 bits/char => 1.0416..ms, rounded up to ns.
        let cfg = SerialConfig::baud(9600);
        assert_eq!(cfg.char_time(), SimDuration::from_nanos(1_041_667));
    }

    #[test]
    fn take_run_matches_per_character_delivery() {
        let cfg = SerialConfig::baud(9600);
        let far = SimTime::from_secs(10);
        // Reference: advance one char at a time, draining after each.
        let mut per_char = SerialLine::new(cfg);
        per_char.send(SimTime::ZERO, End::A, b"hello\xC0tail");
        let mut ref_bytes = Vec::new();
        let mut ref_times = Vec::new();
        while let Some(t) = per_char.next_deadline() {
            per_char.advance(t);
            for b in per_char.take_rx(End::B) {
                ref_bytes.push(b);
                ref_times.push(t);
            }
            if *ref_bytes.last().unwrap() == 0xC0 {
                break;
            }
        }
        // Batched: one take_run at the first deadline.
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"hello\xC0tail");
        let t0 = line.next_deadline().unwrap();
        let mut run = Vec::new();
        let info = line.take_run(t0, far, None, 0xC0, &mut run).unwrap();
        assert_eq!(run, ref_bytes, "run stops after the delimiter");
        assert_eq!(info.to, End::B);
        assert_eq!(info.t0, ref_times[0]);
        assert_eq!(info.t_last, *ref_times.last().unwrap());
        assert_eq!(line.stats(End::A).delivered, run.len() as u64);
        // The remainder re-arms back-to-back, exactly like advance would.
        assert_eq!(
            line.next_deadline(),
            Some(info.t_last + cfg.char_time()),
            "next queued char continues at char pacing"
        );
        let rest: Vec<SimTime> = std::iter::from_fn(|| {
            let t = line.next_deadline()?;
            line.advance(t);
            Some(t)
        })
        .collect();
        assert_eq!(rest.len(), 4);
        assert_eq!(line.take_rx(End::B), b"tail".to_vec());
    }

    #[test]
    fn take_run_respects_limit_and_foreign_events() {
        let cfg = SerialConfig::baud(9600);
        let ct = cfg.char_time();
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"abcdef");
        let t0 = line.next_deadline().unwrap();
        // Cap by `limit`: only chars due within the window are taken.
        let mut run = Vec::new();
        let info = line
            .take_run(t0, t0 + ct * 2, None, 0xC0, &mut run)
            .unwrap();
        assert_eq!(run, b"abc".to_vec());
        assert_eq!(info.t_last, t0 + ct * 2);
        // Cap by `before`: a foreign event at the next char's instant stops
        // the run (the scheduler must interleave it).
        let t3 = line.next_deadline().unwrap();
        let info = line
            .take_run(t3, SimTime::from_secs(1), Some(t3 + ct), 0xC0, &mut run)
            .unwrap();
        assert_eq!(run, b"d".to_vec());
        assert_eq!(info.t_last, t3);
    }

    #[test]
    fn take_run_refuses_ambiguous_lines() {
        let cfg = SerialConfig::baud(9600);
        let far = SimTime::from_secs(1);
        let mut run = Vec::new();
        // Noise: the RNG must be rolled in per-character delivery order.
        let noisy_cfg = cfg.with_error_rate(0.5);
        let mut noisy = SerialLine::with_noise(noisy_cfg, SimRng::seed_from(3));
        noisy.send(SimTime::ZERO, End::A, b"ab");
        let t = noisy.next_deadline().unwrap();
        assert!(noisy.take_run(t, far, None, 0xC0, &mut run).is_none());
        // Both directions active: deliveries interleave.
        let mut duplex = SerialLine::new(cfg);
        duplex.send(SimTime::ZERO, End::A, b"ab");
        duplex.send(SimTime::ZERO, End::B, b"yz");
        let t = duplex.next_deadline().unwrap();
        assert!(duplex.take_run(t, far, None, 0xC0, &mut run).is_none());
        // Undrained receiver FIFO: batching would reorder the backlog.
        let mut backlog = SerialLine::new(cfg);
        backlog.send(SimTime::ZERO, End::A, b"ab");
        let t1 = backlog.next_deadline().unwrap();
        backlog.advance(t1);
        let t2 = backlog.next_deadline().unwrap();
        assert!(backlog.take_run(t2, far, None, 0xC0, &mut run).is_none());
        // Nothing completing exactly at `now`.
        let mut early = SerialLine::new(cfg);
        early.send(SimTime::ZERO, End::A, b"ab");
        assert!(early
            .take_run(SimTime::ZERO, far, None, 0xC0, &mut run)
            .is_none());
        // All refusals leave the line untouched for the per-char path.
        let t = early.next_deadline().unwrap();
        assert_eq!(early.advance(t), 1);
        assert_eq!(early.take_rx(End::B), b"a".to_vec());
    }

    #[test]
    fn take_run_with_delimiter_in_flight_is_a_single_char() {
        let cfg = SerialConfig::baud(9600);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, &[0xC0, b'x']);
        let t0 = line.next_deadline().unwrap();
        let mut run = Vec::new();
        let info = line
            .take_run(t0, SimTime::from_secs(1), None, 0xC0, &mut run)
            .unwrap();
        assert_eq!(run, vec![0xC0]);
        assert_eq!(info.t0, info.t_last);
    }

    #[test]
    fn advance_before_deadline_is_a_no_op() {
        let cfg = SerialConfig::baud(1200);
        let mut line = SerialLine::new(cfg);
        line.send(SimTime::ZERO, End::A, b"a");
        assert_eq!(line.advance(SimTime::from_micros(1)), 0);
        assert_eq!(line.rx_len(End::B), 0);
    }
}
