#!/usr/bin/env bash
# Tier-1 gate: build, tests, lints, and the datapath allocation check.
# Run from the repo root (or anywhere inside it).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench -p bench --bench driver_rx -- --test"
cargo bench -p bench --bench driver_rx -- --test

echo "==> cargo bench -p bench --bench encap_fwd -- --test"
cargo bench -p bench --bench encap_fwd -- --test

echo "==> cargo bench -p bench --bench vj_hdr -- --test"
cargo bench -p bench --bench vj_hdr -- --test

echo "==> cargo bench -p bench --bench byte_kernels -- --test"
cargo bench -p bench --bench byte_kernels -- --test

echo "==> cargo bench -p bench --bench socket_ops -- --test"
cargo bench -p bench --bench socket_ops -- --test

echo "==> cargo bench -p bench --bench shard_sync -- --test"
cargo bench -p bench --bench shard_sync -- --test

echo "==> cargo bench -p bench --bench workload_gen -- --test (asserts 0-alloc recorder path)"
cargo bench -p bench --bench workload_gen -- --test

echo "==> cargo bench -p bench --bench filter_eval -- --test (asserts 0-alloc eval paths)"
cargo bench -p bench --bench filter_eval -- --test

echo "==> cargo bench -p bench --bench route_lookup -- --test (asserts 0-alloc lookup paths)"
cargo bench -p bench --bench route_lookup -- --test

echo "==> sharded-engine digest smoke (2 workers vs reference)"
cargo test -q -p gateway --test shard_equivalence two_worker_digest_smoke

echo "==> E17 flood smoke (filter engine acceptance bars)"
cargo build --release -p bench --bin e17_filter_flood
./target/release/e17_filter_flood > /dev/null

echo "==> scripts/bench.sh (non-gating)"
bash scripts/bench.sh || echo "WARN: bench snapshot failed (non-gating)"

echo "==> all checks passed"
