#!/bin/sh
# Regenerates every experiment output in results/ (see EXPERIMENTS.md).
# All runs are deterministic; outputs should be byte-identical across
# machines.
set -eu
cd "$(dirname "$0")/.."

cargo build --release -p bench --bins
mkdir -p results

for e in e1_latency_breakdown e2_promiscuous_load e3_timeouts e4_routing \
         e5_access_control e6_services e7_digipeaters e8_appgw \
         e9_fragmentation e10_csma_ablation e11_netrom_backbone \
         e12_route_exchange e13_vj_compression e14_sockets_dns \
         e15_city_scale e17_filter_flood e18_forwarding_plane; do
    echo "running $e …"
    ./target/release/"$e" > "results/$e.txt" 2>&1
done

# E16 at full city scale takes minutes; the recorded output is the small
# deterministic smoke configuration (full-size knobs in EXPERIMENTS.md).
echo "running e16_load_sweep (smoke mesh) …"
E16_GATEWAYS=4 E16_HOSTS=4 E16_SECONDS=150 \
    ./target/release/e16_load_sweep > results/e16_load_sweep.txt 2>&1

echo "all experiment outputs written to results/"
