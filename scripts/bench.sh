#!/usr/bin/env bash
# Performance snapshot: runs the `engine` bench groups (full-scan
# reference stepper vs the deadline-indexed scheduler, plus the sharded
# engine's worker sweep), the `driver_rx` datapath group, the `encap_fwd`
# tunnel hot path, the `vj_hdr` RFC 1144 header compression path, the
# `byte_kernels` bulk/scalar pairs, the `socket_ops` shim, the
# `shard_sync` cross-shard hand-off, the `workload_gen` fleet
# schedule/recorder group, the `filter_eval` packet-filter hot path,
# and the E15/E16 city-scale scaling runs,
# and APPENDS every measurement to BENCH_engine.json as
#   {"bench": <name>, "median_ns": <ns/iter>, "threads": <n>, "timestamp": <utc>}
# so the file accumulates a history. The `threads` field is parsed from a
# `_<n>w` suffix in the bench name (1 when absent) — the sharded-engine
# rows are only comparable at equal worker counts. Each fresh median is
# diffed against the BEST of that bench's last five recorded runs;
# anything more than BENCH_REGRESSION_PCT percent slower (default 10)
# than the recent best is flagged with a REGRESSION line. This is
# informational — scripts/check.sh runs it non-gating, so a slow machine
# never fails the tier-1 gate. Tighten or loosen the threshold per run:
#   BENCH_REGRESSION_PCT=25 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

regression_pct=${BENCH_REGRESSION_PCT:-10}

out=BENCH_engine.json
tmp=$(mktemp)
new_rows=$(mktemp)
rows=$(mktemp)
trap 'rm -f "$tmp" "$new_rows" "$rows"' EXIT

echo "==> cargo bench -p bench --bench engine -- engine"
cargo bench -p bench --bench engine -- engine | tee "$tmp"
echo "==> cargo bench -p bench --bench driver_rx"
cargo bench -p bench --bench driver_rx | tee -a "$tmp"
echo "==> cargo bench -p bench --bench encap_fwd"
cargo bench -p bench --bench encap_fwd | tee -a "$tmp"
echo "==> cargo bench -p bench --bench vj_hdr"
cargo bench -p bench --bench vj_hdr | tee -a "$tmp"
echo "==> cargo bench -p bench --bench byte_kernels"
cargo bench -p bench --bench byte_kernels | tee -a "$tmp"
echo "==> cargo bench -p bench --bench socket_ops"
cargo bench -p bench --bench socket_ops | tee -a "$tmp"
echo "==> cargo bench -p bench --bench shard_sync"
cargo bench -p bench --bench shard_sync | tee -a "$tmp"

echo "==> cargo bench -p bench --bench workload_gen"
cargo bench -p bench --bench workload_gen | tee -a "$tmp"

echo "==> cargo bench -p bench --bench filter_eval"
cargo bench -p bench --bench filter_eval | tee -a "$tmp"

echo "==> cargo bench -p bench --bench route_lookup"
cargo bench -p bench --bench route_lookup | tee -a "$tmp"

echo "==> E15 city-scale scaling run (scaled-down mesh; see EXPERIMENTS.md)"
cargo build --release -p bench --bin e15_city_scale
E15_BENCH=1 E15_GATEWAYS=32 E15_HOSTS=4 E15_SECONDS=30 \
    ./target/release/e15_city_scale | tee -a "$tmp"

echo "==> E16 fleet-load scaling run (scaled-down mesh; see EXPERIMENTS.md)"
cargo build --release -p bench --bin e16_load_sweep
E16_BENCH=1 E16_GATEWAYS=32 E16_HOSTS=4 E16_SECONDS=60 E16_SWEEP=0 \
    ./target/release/e16_load_sweep | tee -a "$tmp"

echo "==> E18 forwarding-plane mesh run (cached vs cache-off wall clock)"
cargo build --release -p bench --bin e18_forwarding_plane
E18_BENCH=1 ./target/release/e18_forwarding_plane | tee -a "$tmp"

# "name median" pairs from Criterion's "<name> ... <median> ns/iter" lines.
awk '
    { for (i = 3; i <= NF; i++) if ($i == "ns/iter") { print $1, $(i - 1); break } }
' "$tmp" > "$new_rows"

# Regression guard: compare each fresh median against the best (lowest)
# of that bench's last five recorded rows. Informational only — the exit
# status stays 0.
if [ -f "$out" ]; then
    echo "==> comparing against best of last 5 rows in $out (threshold +${regression_pct}%)"
    awk -v pct="$regression_pct" '
        NR == FNR {
            if (match($0, /"bench": "[^"]*"/)) {
                name = substr($0, RSTART + 10, RLENGTH - 11)
                if (match($0, /"median_ns": [0-9.]+/)) {
                    cnt[name]++
                    vals[name, cnt[name]] = substr($0, RSTART + 13, RLENGTH - 13) + 0
                }
            }
            next
        }
        {
            if ($1 in cnt) {
                lo = cnt[$1] - 4 > 1 ? cnt[$1] - 4 : 1
                best = vals[$1, lo]
                for (j = lo + 1; j <= cnt[$1]; j++)
                    if (vals[$1, j] < best) best = vals[$1, j]
                if (best > 0 && $2 > best * (1 + pct / 100))
                    printf "REGRESSION %s: %.1f ns/iter vs best-of-5 %.1f ns/iter (+%.0f%%)\n", \
                        $1, $2, best, ($2 / best - 1) * 100
                else
                    printf "ok %s: %.1f ns/iter (best-of-5 %.1f)\n", $1, $2, best
            } else {
                printf "new %s: %.1f ns/iter\n", $1, $2
            }
        }
    ' "$out" "$new_rows"
fi

# Append the fresh rows, preserving all history. Worker count comes from
# the bench name's `_<n>w` suffix; plain benches are single-threaded.
if [ -f "$out" ]; then
    grep '"bench"' "$out" | sed 's/,$//' > "$rows" || true
fi
ts=$(date -u +"%Y-%m-%dT%H:%M:%SZ")
awk -v ts="$ts" '
    {
        threads = 1
        if (match($1, /_[0-9]+w$/))
            threads = substr($1, RSTART + 1, RLENGTH - 2) + 0
        printf "  {\"bench\": \"%s\", \"median_ns\": %s, \"threads\": %d, \"timestamp\": \"%s\"}\n", \
            $1, $2, threads, ts
    }
' "$new_rows" >> "$rows"
{
    echo "["
    sed '$!s/$/,/' "$rows"
    echo "]"
} > "$out"

echo "==> appended $(wc -l < "$new_rows") rows to $out"
