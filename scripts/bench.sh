#!/usr/bin/env bash
# Performance snapshot: runs the `engine` bench group (full-scan reference
# stepper vs the deadline-indexed scheduler), the `driver_rx` datapath
# group, the `encap_fwd` tunnel hot path, and the `vj_hdr` RFC 1144
# header compression path, and records every
# measurement in BENCH_engine.json as
#   {"bench": <name>, "median_ns": <ns/iter>, "timestamp": <utc>}
# This is informational — scripts/check.sh runs it non-gating, so a slow
# machine never fails the tier-1 gate.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_engine.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "==> cargo bench -p bench --bench engine -- engine"
cargo bench -p bench --bench engine -- engine | tee "$tmp"
echo "==> cargo bench -p bench --bench driver_rx"
cargo bench -p bench --bench driver_rx | tee -a "$tmp"
echo "==> cargo bench -p bench --bench encap_fwd"
cargo bench -p bench --bench encap_fwd | tee -a "$tmp"
echo "==> cargo bench -p bench --bench vj_hdr"
cargo bench -p bench --bench vj_hdr | tee -a "$tmp"

ts=$(date -u +"%Y-%m-%dT%H:%M:%SZ")
awk -v ts="$ts" '
    BEGIN { printf "[\n"; sep = "" }
    {
        for (i = 3; i <= NF; i++) {
            if ($i == "ns/iter") {
                printf "%s  {\"bench\": \"%s\", \"median_ns\": %s, \"timestamp\": \"%s\"}", \
                    sep, $1, $(i - 1), ts
                sep = ",\n"
                break
            }
        }
    }
    END { printf "\n]\n" }
' "$tmp" > "$out"

echo "==> wrote $out"
