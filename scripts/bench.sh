#!/usr/bin/env bash
# Performance snapshot: runs the `engine` bench group (full-scan reference
# stepper vs the deadline-indexed scheduler), the `driver_rx` datapath
# group, the `encap_fwd` tunnel hot path, the `vj_hdr` RFC 1144 header
# compression path, and the `byte_kernels` bulk/scalar pairs, and APPENDS
# every measurement to BENCH_engine.json as
#   {"bench": <name>, "median_ns": <ns/iter>, "timestamp": <utc>}
# so the file accumulates a history. Each fresh median is diffed against
# the most recent prior row of the same bench; anything >25% slower is
# flagged with a REGRESSION line. This is informational — scripts/check.sh
# runs it non-gating, so a slow machine never fails the tier-1 gate.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_engine.json
tmp=$(mktemp)
new_rows=$(mktemp)
rows=$(mktemp)
trap 'rm -f "$tmp" "$new_rows" "$rows"' EXIT

echo "==> cargo bench -p bench --bench engine -- engine"
cargo bench -p bench --bench engine -- engine | tee "$tmp"
echo "==> cargo bench -p bench --bench driver_rx"
cargo bench -p bench --bench driver_rx | tee -a "$tmp"
echo "==> cargo bench -p bench --bench encap_fwd"
cargo bench -p bench --bench encap_fwd | tee -a "$tmp"
echo "==> cargo bench -p bench --bench vj_hdr"
cargo bench -p bench --bench vj_hdr | tee -a "$tmp"
echo "==> cargo bench -p bench --bench byte_kernels"
cargo bench -p bench --bench byte_kernels | tee -a "$tmp"
echo "==> cargo bench -p bench --bench socket_ops"
cargo bench -p bench --bench socket_ops | tee -a "$tmp"

# "name median" pairs from Criterion's "<name> ... <median> ns/iter" lines.
awk '
    { for (i = 3; i <= NF; i++) if ($i == "ns/iter") { print $1, $(i - 1); break } }
' "$tmp" > "$new_rows"

# Regression guard: compare each fresh median against the most recent prior
# row for the same bench. Informational only — the exit status stays 0.
if [ -f "$out" ]; then
    echo "==> comparing against previous rows in $out"
    awk '
        NR == FNR {
            if (match($0, /"bench": "[^"]*"/)) {
                name = substr($0, RSTART + 10, RLENGTH - 11)
                if (match($0, /"median_ns": [0-9.]+/))
                    prev[name] = substr($0, RSTART + 13, RLENGTH - 13) + 0
            }
            next
        }
        {
            if (($1 in prev) && prev[$1] > 0 && $2 > prev[$1] * 1.25)
                printf "REGRESSION %s: %.1f ns/iter vs %.1f ns/iter (+%.0f%%)\n", \
                    $1, $2, prev[$1], ($2 / prev[$1] - 1) * 100
            else if ($1 in prev)
                printf "ok %s: %.1f ns/iter (prev %.1f)\n", $1, $2, prev[$1]
            else
                printf "new %s: %.1f ns/iter\n", $1, $2
        }
    ' "$out" "$new_rows"
fi

# Append the fresh rows, preserving all history.
if [ -f "$out" ]; then
    grep '"bench"' "$out" | sed 's/,$//' > "$rows" || true
fi
ts=$(date -u +"%Y-%m-%dT%H:%M:%SZ")
awk -v ts="$ts" '
    { printf "  {\"bench\": \"%s\", \"median_ns\": %s, \"timestamp\": \"%s\"}\n", $1, $2, ts }
' "$new_rows" >> "$rows"
{
    echo "["
    sed '$!s/$/,/' "$rows"
    echo "]"
} > "$out"

echo "==> appended $(wc -l < "$new_rows") rows to $out"
