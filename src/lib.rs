//! Umbrella crate for the reproduction of *Adding Packet Radio to the
//! Ultrix Kernel* (Neuman & Yamamoto, USENIX 1988).
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests can depend on a single package. See `README.md` for a
//! tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use apps;
pub use ax25;
pub use ether;
pub use gateway;
pub use kiss;
pub use netstack;
pub use radio;
pub use serial;
pub use sim;
pub use workload;
