//! The pre-IP world of §1: a terminal user works a packet BBS over
//! AX.25 connected mode — list, read, post, sign off.

use apps::ax25chat::{BbsServer, TerminalUser};
use ax25::addr::Ax25Addr;
use gateway::scenario::{paper_topology, PaperConfig};
use sim::SimDuration;

#[test]
fn terminal_user_works_the_bbs() {
    let mut s = paper_topology(PaperConfig::default(), 501);

    // The gateway host doubles as the BBS machine (same callsign).
    let bbs_call = s.world.host(s.gw).callsign().expect("call");
    let bbs = BbsServer::new(
        bbs_call,
        &[
            ("MEETING TUESDAY", "Club meeting 7pm at the EE building."),
            ("FOR SALE: HT", "Icom 2AT, good condition, $80."),
        ],
    );
    let bbs_report = bbs.report();
    s.world.add_app(s.gw, Box::new(bbs));

    let user = TerminalUser::new(
        Ax25Addr::parse_or_panic("KB7DZ"),
        bbs_call,
        vec![
            ("BBS> ", "L\r"),
            ("BBS> ", "R 1\r"),
            ("BBS> ", "S TEST POST\r"),
            ("Enter message", "Testing the new gateway BBS.\r/EX\r"),
            ("BBS> ", "Q\r"),
        ],
    );
    let user_report = user.report();
    s.world.add_app(s.pc, Box::new(user));

    s.world.run_for(SimDuration::from_secs(1200));

    let u = user_report.borrow();
    assert!(u.connected, "link up");
    assert!(u.transcript.contains("MEETING TUESDAY"), "{}", u.transcript);
    assert!(
        u.transcript.contains("Club meeting 7pm"),
        "read body: {}",
        u.transcript
    );
    assert!(u.transcript.contains("Message saved."), "{}", u.transcript);
    assert!(u.transcript.contains("73!"), "{}", u.transcript);
    assert!(u.done, "script finished and link released");

    let b = bbs_report.borrow();
    assert_eq!(b.sessions, 1);
    assert_eq!(b.posted.len(), 1);
    assert_eq!(b.posted[0].0, "TEST POST");
    assert!(b.posted[0].1.contains("Testing the new gateway BBS."));
}

#[test]
fn two_users_share_the_bbs_channel() {
    let mut s = paper_topology(PaperConfig::default(), 502);
    let bbs_call = s.world.host(s.gw).callsign().expect("call");
    let bbs = BbsServer::new(bbs_call, &[("HELLO", "First post.")]);
    let bbs_report = bbs.report();
    s.world.add_app(s.gw, Box::new(bbs));

    // The PC user…
    let u1 = TerminalUser::new(
        Ax25Addr::parse_or_panic("KB7DZ"),
        bbs_call,
        vec![("BBS> ", "L\r"), ("BBS> ", "Q\r")],
    );
    let r1 = u1.report();
    s.world.add_app(s.pc, Box::new(u1));

    // …and a second station joining the same channel.
    let mut cfg2 = gateway::host::HostConfig::named("pc2");
    cfg2.radio = Some(gateway::host::RadioIfConfig {
        call: Ax25Addr::parse_or_panic("W1GOH"),
        ip: std::net::Ipv4Addr::new(44, 24, 0, 6),
        prefix_len: 16,
    });
    let pc2 = s.world.add_host(cfg2);
    s.world.attach_radio(
        pc2,
        s.chan,
        9600,
        radio::tnc::RxMode::Promiscuous,
        radio::csma::MacConfig::default(),
    );
    let u2 = TerminalUser::new(
        Ax25Addr::parse_or_panic("W1GOH"),
        bbs_call,
        vec![("BBS> ", "R 1\r"), ("BBS> ", "Q\r")],
    );
    let r2 = u2.report();
    s.world.add_app(pc2, Box::new(u2));

    s.world.run_for(SimDuration::from_secs(1800));

    assert!(r1.borrow().done, "user 1: {:?}", r1.borrow().transcript);
    assert!(r2.borrow().done, "user 2: {:?}", r2.borrow().transcript);
    assert!(r2.borrow().transcript.contains("First post."));
    assert_eq!(bbs_report.borrow().sessions, 2);
}
