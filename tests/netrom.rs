//! §2.4's second future-work item, end to end: "using NET/ROM to pass IP
//! traffic between gateways" over a learned multi-hop RF backbone.
//!
//! Topology: three radio hosts on one 1200 bit/s channel with a line
//! hearing pattern (west ⇄ mid ⇄ east; the ends cannot hear each other).
//! Each runs a NET/ROM router. Routes are learned purely from NODES
//! broadcasts — no static configuration — and an IP datagram is then
//! carried west→east across the backbone and delivered into the east
//! gateway's IP stack.

use ax25::addr::Ax25Addr;
use gateway::host::{HostConfig, RadioIfConfig};
use gateway::world::{ChanId, HostId, World};
use netrom::{NetRomConfig, NetRomRouter};
use netstack::ip::{Ipv4Packet, Proto};
use netstack::udp::UdpDatagram;
use radio::channel::StationId;
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use sim::{Bandwidth, SimDuration};
use std::net::Ipv4Addr;

const WEST_IP: Ipv4Addr = Ipv4Addr::new(44, 24, 0, 28);
const EAST_IP: Ipv4Addr = Ipv4Addr::new(44, 56, 0, 28);

struct Backbone {
    world: World,
    west: HostId,
    mid: HostId,
    east: HostId,
}

fn radio_host(world: &mut World, chan: ChanId, name: &str, call: &str, ip: Ipv4Addr) -> HostId {
    let mut cfg = HostConfig::named(name);
    cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic(call),
        ip,
        prefix_len: 16,
    });
    let h = world.add_host(cfg);
    world.attach_radio(h, chan, 9600, RxMode::Promiscuous, MacConfig::default());
    h
}

fn backbone(seed: u64) -> Backbone {
    let mut world = World::new(seed);
    let chan = world.add_channel(Bandwidth::RADIO_1200);
    let west = radio_host(&mut world, chan, "west-gw", "WGATE", WEST_IP);
    let mid = radio_host(
        &mut world,
        chan,
        "bbone",
        "BBONE",
        Ipv4Addr::new(44, 40, 0, 1),
    );
    let east = radio_host(&mut world, chan, "east-gw", "EGATE", EAST_IP);
    // Line topology: stations 0(west), 1(mid), 2(east).
    let c = world.channel_mut(chan);
    c.set_hears(StationId(0), StationId(2), false);
    c.set_hears(StationId(2), StationId(0), false);
    Backbone {
        world,
        west,
        mid,
        east,
    }
}

fn fast_cfg(call: &str, alias: &str) -> NetRomConfig {
    let mut c = NetRomConfig::new(Ax25Addr::parse_or_panic(call), alias);
    c.broadcast_interval = SimDuration::from_secs(30);
    c
}

#[test]
fn routes_converge_from_broadcasts_alone() {
    let mut b = backbone(901);
    let west_router = NetRomRouter::new(fast_cfg("WGATE", "SEA"));
    let west_report = west_router.report();
    b.world.add_app(b.west, Box::new(west_router));
    b.world
        .add_app(b.mid, Box::new(NetRomRouter::new(fast_cfg("BBONE", "MID"))));
    let east_router = NetRomRouter::new(fast_cfg("EGATE", "NYC"));
    let east_report = east_router.report();
    b.world.add_app(b.east, Box::new(east_router));

    // A few broadcast rounds are enough for two-hop knowledge.
    b.world.run_for(SimDuration::from_secs(150));

    let w = west_report.borrow();
    assert!(
        w.destinations.contains(&"BBONE".to_string()),
        "west knows its neighbour: {:?}",
        w.destinations
    );
    assert!(
        w.destinations.contains(&"EGATE".to_string()),
        "west learned the far gateway through the backbone: {:?}",
        w.destinations
    );
    let e = east_report.borrow();
    assert!(e.destinations.contains(&"WGATE".to_string()));
    assert!(w.stats.broadcasts_heard >= 2);
}

#[test]
fn ip_datagram_crosses_the_backbone_into_the_far_stack() {
    let mut b = backbone(902);
    let west_router = NetRomRouter::new(fast_cfg("WGATE", "SEA"));
    let west_sendq = west_router.send_queue();
    let west_report = west_router.report();
    b.world.add_app(b.west, Box::new(west_router));
    let mid_router = NetRomRouter::new(fast_cfg("BBONE", "MID"));
    let mid_report = mid_router.report();
    b.world.add_app(b.mid, Box::new(mid_router));
    let east_router = NetRomRouter::new(fast_cfg("EGATE", "NYC"));
    b.world.add_app(b.east, Box::new(east_router));

    // Let routing converge.
    b.world.run_for(SimDuration::from_secs(150));
    assert!(west_report
        .borrow()
        .destinations
        .contains(&"EGATE".to_string()));

    // The east gateway listens on UDP 4000.
    let east_udp = b.world.host_mut(b.east).stack.udp_bind(4000).expect("bind");

    // Build a real IP/UDP packet addressed to the east gateway and ship
    // it over NET/ROM.
    let dg = UdpDatagram {
        src_port: 4001,
        dst_port: 4000,
        payload: b"IP over NET/ROM between gateways".to_vec(),
    };
    let mut ip = Ipv4Packet::new(WEST_IP, EAST_IP, Proto::Udp, dg.encode(WEST_IP, EAST_IP));
    ip.id = 77;
    west_sendq
        .borrow_mut()
        .push((Ax25Addr::parse_or_panic("EGATE"), ip.encode()));

    b.world.run_for(SimDuration::from_secs(120));

    // Delivered into the east gateway's stack and up to the UDP socket.
    let (src, _sport, payload) = b
        .world
        .host_mut(b.east)
        .stack
        .udp_recv(east_udp)
        .expect("datagram arrived across the backbone");
    assert_eq!(src, WEST_IP);
    assert_eq!(payload.as_slice(), b"IP over NET/ROM between gateways");

    // And it really went through the middle node.
    assert!(mid_report.borrow().stats.forwarded >= 1, "mid forwarded");
    assert!(west_report.borrow().stats.originated >= 1);
}

#[test]
fn backbone_survives_a_dead_relay_with_an_alternate_path() {
    // Diamond: west hears mid1 and mid2; east hears mid1 and mid2; the
    // mids do not hear each other. Kill nothing — just verify the best
    // route picks one relay deterministically and traffic flows.
    let mut world = World::new(903);
    let chan = world.add_channel(Bandwidth::RADIO_1200);
    let west = radio_host(&mut world, chan, "west", "WGATE", WEST_IP);
    let _m1 = radio_host(&mut world, chan, "m1", "R1", Ipv4Addr::new(44, 40, 0, 1));
    let _m2 = radio_host(&mut world, chan, "m2", "R2", Ipv4Addr::new(44, 40, 0, 2));
    let east = radio_host(&mut world, chan, "east", "EGATE", EAST_IP);
    let c = world.channel_mut(chan);
    // west(0) ⟷ m1(1), m2(2); east(3) ⟷ m1, m2; 0⟷3 and 1⟷2 deaf.
    for (x, y) in [(0usize, 3usize), (1, 2)] {
        c.set_hears(StationId(x), StationId(y), false);
        c.set_hears(StationId(y), StationId(x), false);
    }
    let west_router = NetRomRouter::new(fast_cfg("WGATE", "SEA"));
    let sendq = west_router.send_queue();
    let report = west_router.report();
    world.add_app(west, Box::new(west_router));
    world.add_app(
        HostId::clone(&_m1),
        Box::new(NetRomRouter::new(fast_cfg("R1", "R1"))),
    );
    world.add_app(
        HostId::clone(&_m2),
        Box::new(NetRomRouter::new(fast_cfg("R2", "R2"))),
    );
    world.add_app(east, Box::new(NetRomRouter::new(fast_cfg("EGATE", "NYC"))));

    world.run_for(SimDuration::from_secs(150));
    assert!(report.borrow().destinations.contains(&"EGATE".to_string()));

    let east_udp = world.host_mut(east).stack.udp_bind(4000).expect("bind");
    let dg = UdpDatagram {
        src_port: 1,
        dst_port: 4000,
        payload: b"via either relay".to_vec(),
    };
    let ip = Ipv4Packet::new(WEST_IP, EAST_IP, Proto::Udp, dg.encode(WEST_IP, EAST_IP));
    sendq
        .borrow_mut()
        .push((Ax25Addr::parse_or_panic("EGATE"), ip.encode()));
    world.run_for(SimDuration::from_secs(120));
    assert!(world.host_mut(east).stack.udp_recv(east_udp).is_some());
}
