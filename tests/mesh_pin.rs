//! Pins the ping-only `scenario::mesh` default byte-for-byte.
//!
//! The workload crate's fleet builder reads the mesh through the
//! `MeshNet` iteration API (`islands`/`island_hosts`/`host_addr`/…),
//! which was added for it. This test guards the other side of that
//! bargain: with no fleet deployed, the mesh and the E15-style ping
//! traffic over it must produce exactly the event stream they produced
//! before the API existed — the pinned FNV digest below is the same
//! kind of constant `results/e15_city_scale.txt` records at city scale.

use ultrix_packet_radio::apps::ping::Pinger;
use ultrix_packet_radio::gateway::scenario::{self, city};
use ultrix_packet_radio::sim::{SimDuration, SimTime};

fn fnv(log: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in log.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// E15's wiring at guard scale: host 0 of island g pings host 0 of
/// island g+1, starts staggered.
fn build(gateways: usize, hosts: usize, seed: u64) -> scenario::MeshNet {
    let mut m = scenario::mesh(gateways, hosts, seed);
    for g in 0..gateways {
        let p = Pinger::new(
            city::host_ip((g + 1) % gateways, 0),
            g as u16,
            2,
            SimDuration::from_secs(4),
            64,
        )
        .delayed(SimDuration::from_millis(200 + (37 * g as u64) % 1800));
        m.world.add_app(m.hosts[g][0], Box::new(p));
    }
    m
}

#[test]
fn ping_only_mesh_digest_is_pinned() {
    let mut m = build(3, 4, 1988);
    m.world.run_until_reference(SimTime::from_secs(15));
    let mut log = String::new();
    for (h, t, e) in m.world.take_events() {
        log.push_str(&format!("{h:?} {t} {e:?}\n"));
    }
    assert!(log.contains("PingReply"), "cross-island pings must flow");
    assert_eq!(
        fnv(&log),
        0x5dcd_508a_920b_be2c,
        "ping-only mesh event stream changed — the MeshNet iteration API \
         must stay purely additive (update this pin only for an \
         intentional wire/behavior change)"
    );
}

#[test]
fn iteration_api_matches_mesh_internals() {
    let m = scenario::mesh(3, 4, 7);
    assert_eq!(m.islands(), 3);
    let mut seen = 0;
    for (g, i, h, addr) in m.iter_hosts() {
        assert_eq!(m.island_hosts(g)[i], h);
        assert_eq!(m.host_addr(g, i), addr);
        assert_eq!(addr, city::host_ip(g, i));
        seen += 1;
    }
    assert_eq!(seen, 3 * 4);
    assert_eq!(m.gateway(1), m.gateways[1]);
    assert_eq!(m.island_channel(2), m.channels[2]);
}
