//! E17's correctness side — the compiled packet-filter engine exercised
//! end-to-end through the running gateway (DESIGN.md §13): the §4.3 gate
//! enforced at the driver hooks, operator control over ICMP, verdicts in
//! the trace, and the transparency guarantee that a permissive engine
//! leaves the simulated world's event stream untouched.

use apps::ping::Pinger;
use filter::{Action, FilterConfig, GateConfig, Rule};
use gateway::scenario::{
    paper_topology, PaperConfig, ETHER_HOST_IP, GW_ETHER_IP, GW_RADIO_IP, PC_IP,
};
use netstack::icmp::{GateAuth, IcmpMessage};
use netstack::route::Prefix;
use sim::SimDuration;

fn filtered(cfg: FilterConfig) -> PaperConfig {
    PaperConfig {
        filter: Some(cfg),
        ..Default::default()
    }
}

#[test]
fn unsolicited_inbound_is_blocked_until_amateur_initiates() {
    let mut s = paper_topology(filtered(FilterConfig::gateway()), 1701);

    // Phase 1: the Ethernet host pings the PC out of the blue — the
    // engine denies at the gateway's output hook, before ARP ever runs.
    let p1 = Pinger::new(PC_IP, 10, 3, SimDuration::from_secs(10), 16);
    let r1 = p1.report();
    s.world.add_app(s.ether_host, Box::new(p1));
    s.world.run_for(SimDuration::from_secs(60));
    assert_eq!(r1.borrow().received, 0, "unsolicited inbound must not pass");
    let stats = s.world.host(s.gw).filter_stats().unwrap();
    assert!(stats.gate_denied >= 1, "gate denial counted: {stats:?}");
    assert!(stats.denied >= 3, "every probe denied: {stats:?}");
    assert!(
        stats.cache_hits >= 1,
        "repeat probes answered from the decision cache: {stats:?}"
    );

    // Phase 2: the PC (amateur side) pings out — auto_open admits the pair.
    let now = s.world.now;
    s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 11, 1, 16);
    s.world.run_for(SimDuration::from_secs(60));
    assert!(
        s.world.host(s.gw).filter_stats().unwrap().gate_opened >= 1,
        "amateur-initiated traffic opened an entry"
    );

    // Phase 3: now the same Ethernet host can reach the PC.
    let p3 = Pinger::new(PC_IP, 12, 2, SimDuration::from_secs(10), 16);
    let r3 = p3.report();
    s.world.add_app(s.ether_host, Box::new(p3));
    s.world.run_for(SimDuration::from_secs(90));
    assert!(
        r3.borrow().received >= 1,
        "inbound allowed after initiation"
    );
}

#[test]
fn gate_close_cuts_an_active_pairing() {
    let mut s = paper_topology(filtered(FilterConfig::gateway()), 1702);
    let now = s.world.now;
    s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 1, 1, 16);
    s.world.run_for(SimDuration::from_secs(30));
    assert!(s.world.host(s.gw).filter_stats().unwrap().gate_opened >= 1);

    // §4.3: the control operator cuts off the link. The cached admission
    // must die with the entry (generation bump), not linger.
    let now = s.world.now;
    s.world.host_mut(s.pc).send_gate_message(
        now,
        GW_RADIO_IP,
        IcmpMessage::GateClose {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            auth: None,
        },
    );
    s.world.run_for(SimDuration::from_secs(30));
    assert_eq!(s.world.host(s.gw).filter_stats().unwrap().gate_closed, 1);

    let p = Pinger::new(PC_IP, 2, 2, SimDuration::from_secs(5), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    assert_eq!(r.borrow().received, 0, "closed gate must deny");
}

#[test]
fn foreign_side_control_requires_password() {
    let gate = GateConfig {
        operators: vec![("N7AKR".to_string(), "seattle".to_string())],
        ..Default::default()
    };
    let mut s = paper_topology(
        filtered(FilterConfig {
            gate: Some(gate),
            ..FilterConfig::permissive()
        }),
        1703,
    );

    // Unauthenticated GateOpen from the Ethernet side: rejected.
    let now = s.world.now;
    s.world.host_mut(s.ether_host).send_gate_message(
        now,
        GW_ETHER_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 600,
            auth: None,
        },
    );
    s.world.run_for(SimDuration::from_secs(5));
    assert_eq!(s.world.host(s.gw).filter_stats().unwrap().auth_failures, 1);

    // With the right callsign+password: applied, inbound opens.
    let now = s.world.now;
    s.world.host_mut(s.ether_host).send_gate_message(
        now,
        GW_ETHER_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 600,
            auth: Some(GateAuth {
                callsign: "N7AKR".to_string(),
                password: "seattle".to_string(),
            }),
        },
    );
    s.world.run_for(SimDuration::from_secs(5));
    assert_eq!(
        s.world.host(s.gw).filter_stats().unwrap().opened_by_message,
        1
    );
    let p = Pinger::new(PC_IP, 5, 1, SimDuration::from_secs(1), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    assert_eq!(r.borrow().received, 1);
}

#[test]
fn compiled_rules_police_traffic_the_gate_admitted() {
    // A /32 deny of the Ethernet host must beat the gate's admission:
    // specificity wins even for a solicited flow.
    let mut cfg = FilterConfig::gateway();
    cfg.rules = vec![Rule::any(Action::Deny).from(Prefix::new(ETHER_HOST_IP, 32))];
    let mut s = paper_topology(filtered(cfg), 1704);

    let now = s.world.now;
    s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 1, 2, 16);
    s.world.run_for(SimDuration::from_secs(60));
    // Outbound PC→ether passes (no rule matches that direction), the
    // gate entry opens, but every reply transiting back toward the radio
    // is killed by the /32 rule — the ping never completes.
    let stats = s.world.host(s.gw).filter_stats().unwrap();
    assert!(stats.gate_opened >= 1, "{stats:?}");
    assert!(
        stats.denied >= 1,
        "rule denial despite open gate: {stats:?}"
    );
    let drops = s
        .world
        .host(s.gw)
        .pr_driver()
        .unwrap()
        .stats()
        .filter_drop_out;
    assert!(
        drops >= 1,
        "denial landed at the radio output hook: {drops}"
    );
}

#[test]
fn filter_verdicts_reach_the_trace() {
    let mut s = paper_topology(filtered(FilterConfig::gateway()), 1705);
    s.world.trace = sim::trace::Trace::enabled();

    let p = Pinger::new(PC_IP, 7, 4, SimDuration::from_secs(5), 16);
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));

    let trace = &s.world.trace;
    let acl = trace.by_category(sim::trace::Category::Acl);
    assert!(!acl.is_empty(), "filter verdicts recorded under Acl");
    assert!(
        trace.contains("deny 128.95.1.4 > 44.24.0.5"),
        "denial names the flow"
    );
}

#[test]
fn permissive_filter_is_policy_transparent() {
    // The transparency guarantee behind leaving E1–E16 goldens
    // byte-identical: an installed engine with the permissive config
    // changes nothing about the world's observable history, even though
    // every packet now crosses the eval hooks.
    let run = |filter: Option<FilterConfig>| {
        let cfg = PaperConfig {
            acl: false,
            filter,
            ..Default::default()
        };
        let mut s = paper_topology(cfg, 1706);
        let out = Pinger::new(ETHER_HOST_IP, 1, 5, SimDuration::from_secs(11), 32);
        s.world.add_app(s.pc, Box::new(out));
        let inb = Pinger::new(PC_IP, 2, 5, SimDuration::from_secs(13), 24);
        s.world.add_app(s.ether_host, Box::new(inb));
        s.world.run_for(SimDuration::from_secs(300));
        (
            s.world.take_events(),
            s.world.channel(s.chan).stats().transmissions,
            s.world.host(s.gw).cpu.stats().char_interrupts,
        )
    };
    let bare = run(None);
    let permissive = run(Some(FilterConfig::permissive()));
    assert_eq!(
        bare.1, permissive.1,
        "identical radio-channel transmission count"
    );
    assert_eq!(bare.2, permissive.2, "identical gateway interrupt count");
    assert_eq!(bare.0, permissive.0, "identical stack event streams");

    // And the engine really was in the path, not bypassed.
    let mut s = paper_topology(
        PaperConfig {
            acl: false,
            filter: Some(FilterConfig::permissive()),
            ..Default::default()
        },
        1706,
    );
    let p = Pinger::new(ETHER_HOST_IP, 3, 2, SimDuration::from_secs(5), 16);
    s.world.add_app(s.pc, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    let stats = s.world.host(s.gw).filter_stats().unwrap();
    assert!(
        stats.allowed >= 4,
        "permissive engine judged the packets: {stats:?}"
    );
}
