//! §2.3's ARP complication, end to end: "some entries may contain
//! additional callsigns for digipeaters." Only the PC is configured with
//! the digipeater path; the gateway must learn the reverse path from the
//! PC's digipeated ARP request — and then the ping round-trips.

use apps::ping::Pinger;
use ax25::addr::Ax25Addr;
use gateway::host::{HostConfig, RadioIfConfig};
use gateway::hwaddr::Ax25Hw;
use gateway::scenario::{GW_RADIO_IP, PC_IP};
use gateway::world::World;
use netstack::route::Prefix;
use radio::channel::StationId;
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use sim::{Bandwidth, SimDuration};

#[test]
fn gateway_learns_reverse_digipeater_path_from_arp() {
    let mut world = World::new(1101);
    let chan = world.add_channel(Bandwidth::RADIO_1200);

    let mut pc_cfg = HostConfig::named("pc");
    pc_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("KB7DZ"),
        ip: PC_IP,
        prefix_len: 16,
    });
    let pc = world.add_host(pc_cfg);
    world.attach_radio(pc, chan, 9600, RxMode::Promiscuous, MacConfig::default());

    let mut gw_cfg = HostConfig::named("gw");
    gw_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("N7AKR-1"),
        ip: GW_RADIO_IP,
        prefix_len: 16,
    });
    let gw = world.add_host(gw_cfg);
    world.attach_radio(gw, chan, 9600, RxMode::Promiscuous, MacConfig::default());

    let digi = Ax25Addr::parse_or_panic("DIGI");
    world.add_digipeater(chan, digi, MacConfig::default());

    // Hidden ends: all traffic must cross the digipeater.
    let c = world.channel_mut(chan);
    c.set_hears(StationId(0), StationId(1), false);
    c.set_hears(StationId(1), StationId(0), false);

    // Only the PC knows the path; the gateway has NO static entry.
    let pc_if = world.host(pc).radio_iface().unwrap();
    world
        .host_mut(pc)
        .stack
        .routes_mut()
        .add(Prefix::default_route(), Some(GW_RADIO_IP), pc_if);
    world
        .host_mut(pc)
        .pr_driver_mut()
        .unwrap()
        .arp_mut()
        .insert_static(
            GW_RADIO_IP,
            Ax25Hw::via(Ax25Addr::parse_or_panic("N7AKR-1"), &[digi]).encode(),
        );

    let pinger = Pinger::new(GW_RADIO_IP, 1, 3, SimDuration::from_secs(45), 32);
    let report = pinger.report();
    world.add_app(pc, Box::new(pinger));
    world.run_for(SimDuration::from_secs(300));

    assert_eq!(
        report.borrow().received,
        3,
        "replies must retrace the learned reverse path"
    );
    // The gateway's ARP cache now holds the PC via the digipeater.
    let learned = world
        .host(gw)
        .pr_driver()
        .unwrap()
        .arp()
        .lookup(world.now, PC_IP)
        .expect("entry learned from the digipeated request");
    let hw = Ax25Hw::decode(learned).expect("decodes");
    assert_eq!(hw.station, Ax25Addr::parse_or_panic("KB7DZ"));
    assert_eq!(hw.path, vec![digi], "reverse path recorded");
}
