//! E3 (§4.1 timeouts) and E9 (MTU mismatch) exercised end to end.

use apps::bulk::{BulkSender, BulkSink};
use apps::ping::Pinger;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP, GW_RADIO_IP, PC_IP};
use netstack::icmp::IcmpMessage;
use netstack::stack::fixed_rto_config;
use sim::SimDuration;

/// Runs one Ethernet→PC bulk transfer with the given TCP config and
/// returns (retransmissions, segments, finished).
fn run_transfer(fixed: bool, seed: u64) -> (u64, u64, bool) {
    let mut s = paper_topology(PaperConfig::default(), seed);
    // Authorize the inbound direction first (§4.3).
    let now = s.world.now;
    s.world.host_mut(s.pc).send_gate_message(
        now,
        GW_RADIO_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 7200,
            auth: None,
        },
    );
    let sink = BulkSink::new(6000);
    let sink_report = sink.report();
    s.world.add_app(s.pc, Box::new(sink));
    let mut sender =
        BulkSender::new(PC_IP, 6000, 4000).with_start_delay(SimDuration::from_secs(10));
    if fixed {
        sender = sender.with_tcp(fixed_rto_config());
    }
    let send_report = sender.report();
    s.world.add_app(s.ether_host, Box::new(sender));
    s.world.run_for(SimDuration::from_secs(3600));

    let tx = send_report.borrow();
    let finished = tx.finished_at.is_some() && sink_report.borrow().bytes == 4000;
    (tx.tcb.retransmissions, tx.tcb.segments_sent, finished)
}

#[test]
fn fixed_rto_wastes_far_more_retransmissions_than_adaptive() {
    let (fixed_rtx, fixed_segs, fixed_done) = run_transfer(true, 701);
    let (adaptive_rtx, adaptive_segs, adaptive_done) = run_transfer(false, 701);
    assert!(fixed_done && adaptive_done, "both transfers complete");
    // §4.1: the fixed-timeout host "initially retransmits packets several
    // times before a response makes it back"; the adaptive host learns.
    assert!(
        fixed_rtx >= 2 * adaptive_rtx.max(1),
        "fixed {fixed_rtx} rtx vs adaptive {adaptive_rtx} rtx \
         (segments {fixed_segs} vs {adaptive_segs})"
    );
}

#[test]
fn adaptive_rto_learns_a_multi_second_srtt() {
    let mut s = paper_topology(PaperConfig::default(), 702);
    let sink = BulkSink::new(6001);
    s.world.add_app(s.ether_host, Box::new(sink));
    // A small send buffer keeps the half-duplex channel from saturating
    // (a 4 kB window into a 150 B/s pipe never drains, and then every
    // segment retransmits before its ack — Karn forbids sampling those).
    // 1988 stacks ran small socket buffers for exactly this reason.
    let sender = BulkSender::new(ETHER_HOST_IP, 6001, 6_000).with_tcp(netstack::tcp::TcpConfig {
        send_buf: 1024,
        ..netstack::tcp::TcpConfig::default()
    });
    let report = sender.report();
    s.world.add_app(s.pc, Box::new(sender));
    s.world.run_for(SimDuration::from_secs(3 * 3600));
    let r = report.borrow();
    assert!(r.finished_at.is_some());
    assert!(
        r.tcb.srtt_secs > 1.0,
        "the radio path RTT is seconds, learned srtt = {}",
        r.tcb.srtt_secs
    );
    assert!(r.tcb.rtt_samples >= 1, "samples: {}", r.tcb.rtt_samples);
}

#[test]
fn large_ping_fragments_at_the_gateway_and_reassembles() {
    // 600 B of ICMP payload fits one Ethernet frame but must fragment
    // onto the 256-octet AX.25 MTU — and come back whole.
    let mut s = paper_topology(PaperConfig::default(), 703);
    let now = s.world.now;
    // PC pings out first so the return path is authorized and ARP warm.
    s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 1, 1, 16);
    s.world.run_for(SimDuration::from_secs(30));

    let pinger = Pinger::new(PC_IP, 9, 1, SimDuration::from_secs(1), 600);
    let report = pinger.report();
    s.world.add_app(s.ether_host, Box::new(pinger));
    s.world.run_for(SimDuration::from_secs(300));

    let r = report.borrow_mut();
    assert_eq!(r.received, 1, "fragmented ping reassembled and returned");
    // It took at least 600*2*8/1200 = 8 s of pure airtime.
    assert!(r.rtts.mean().unwrap() > SimDuration::from_secs(8));
    // The gateway emitted more radio IP packets than it got IP packets in
    // (fragmentation happened there).
    let gw = s.world.host(s.gw).pr_driver().unwrap().stats();
    assert!(gw.ip_out >= 3, "fragments on pr0: {}", gw.ip_out);
}

#[test]
fn tcp_mss_is_clamped_by_the_pc_not_fragmented() {
    // TCP negotiates MSS 536 on both sides; over the radio MTU 256 the
    // PC announces... our stack uses a fixed default MSS, so segments of
    // 536 payload cross the gateway as IP fragments. Verify they still
    // arrive intact (the gateway fragments transparently).
    let mut s = paper_topology(PaperConfig::default(), 704);
    let sink = BulkSink::new(6002);
    let sink_report = sink.report();
    s.world.add_app(s.ether_host, Box::new(sink));
    let sender = BulkSender::new(ETHER_HOST_IP, 6002, 2000);
    s.world.add_app(s.pc, Box::new(sender));
    s.world.run_for(SimDuration::from_secs(1800));
    let r = sink_report.borrow();
    assert_eq!(r.bytes, 2000);
    assert!(!r.corrupt);
}
