//! E8 — §2.4's application-layer gateway: a non-IP AX.25 terminal user
//! logs into an Internet telnet host through the gateway.

use apps::ax25chat::TerminalUser;
use apps::telnet::TelnetServer;
use ax25::addr::Ax25Addr;
use gateway::appgw::AppGateway;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use sim::SimDuration;

#[test]
fn terminal_user_reaches_telnet_through_the_app_gateway() {
    let mut s = paper_topology(PaperConfig::default(), 401);

    // The telnet host on the Ethernet.
    let server = TelnetServer::new(23, "vax2");
    s.world.add_app(s.ether_host, Box::new(server));

    // The §2.4 user program on the gateway, bridging AX.25 → telnet.
    let gw_call = s.world.host(s.gw).callsign().expect("gw call");
    let appgw = AppGateway::new(gw_call, (ETHER_HOST_IP, 23));
    let gw_report = appgw.report_handle();
    s.world.add_app(s.gw, Box::new(appgw));

    // A terminal user on the PC — speaking only AX.25, no IP at all.
    let user = TerminalUser::new(
        Ax25Addr::parse_or_panic("KB7DZ"),
        gw_call,
        vec![
            ("login: ", "bcn\r"),
            ("Password:", "radio\r"),
            ("% ", "who\r"),
            ("% ", "logout\r"),
        ],
    );
    let user_report = user.report();
    s.world.add_app(s.pc, Box::new(user));

    s.world.run_for(SimDuration::from_secs(1200));

    let u = user_report.borrow();
    assert!(u.connected, "AX.25 link established");
    assert!(
        u.transcript.contains("4.3 BSD UNIX (vax2)"),
        "telnet banner crossed the bridge: {:?}",
        u.transcript
    );
    assert!(
        u.transcript.contains("packet radio"),
        "who output arrived: {:?}",
        u.transcript
    );
    assert_eq!(u.lines_sent, 4, "script completed");

    let g = gw_report.borrow();
    assert_eq!(g.sessions_accepted, 1);
    assert!(g.bytes_to_tcp > 0, "radio→TCP bytes: {}", g.bytes_to_tcp);
    assert!(
        g.bytes_to_radio > 0,
        "TCP→radio bytes: {}",
        g.bytes_to_radio
    );

    // Crucially, the PC never used IP: its driver saw no IP frames.
    assert_eq!(s.world.host(s.pc).pr_driver().unwrap().stats().ip_in, 0);
    assert!(s.world.host(s.pc).pr_driver().unwrap().stats().diverted > 0);
}
