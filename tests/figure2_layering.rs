//! F2 — Figure 2's protocol stack against the ISO/OSI reference model.
//!
//! The paper's figure maps: Radio→physical, TNC/KISS + AX.25→link,
//! IP→network, TCP/UDP→transport, telnet/FTP/SMTP→application. Here one
//! application payload is wrapped layer by layer and unwrapped again,
//! checking the exact on-the-wire identity at each boundary.

use ax25::addr::Ax25Addr;
use ax25::fcs::{append_fcs, verify_and_strip_fcs};
use ax25::frame::{Frame, Pid};
use netstack::ip::{Ipv4Packet, Proto};
use netstack::tcp::{TcpFlags, TcpSegment};
use netstack::udp::UdpDatagram;
use std::net::Ipv4Addr;

const PC: Ipv4Addr = Ipv4Addr::new(44, 24, 0, 5);
const VAX: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 4);

#[test]
fn telnet_keystroke_descends_and_ascends_the_stack() {
    // Layer 7: one telnet keystroke.
    let application = b"date\n".to_vec();

    // Layer 4: TCP.
    let segment = TcpSegment {
        src_port: 1025,
        dst_port: 23,
        seq: 1000,
        ack: 2000,
        flags: TcpFlags {
            ack: true,
            psh: true,
            ..TcpFlags::default()
        },
        window: 4096,
        mss: None,
        payload: application.clone(),
    };
    let l4 = segment.encode(PC, VAX);

    // Layer 3: IP.
    let packet = Ipv4Packet::new(PC, VAX, Proto::Tcp, l4);
    let l3 = packet.encode();

    // Layer 2: AX.25 UI frame with PID=IP, then the TNC's FCS.
    let frame = Frame::ui(
        Ax25Addr::parse_or_panic("N7AKR-1"),
        Ax25Addr::parse_or_panic("KB7DZ"),
        Pid::Ip,
        l3.clone(),
    );
    let mut on_air = frame.encode();
    append_fcs(&mut on_air);

    // Layer 1/2 boundary on the serial side: KISS framing.
    let serial = kiss::encode(0, kiss::Command::Data, &frame.encode());

    // ---- ascend ----
    // Serial → KISS → AX.25.
    let kiss_frames = kiss::decode_stream(&serial);
    assert_eq!(kiss_frames.len(), 1);
    let up_frame = Frame::decode(&kiss_frames[0].payload).unwrap();
    assert_eq!(up_frame, frame);
    assert_eq!(up_frame.pid, Some(Pid::Ip), "driver demux key (§2.2)");

    // Air → FCS check → AX.25 (the path through the receiving TNC).
    let body = verify_and_strip_fcs(&on_air).expect("FCS verifies");
    assert_eq!(Frame::decode(body).unwrap(), frame);

    // AX.25 info → IP.
    let up_packet = Ipv4Packet::decode(&up_frame.info).unwrap();
    assert_eq!(up_packet, packet);
    assert_eq!(up_packet.proto, Proto::Tcp);

    // IP payload → TCP.
    let up_segment = TcpSegment::decode(&up_packet.payload, PC, VAX).unwrap();
    assert_eq!(up_segment, segment);

    // TCP payload → application.
    assert_eq!(up_segment.payload, application);
}

#[test]
fn udp_takes_the_same_network_path() {
    let dg = UdpDatagram {
        src_port: 2001,
        dst_port: 1235,
        payload: b"?N7AKR".to_vec(),
    };
    let packet = Ipv4Packet::new(PC, VAX, Proto::Udp, dg.encode(PC, VAX));
    let frame = Frame::ui(
        Ax25Addr::parse_or_panic("N7AKR-1"),
        Ax25Addr::parse_or_panic("KB7DZ"),
        Pid::Ip,
        packet.encode(),
    );
    let up = Frame::decode(&frame.encode()).unwrap();
    let up_packet = Ipv4Packet::decode(&up.info).unwrap();
    assert_eq!(up_packet.proto, Proto::Udp);
    let up_dg = UdpDatagram::decode(&up_packet.payload, PC, VAX).unwrap();
    assert_eq!(up_dg, dg);
}

#[test]
fn non_ip_traffic_stays_at_layer_two() {
    // Keyboard chatter has PID F0 (no layer 3): the driver must divert
    // it rather than hand it to IP (§2.2/§2.4).
    let frame = Frame::ui(
        Ax25Addr::parse_or_panic("N7AKR-1"),
        Ax25Addr::parse_or_panic("KB7DZ"),
        Pid::Text,
        b"hello direct".to_vec(),
    );
    let up = Frame::decode(&frame.encode()).unwrap();
    assert_eq!(up.pid, Some(Pid::Text));
    // IP would refuse it anyway:
    assert!(Ipv4Packet::decode(&up.info).is_err());
}
