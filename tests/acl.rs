//! E5 — §4.3's access-control table, exercised end-to-end through the
//! running gateway (not just the unit-level table). The table is the
//! filter engine's soft-state gate (DESIGN.md §13); custom TTLs and
//! operators are installed at build time through `PaperConfig::filter`.

use apps::ping::Pinger;
use filter::{FilterConfig, GateConfig};
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP, GW_RADIO_IP, PC_IP};
use netstack::icmp::{GateAuth, IcmpMessage};
use sim::SimDuration;

fn gate_topology(gate: GateConfig, seed: u64) -> gateway::scenario::PaperScenario {
    let cfg = PaperConfig {
        filter: Some(FilterConfig {
            gate: Some(gate),
            ..FilterConfig::permissive()
        }),
        ..PaperConfig::default()
    };
    paper_topology(cfg, seed)
}

#[test]
fn unsolicited_inbound_is_blocked_until_amateur_initiates() {
    let mut s = paper_topology(PaperConfig::default(), 301);

    // Phase 1: the Ethernet host pings the PC out of the blue — denied.
    let p1 = Pinger::new(PC_IP, 10, 3, SimDuration::from_secs(10), 16);
    let r1 = p1.report();
    s.world.add_app(s.ether_host, Box::new(p1));
    s.world.run_for(SimDuration::from_secs(60));
    assert_eq!(r1.borrow().received, 0, "unsolicited inbound must not pass");
    let denied = s.world.host(s.gw).filter_stats().unwrap().denied;
    assert!(denied >= 3, "gateway counted denials: {denied}");

    // Phase 2: the PC (amateur side) pings out — this opens the pairing.
    let now = s.world.now;
    s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 11, 1, 16);
    s.world.run_for(SimDuration::from_secs(60));
    let st = s.world.host(s.gw).filter_stats().unwrap();
    assert!(
        st.gate_opened + st.gate_refreshed >= 1,
        "amateur-initiated traffic opened an entry"
    );

    // Phase 3: now the same Ethernet host can reach the PC.
    let p3 = Pinger::new(PC_IP, 12, 2, SimDuration::from_secs(10), 16);
    let r3 = p3.report();
    s.world.add_app(s.ether_host, Box::new(p3));
    s.world.run_for(SimDuration::from_secs(90));
    assert!(
        r3.borrow().received >= 1,
        "inbound allowed after initiation"
    );
}

#[test]
fn entries_expire_without_amateur_refresh() {
    let mut s = gate_topology(
        GateConfig {
            entry_ttl: SimDuration::from_secs(120),
            ..GateConfig::default()
        },
        302,
    );

    // Open the gate by pinging out.
    let now = s.world.now;
    s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 1, 1, 16);
    s.world.run_for(SimDuration::from_secs(30));

    // Inside the TTL: inbound works.
    let p = Pinger::new(PC_IP, 2, 1, SimDuration::from_secs(1), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    assert_eq!(r.borrow().received, 1, "inside TTL");

    // Wait out the TTL with no amateur traffic, then try again.
    s.world.run_for(SimDuration::from_secs(180));
    let p = Pinger::new(PC_IP, 3, 2, SimDuration::from_secs(5), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    assert_eq!(r.borrow().received, 0, "expired entry must deny");
}

#[test]
fn gate_close_cuts_an_active_pairing() {
    let mut s = paper_topology(PaperConfig::default(), 303);
    // Open by pinging out.
    let now = s.world.now;
    s.world.host_mut(s.pc).ping(now, ETHER_HOST_IP, 1, 1, 16);
    s.world.run_for(SimDuration::from_secs(30));

    // The control operator cuts the link (§4.3: "exercise his control
    // operator function to cut off the link").
    let now = s.world.now;
    s.world.host_mut(s.pc).send_gate_message(
        now,
        GW_RADIO_IP,
        IcmpMessage::GateClose {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            auth: None,
        },
    );
    s.world.run_for(SimDuration::from_secs(30));
    assert_eq!(s.world.host(s.gw).filter_stats().unwrap().gate_closed, 1);

    // Inbound is blocked again.
    let p = Pinger::new(PC_IP, 2, 2, SimDuration::from_secs(5), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    assert_eq!(r.borrow().received, 0, "closed gate must deny");
}

#[test]
fn foreign_side_control_requires_password() {
    // A control operator on the gateway's gate.
    let mut s = gate_topology(
        GateConfig {
            operators: vec![("N7AKR".to_string(), "seattle".to_string())],
            ..GateConfig::default()
        },
        304,
    );

    // Unauthenticated GateOpen from the Ethernet side: rejected.
    let now = s.world.now;
    s.world.host_mut(s.ether_host).send_gate_message(
        now,
        gateway::scenario::GW_ETHER_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 600,
            auth: None,
        },
    );
    s.world.run_for(SimDuration::from_secs(5));
    assert_eq!(s.world.host(s.gw).filter_stats().unwrap().auth_failures, 1);

    // With the right callsign+password: applied, inbound opens.
    let now = s.world.now;
    s.world.host_mut(s.ether_host).send_gate_message(
        now,
        gateway::scenario::GW_ETHER_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 600,
            auth: Some(GateAuth {
                callsign: "N7AKR".to_string(),
                password: "seattle".to_string(),
            }),
        },
    );
    s.world.run_for(SimDuration::from_secs(5));
    assert_eq!(
        s.world.host(s.gw).filter_stats().unwrap().opened_by_message,
        1
    );
    let p = Pinger::new(PC_IP, 5, 1, SimDuration::from_secs(1), 16);
    let r = p.report();
    s.world.add_app(s.ether_host, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    assert_eq!(r.borrow().received, 1);
}
