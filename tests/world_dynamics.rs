//! World-level dynamics: hidden terminals end to end, concurrent
//! services sharing the channel, and determinism of whole scenarios.

use apps::ping::Pinger;
use apps::telnet::{TelnetClient, TelnetServer};
use ax25::addr::Ax25Addr;
use gateway::host::{HostConfig, RadioIfConfig};
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use netstack::stack::StackAction;
use radio::channel::StationId;
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use radio::traffic::BeaconConfig;
use sim::{SimDuration, SimTime};

#[test]
fn hidden_terminal_hurts_where_carrier_sense_cannot_help() {
    // A second radio PC that the first PC cannot hear (and vice versa):
    // both talk to the gateway, colliding at it despite perfect CSMA.
    let run = |hidden: bool| {
        let mut s = paper_topology(PaperConfig::default(), 1001);
        let mut cfg2 = HostConfig::named("pc2");
        cfg2.radio = Some(RadioIfConfig {
            call: Ax25Addr::parse_or_panic("W1GOH"),
            ip: std::net::Ipv4Addr::new(44, 24, 0, 6),
            prefix_len: 16,
        });
        let pc2 = s.world.add_host(cfg2);
        s.world
            .attach_radio(pc2, s.chan, 9600, RxMode::Promiscuous, MacConfig::default());
        let pc2_if = s.world.host(pc2).radio_iface().unwrap();
        s.world.host_mut(pc2).stack.routes_mut().add(
            netstack::route::Prefix::default_route(),
            Some(gateway::scenario::GW_RADIO_IP),
            pc2_if,
        );
        if hidden {
            // Stations: pc=0, gw=1, pc2=2.
            let c = s.world.channel_mut(s.chan);
            c.set_hears(StationId(0), StationId(2), false);
            c.set_hears(StationId(2), StationId(0), false);
        }
        // Both PCs ping heavily at the same cadence.
        let p1 = Pinger::new(ETHER_HOST_IP, 1, 25, SimDuration::from_secs(8), 64);
        let p2 = Pinger::new(ETHER_HOST_IP, 2, 25, SimDuration::from_secs(8), 64);
        let r1 = p1.report();
        let r2 = p2.report();
        s.world.add_app(s.pc, Box::new(p1));
        s.world.add_app(pc2, Box::new(p2));
        s.world.run_for(SimDuration::from_secs(400));
        let delivered = r1.borrow().received + r2.borrow().received;
        let corrupted = s.world.channel(s.chan).stats().corrupted_receptions;
        (delivered, corrupted)
    };
    let (open_ok, open_bad) = run(false);
    let (hidden_ok, hidden_bad) = run(true);
    assert!(
        hidden_bad > open_bad * 2,
        "hidden terminals collide far more: open {open_bad} vs hidden {hidden_bad}"
    );
    assert!(
        hidden_ok < open_ok,
        "and deliver less: open {open_ok} vs hidden {hidden_ok}"
    );
}

#[test]
fn interactive_session_survives_background_chatter() {
    let mut s = paper_topology(PaperConfig::default(), 1002);
    s.world.add_beacon(
        s.chan,
        BeaconConfig {
            from: Ax25Addr::parse_or_panic("BG1"),
            to: Ax25Addr::parse_or_panic("CHAT"),
            frame_len: 100,
            mean_interval: SimDuration::from_secs(10),
            start: SimTime::ZERO,
            mac: MacConfig::default(),
        },
    );
    let server = TelnetServer::new(23, "vax2");
    s.world.add_app(s.ether_host, Box::new(server));
    let client = TelnetClient::standard_session(ETHER_HOST_IP, 23);
    let report = client.report();
    s.world.add_app(s.pc, Box::new(client));
    s.world.run_for(SimDuration::from_secs(2400));
    assert!(
        report.borrow().done,
        "TCP pushes the session through the contention: {}",
        report.borrow().transcript
    );
}

#[test]
fn whole_scenario_event_stream_is_deterministic() {
    let run = || {
        let mut s = paper_topology(PaperConfig::default(), 1003);
        s.world.add_beacon(
            s.chan,
            BeaconConfig {
                from: Ax25Addr::parse_or_panic("BG1"),
                to: Ax25Addr::parse_or_panic("CHAT"),
                frame_len: 80,
                mean_interval: SimDuration::from_secs(7),
                start: SimTime::ZERO,
                mac: MacConfig::default(),
            },
        );
        let p = Pinger::new(ETHER_HOST_IP, 1, 10, SimDuration::from_secs(13), 48);
        s.world.add_app(s.pc, Box::new(p));
        s.world.run_for(SimDuration::from_secs(300));
        let fingerprint: Vec<(usize, u64)> = s
            .world
            .take_events()
            .iter()
            .enumerate()
            .filter_map(|(i, (_, t, e))| match e {
                StackAction::PingReply { .. } => Some((i, t.as_nanos())),
                _ => None,
            })
            .collect();
        (
            fingerprint,
            s.world.channel(s.chan).stats().transmissions,
            s.world.host(s.gw).cpu.stats().char_interrupts,
        )
    };
    assert_eq!(run(), run(), "same seed ⇒ identical packet-level history");
}

#[test]
fn trace_records_the_packet_walk_when_enabled() {
    let mut s = paper_topology(PaperConfig::default(), 1005);
    s.world.trace = sim::trace::Trace::enabled();
    let p = Pinger::new(ETHER_HOST_IP, 1, 1, SimDuration::from_secs(5), 16);
    let r = p.report();
    s.world.add_app(s.pc, Box::new(p));
    s.world.run_for(SimDuration::from_secs(60));
    assert_eq!(r.borrow().received, 1);
    let trace = &s.world.trace;
    assert!(
        !trace.by_category(sim::trace::Category::Radio).is_empty(),
        "radio receptions recorded"
    );
    assert!(
        !trace.by_category(sim::trace::Category::Kiss).is_empty(),
        "TNC serial handoffs recorded"
    );
    assert!(trace.contains("PingReply"), "app event recorded");
    // Entries are time-ordered.
    let times: Vec<_> = trace.entries().iter().map(|e| e.time).collect();
    let mut sorted = times.clone();
    sorted.sort();
    assert_eq!(times, sorted);
}

#[test]
fn two_gateways_on_one_channel_stay_independent() {
    // A second, unrelated gateway pair sharing the frequency: traffic for
    // one must never be consumed by the other (callsign checks), only
    // contended with.
    let mut s = paper_topology(PaperConfig::default(), 1004);
    let mut other = HostConfig::named("other-gw");
    other.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("KD7NM"),
        ip: std::net::Ipv4Addr::new(44, 24, 0, 99),
        prefix_len: 16,
    });
    let other_gw = s.world.add_host(other);
    s.world.attach_radio(
        other_gw,
        s.chan,
        9600,
        RxMode::Promiscuous,
        MacConfig::default(),
    );

    let p = Pinger::new(ETHER_HOST_IP, 1, 5, SimDuration::from_secs(20), 32);
    let r = p.report();
    s.world.add_app(s.pc, Box::new(p));
    s.world.run_for(SimDuration::from_secs(200));
    assert_eq!(r.borrow().received, 5);
    let other_drv = s.world.host(other_gw).pr_driver().unwrap().stats();
    assert_eq!(other_drv.ip_in, 0, "bystander consumed nothing");
    assert!(
        other_drv.not_for_us > 0,
        "but its driver did see (and reject) the frames"
    );
}
