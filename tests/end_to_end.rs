//! E6 — the paper's §2.3 validation: telnet, file transfer, and mail
//! across the gateway, in both directions.

use apps::bulk::{BulkSender, BulkSink};
use apps::ftp::{FileClient, FileServer};
use apps::smtp::{Mail, SmtpClient, SmtpServer};
use apps::telnet::{TelnetClient, TelnetServer};
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP, PC_IP};
use sim::SimDuration;

#[test]
fn telnet_pc_to_ethernet_host() {
    let mut s = paper_topology(PaperConfig::default(), 101);
    let server = TelnetServer::new(23, "vax2");
    let server_report = server.report();
    let client = TelnetClient::standard_session(ETHER_HOST_IP, 23);
    let client_report = client.report();
    s.world.add_app(s.ether_host, Box::new(server));
    s.world.add_app(s.pc, Box::new(client));

    s.world.run_for(SimDuration::from_secs(900));

    let c = client_report.borrow();
    assert!(c.done, "session incomplete; transcript:\n{}", c.transcript);
    assert!(
        c.transcript.contains("4.3 BSD UNIX (vax2)"),
        "{}",
        c.transcript
    );
    assert!(
        c.transcript.contains("Tue Jun 14"),
        "date output: {}",
        c.transcript
    );
    assert!(
        c.transcript.contains("packet radio"),
        "who output: {}",
        c.transcript
    );
    assert_eq!(server_report.borrow().sessions, 1);
    assert!(server_report.borrow().commands >= 3);
}

/// Opens the §4.3 gate for Ethernet-initiated traffic to the PC: the
/// amateur operator authorizes the pairing with a GateOpen message, as
/// the paper proposes.
fn authorize_inbound(s: &mut gateway::scenario::PaperScenario) {
    use gateway::scenario::GW_RADIO_IP;
    use netstack::icmp::IcmpMessage;
    let now = s.world.now;
    s.world.host_mut(s.pc).send_gate_message(
        now,
        GW_RADIO_IP,
        IcmpMessage::GateOpen {
            amateur: PC_IP,
            foreign: ETHER_HOST_IP,
            ttl_secs: 3600,
            auth: None,
        },
    );
}

#[test]
fn telnet_reverse_direction_ethernet_to_pc() {
    // "remote login in both directions" — the PC runs the server here.
    let mut s = paper_topology(PaperConfig::default(), 102);
    authorize_inbound(&mut s);
    let server = TelnetServer::new(23, "pc");
    let client = TelnetClient::standard_session(PC_IP, 23);
    let client_report = client.report();
    s.world.add_app(s.pc, Box::new(server));
    s.world.add_app(s.ether_host, Box::new(client));

    s.world.run_for(SimDuration::from_secs(900));

    let c = client_report.borrow();
    assert!(
        c.done,
        "reverse session incomplete; transcript:\n{}",
        c.transcript
    );
    assert!(c.transcript.contains("(pc)"), "{}", c.transcript);
}

#[test]
fn file_transfer_across_the_gateway() {
    let mut s = paper_topology(PaperConfig::default(), 103);
    let server = FileServer::new(21, &[("notes.txt", 4000)]);
    let client = FileClient::new(ETHER_HOST_IP, 21, "notes.txt");
    let report = client.report();
    s.world.add_app(s.ether_host, Box::new(server));
    s.world.add_app(s.pc, Box::new(client));

    s.world.run_for(SimDuration::from_secs(1800));

    let r = report.borrow();
    assert!(r.done, "transfer incomplete: {r:?}");
    assert!(r.intact, "bytes corrupted in transit");
    assert_eq!(r.received, 4000);
    // 4000 bytes over a 1200 bit/s link: at least ~27 s of airtime.
    let d = r.duration().expect("finished");
    assert!(d > SimDuration::from_secs(25), "implausibly fast: {d}");
}

#[test]
fn file_not_found_is_reported() {
    let mut s = paper_topology(PaperConfig::default(), 104);
    let server = FileServer::new(21, &[("real.txt", 100)]);
    let server_report = server.report();
    let client = FileClient::new(ETHER_HOST_IP, 21, "missing.txt");
    let report = client.report();
    s.world.add_app(s.ether_host, Box::new(server));
    s.world.add_app(s.pc, Box::new(client));

    s.world.run_for(SimDuration::from_secs(300));

    assert!(report.borrow().not_found);
    assert_eq!(server_report.borrow().not_found, 1);
}

#[test]
fn mail_delivery_both_directions() {
    let mut s = paper_topology(PaperConfig::default(), 105);
    // PC -> Ethernet host.
    let server = SmtpServer::new(25, "vax2");
    let mailbox = server.report();
    let client = SmtpClient::new(
        ETHER_HOST_IP,
        25,
        Mail {
            from: "<bcn@pc.ampr.org>".into(),
            to: "<neuman@vax2.cs>".into(),
            body: vec!["Gateway is up!".into(), "73 de KB7DZ".into()],
        },
    );
    let client_report = client.report();
    s.world.add_app(s.ether_host, Box::new(server));
    s.world.add_app(s.pc, Box::new(client));
    s.world.run_for(SimDuration::from_secs(900));

    {
        let c = client_report.borrow();
        assert!(c.delivered && c.done, "outbound mail failed: {c:?}");
        let m = mailbox.borrow();
        assert_eq!(m.mailbox.len(), 1);
        assert_eq!(m.mailbox[0].from, "<bcn@pc.ampr.org>");
        assert_eq!(m.mailbox[0].body[1], "73 de KB7DZ");
    }

    // Ethernet host -> PC: needs the gate opened first (§4.3).
    let mut s = paper_topology(PaperConfig::default(), 106);
    authorize_inbound(&mut s);
    let server = SmtpServer::new(25, "pc");
    let mailbox = server.report();
    let client = SmtpClient::new(
        PC_IP,
        25,
        Mail {
            from: "<neuman@vax2.cs>".into(),
            to: "<bcn@pc.ampr.org>".into(),
            body: vec!["ACK your note".into()],
        },
    );
    let client_report = client.report();
    s.world.add_app(s.pc, Box::new(server));
    s.world.add_app(s.ether_host, Box::new(client));
    s.world.run_for(SimDuration::from_secs(900));

    let c = client_report.borrow();
    assert!(c.delivered && c.done, "inbound mail failed: {c:?}");
    assert_eq!(mailbox.borrow().mailbox.len(), 1);
}

#[test]
fn bulk_transfer_reports_consistent_accounting() {
    let mut s = paper_topology(PaperConfig::default(), 107);
    let sink = BulkSink::new(5001);
    let sink_report = sink.report();
    let sender = BulkSender::new(ETHER_HOST_IP, 5001, 3000);
    let send_report = sender.report();
    s.world.add_app(s.ether_host, Box::new(sink));
    s.world.add_app(s.pc, Box::new(sender));

    s.world.run_for(SimDuration::from_secs(1800));

    let tx = send_report.borrow();
    let rx = sink_report.borrow();
    assert_eq!(rx.bytes, 3000, "sink got everything");
    assert!(!rx.corrupt, "pattern intact");
    assert!(tx.finished_at.is_some(), "sender finished: {tx:?}");
    let goodput = tx.goodput_bps().expect("finished");
    assert!(goodput < 1200.0, "cannot beat the channel: {goodput}");
    assert!(goodput > 80.0, "implausibly slow: {goodput}");
}
