//! §5's distributed callbook: a PC on the radio side resolves callsigns
//! from servers on the Internet side, following referrals between
//! regional servers.

use apps::callbook::{CallbookClient, CallbookServer};
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP, GW_ETHER_IP};
use sim::SimDuration;

#[test]
fn local_lookup_answers_directly() {
    let mut s = paper_topology(PaperConfig::default(), 601);
    let server = CallbookServer::new(&[("N7AKR", "Bob Albrightson, Seattle WA")], &[]);
    let server_report = server.report();
    s.world.add_app(s.ether_host, Box::new(server));

    let client = CallbookClient::new(ETHER_HOST_IP, "N7AKR", 2100);
    let report = client.report();
    s.world.add_app(s.pc, Box::new(client));

    s.world.run_for(SimDuration::from_secs(120));

    let r = report.borrow();
    assert!(r.done, "lookup finished");
    assert_eq!(r.hops, 1);
    assert_eq!(
        r.answer.as_deref(),
        Some("OK N7AKR Bob Albrightson, Seattle WA")
    );
    assert_eq!(server_report.borrow().answered, 1);
}

#[test]
fn referral_walks_to_the_right_region() {
    let mut s = paper_topology(PaperConfig::default(), 602);
    // The Ethernet host serves region 7 and refers K-prefix calls to the
    // gateway's own server (the gateway is a host too).
    let seattle = CallbookServer::new(
        &[("N7AKR", "Bob Albrightson, Seattle WA")],
        &[("K", GW_ETHER_IP)],
    );
    let seattle_report = seattle.report();
    s.world.add_app(s.ether_host, Box::new(seattle));

    let east = CallbookServer::new(&[("K3MC", "Mike Chepponis")], &[]);
    let east_report = east.report();
    s.world.add_app(s.gw, Box::new(east));

    let client = CallbookClient::new(ETHER_HOST_IP, "K3MC", 2101);
    let report = client.report();
    s.world.add_app(s.pc, Box::new(client));

    s.world.run_for(SimDuration::from_secs(180));

    let r = report.borrow();
    assert!(r.done, "lookup finished: {r:?}");
    assert_eq!(r.hops, 2, "one referral followed");
    assert_eq!(r.answer.as_deref(), Some("OK K3MC Mike Chepponis"));
    assert_eq!(seattle_report.borrow().referred, 1);
    assert_eq!(east_report.borrow().answered, 1);
}

#[test]
fn unknown_callsign_errors() {
    let mut s = paper_topology(PaperConfig::default(), 603);
    let server = CallbookServer::new(&[("N7AKR", "Bob")], &[]);
    s.world.add_app(s.ether_host, Box::new(server));
    let client = CallbookClient::new(ETHER_HOST_IP, "XX9XX", 2102);
    let report = client.report();
    s.world.add_app(s.pc, Box::new(client));
    s.world.run_for(SimDuration::from_secs(120));
    let r = report.borrow();
    assert!(r.done);
    assert!(r.answer.as_deref().unwrap_or("").starts_with("ERR"));
}
