//! End-to-end properties of the RFC 1144 header compressor (`vj`):
//! whatever the compressor emits — passthrough, refresh, or compressed
//! deltas — the receiver must reconstruct the original datagram **byte
//! for byte** on a lossless channel; and on a lossy channel it must
//! never deliver a corrupted segment (the carried TCP checksum catches
//! stale contexts) and must resynchronise as soon as the TCP sender's
//! retransmission forces an uncompressed (PID 0x07) refresh through.

use proptest::prelude::*;
use vj::{VjCompressor, VjConfig, VjDecompressor, VjOutcome};

/// RFC 1071 ones-complement checksum of `bytes` (odd tail zero-padded).
fn cksum(bytes: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in bytes.chunks(2) {
        let w = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]);
        sum += u32::from(w);
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds a checksummed 40-byte-header TCP/IP datagram on connection
/// `conn` (distinct endpoints per index), independent of the vj crate's
/// own encoders so the property does not test the code against itself.
fn tcp_dgram(
    conn: u8,
    ipid: u16,
    seq: u32,
    ack: u32,
    win: u16,
    flags: u8,
    payload: &[u8],
) -> Vec<u8> {
    let total = 40 + payload.len();
    let mut d = vec![0u8; total];
    d[0] = 0x45;
    d[2..4].copy_from_slice(&(total as u16).to_be_bytes());
    d[4..6].copy_from_slice(&ipid.to_be_bytes());
    d[8] = 30;
    d[9] = 6;
    d[12..16].copy_from_slice(&[44, 24, 0, 1 + conn]);
    d[16..20].copy_from_slice(&[128, 95, 1, 10 + conn]);
    d[20..22].copy_from_slice(&(1024 + u16::from(conn)).to_be_bytes());
    d[22..24].copy_from_slice(&23u16.to_be_bytes());
    d[24..28].copy_from_slice(&seq.to_be_bytes());
    d[28..32].copy_from_slice(&ack.to_be_bytes());
    d[32] = 5 << 4;
    d[33] = flags;
    d[34..36].copy_from_slice(&win.to_be_bytes());
    d[40..].copy_from_slice(payload);
    let mut pseudo = vec![0u8; 12];
    pseudo[0..8].copy_from_slice(&d[12..20]);
    pseudo[9] = 6;
    pseudo[10..12].copy_from_slice(&((d.len() - 20) as u16).to_be_bytes());
    pseudo.extend_from_slice(&d[20..]);
    let tck = cksum(&pseudo);
    d[36..38].copy_from_slice(&tck.to_be_bytes());
    let ick = cksum(&d[..20]);
    d[10..12].copy_from_slice(&ick.to_be_bytes());
    d
}

/// A UDP datagram: the compressor must pass it through untouched.
fn udp_dgram(payload: &[u8]) -> Vec<u8> {
    let total = 28 + payload.len();
    let mut d = vec![0u8; total];
    d[0] = 0x45;
    d[2..4].copy_from_slice(&(total as u16).to_be_bytes());
    d[8] = 30;
    d[9] = 17;
    d[12..16].copy_from_slice(&[44, 24, 0, 9]);
    d[16..20].copy_from_slice(&[128, 95, 1, 9]);
    d[20..22].copy_from_slice(&4000u16.to_be_bytes());
    d[22..24].copy_from_slice(&53u16.to_be_bytes());
    d[24..26].copy_from_slice(&((8 + payload.len()) as u16).to_be_bytes());
    d[28..].copy_from_slice(payload);
    let ick = cksum(&d[..20]);
    d[10..12].copy_from_slice(&ick.to_be_bytes());
    d
}

proptest! {
    /// Lossless channel: four interleaved TCP connections (plus UDP
    /// noise) with arbitrarily evolving seq/ack/window/IP-ID and every
    /// flag shape — ACK-only streams compress, SYN/FIN/RST/URG and
    /// oversized deltas fall back — and every packet the receiver hands
    /// up equals the original datagram exactly.
    #[test]
    fn compress_decompress_is_identity(
        specs in proptest::collection::vec(
            (
                (0u8..5, 0u16..3),
                0u32..70_000,
                0u32..70_000,
                any::<u16>(),
                prop_oneof![
                    Just(0x10u8), // ACK
                    Just(0x18u8), // ACK|PSH
                    Just(0x30u8), // ACK|URG
                    Just(0x02u8), // SYN
                    Just(0x12u8), // SYN|ACK
                    Just(0x11u8), // ACK|FIN
                    Just(0x14u8), // ACK|RST
                ],
                proptest::collection::vec(any::<u8>(), 0..8),
            ),
            0..40,
        ),
    ) {
        let cfg = VjConfig::default();
        let mut comp = VjCompressor::new(cfg);
        let mut deco = VjDecompressor::new(cfg);
        let mut seq = [1_000u32, 2_000, 3_000, 4_000];
        let mut ack = [500u32; 4];
        let mut ipid = [1u16; 4];
        let mut out = Vec::new();
        for ((conn, ipid_step), seq_step, ack_step, win, flags, payload) in specs {
            let pristine = if conn == 4 {
                udp_dgram(&payload)
            } else {
                let c = usize::from(conn);
                seq[c] = seq[c].wrapping_add(seq_step);
                ack[c] = ack[c].wrapping_add(ack_step);
                ipid[c] = ipid[c].wrapping_add(ipid_step);
                tcp_dgram(conn, ipid[c], seq[c], ack[c], win, flags, &payload)
            };
            let mut wire = pristine.clone();
            match comp.compress(&mut wire) {
                VjOutcome::Ip => {
                    prop_assert_eq!(&wire, &pristine, "passthrough must not touch the packet");
                }
                VjOutcome::Uncompressed => {
                    prop_assert!(deco.refresh(&mut wire).is_ok(), "refresh on lossless channel");
                    prop_assert_eq!(&wire, &pristine, "refresh must restore the datagram");
                }
                VjOutcome::Compressed { start } => {
                    prop_assert!(
                        deco.decompress(&wire[start..], &mut out).is_ok(),
                        "lossless channel stays in sync"
                    );
                    prop_assert_eq!(&out, &pristine, "reconstruction must be byte-identical");
                }
            }
        }
    }

    /// Lossy channel: arbitrary frames of a data stream vanish in
    /// transit. The receiver may toss while desynchronised but must
    /// never hand up a corrupted segment, and the sender's eventual
    /// retransmission (seq moves backwards) must go out as an
    /// uncompressed refresh that resynchronises the link for good.
    #[test]
    fn lossy_channel_tosses_but_never_corrupts_and_refresh_resyncs(
        stream in proptest::collection::vec((1usize..8, any::<bool>()), 2..25),
    ) {
        let cfg = VjConfig::default();
        let mut comp = VjCompressor::new(cfg);
        let mut deco = VjDecompressor::new(cfg);
        let mut seq = 5_000u32;
        let mut ipid = 1u16;
        let mut out = Vec::new();
        let mut last = (seq, Vec::new());
        for (i, &(len, dropped)) in stream.iter().enumerate() {
            let payload: Vec<u8> = (0..len).map(|j| (i + j) as u8).collect();
            let pristine = tcp_dgram(0, ipid, seq, 9_000, 4_096, 0x18, &payload);
            last = (seq, payload);
            seq = seq.wrapping_add(len as u32);
            ipid = ipid.wrapping_add(1);
            let mut wire = pristine.clone();
            let outcome = comp.compress(&mut wire);
            if dropped {
                continue;
            }
            match outcome {
                VjOutcome::Ip => prop_assert!(false, "stream packets are compressible TCP"),
                VjOutcome::Uncompressed => {
                    prop_assert!(deco.refresh(&mut wire).is_ok());
                    prop_assert_eq!(&wire, &pristine);
                }
                VjOutcome::Compressed { start } => {
                    // While desynchronised the carried TCP checksum must
                    // reject the reconstruction — corrupt delivery is the
                    // one unforgivable outcome.
                    if deco.decompress(&wire[start..], &mut out).is_ok() {
                        prop_assert_eq!(&out, &pristine, "delivered segment must be intact");
                    }
                }
            }
        }

        // The TCP sender times out and retransmits its last segment: a
        // non-advancing sequence number must force a refresh, and the
        // refresh (which does get through) resynchronises the receiver.
        let (rseq, rpay) = last;
        let pristine = tcp_dgram(0, ipid, rseq, 9_000, 4_096, 0x18, &rpay);
        ipid = ipid.wrapping_add(1);
        let mut wire = pristine.clone();
        let outcome = comp.compress(&mut wire);
        prop_assert!(
            matches!(outcome, VjOutcome::Uncompressed),
            "retransmission must be sent uncompressed"
        );
        prop_assert!(deco.refresh(&mut wire).is_ok());
        prop_assert_eq!(&wire, &pristine);

        // Back in steady state: the next fresh segment compresses and is
        // reconstructed exactly.
        let pristine = tcp_dgram(0, ipid, seq, 9_000, 4_096, 0x18, &[0xAA]);
        let mut wire = pristine.clone();
        match comp.compress(&mut wire) {
            VjOutcome::Ip => prop_assert!(false, "fresh data segment is compressible"),
            VjOutcome::Uncompressed => {
                prop_assert!(deco.refresh(&mut wire).is_ok());
                prop_assert_eq!(&wire, &pristine);
            }
            VjOutcome::Compressed { start } => {
                prop_assert!(deco.decompress(&wire[start..], &mut out).is_ok(), "resynced");
                prop_assert_eq!(&out, &pristine, "post-resync reconstruction is exact");
            }
        }
    }
}
