//! Differential properties for the bulk byte kernels (DESIGN.md §9): the
//! SWAR/bulk implementations must be **observably identical** to the
//! scalar reference paths they replaced, over arbitrary inputs and — for
//! the streaming deframer — arbitrary chunk boundaries, including splits
//! that land between a FESC and its escape code.

use ax25::fcs::{crc16_x25, crc16_x25_ref};
use proptest::prelude::*;
use sim::wire::{internet_checksum, internet_checksum_ref};

/// Bytes biased heavily toward the KISS specials so frames, escapes, bad
/// escapes, and resyncs all appear in short streams.
fn arb_kiss_stream() -> impl Strategy<Value = Vec<u8>> {
    let byte = (any::<u8>(), any::<u8>()).prop_map(|(sel, raw)| match sel % 8 {
        0 | 1 => kiss::FEND,
        2 => kiss::FESC,
        3 => kiss::TFEND,
        4 => kiss::TFESC,
        // Mostly-valid type bytes keep whole frames alive often enough.
        5 => raw & 0x0F,
        _ => raw,
    });
    proptest::collection::vec(byte, 0..200)
}

/// Feeds `stream` one byte at a time through the scalar reference path.
fn deframe_per_byte(
    stream: &[u8],
    max_len: usize,
) -> (Vec<(u8, kiss::Command, Vec<u8>)>, kiss::DeframerStats) {
    let mut d = kiss::Deframer::with_max_len(max_len);
    let mut frames = Vec::new();
    for &b in stream {
        if let Some(f) = d.push(b) {
            frames.push((f.port, f.command, f.payload.to_vec()));
        }
    }
    (frames, d.stats())
}

/// Feeds `stream` through the bulk path, split at the given cut points.
fn deframe_chunked(
    stream: &[u8],
    max_len: usize,
    cuts: &[usize],
) -> (Vec<(u8, kiss::Command, Vec<u8>)>, kiss::DeframerStats) {
    let mut d = kiss::Deframer::with_max_len(max_len);
    let mut frames = Vec::new();
    let mut start = 0;
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
    bounds.push(stream.len());
    bounds.sort_unstable();
    for end in bounds {
        let chunk = &stream[start..end.max(start)];
        start = start.max(end);
        d.push_slice(chunk, |_, f| {
            frames.push((f.port, f.command, f.payload.to_vec()));
        });
    }
    (frames, d.stats())
}

/// Scalar oracle for KISS escaping, written independently of the crate.
fn escape_oracle(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for &b in bytes {
        match b {
            kiss::FEND => out.extend_from_slice(&[kiss::FESC, kiss::TFEND]),
            kiss::FESC => out.extend_from_slice(&[kiss::FESC, kiss::TFESC]),
            other => out.push(other),
        }
    }
    out
}

proptest! {
    /// The bulk deframer produces the same frames (port, command, payload)
    /// and the same statistics as the per-byte reference, no matter where
    /// the input is cut into chunks — including cuts that split a FESC
    /// from its escape code or a frame across many `push_slice` calls.
    #[test]
    fn bulk_deframing_matches_per_byte_at_any_chunking(
        stream in arb_kiss_stream(),
        max_len in (0usize..4).prop_map(|i| [1usize, 8, 16, 1024][i]),
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let (ref_frames, ref_stats) = deframe_per_byte(&stream, max_len);
        let (bulk_frames, bulk_stats) = deframe_chunked(&stream, max_len, &cuts);
        prop_assert_eq!(&bulk_frames, &ref_frames, "frames diverged");
        prop_assert_eq!(bulk_stats, ref_stats, "stats diverged");
    }

    /// A chunk boundary placed directly between FESC and its escape code
    /// (the nastiest split) never changes the outcome.
    #[test]
    fn fesc_straddling_a_chunk_boundary_is_transparent(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        escaped_at in any::<usize>(),
    ) {
        let mut p = payload;
        if !p.is_empty() {
            let at = escaped_at % p.len();
            p[at] = kiss::FEND; // guarantees a FESC on the wire
        }
        let wire = kiss::encode(0, kiss::Command::Data, &p);
        // Split exactly after each FESC in turn.
        for (i, &b) in wire.iter().enumerate() {
            if b != kiss::FESC {
                continue;
            }
            let mut d = kiss::Deframer::new();
            let mut got = Vec::new();
            d.push_slice(&wire[..=i], |_, f| got.push(f.payload.to_vec()));
            d.push_slice(&wire[i + 1..], |_, f| got.push(f.payload.to_vec()));
            prop_assert_eq!(got.len(), 1, "one frame expected");
            prop_assert_eq!(&got[0], &p, "payload corrupted at split {}", i);
        }
    }

    /// Bulk escaping emits exactly what the byte-at-a-time oracle does.
    #[test]
    fn bulk_escaping_matches_the_scalar_oracle(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut got = Vec::new();
        kiss::push_escaped_slice(&mut got, &payload);
        prop_assert_eq!(got, escape_oracle(&payload));
    }

    /// The slice-by-8 CRC equals the bitwise reference on any input,
    /// whatever its length modulo the 8-byte chunk width.
    #[test]
    fn sliced_crc_matches_bitwise_reference(
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        prop_assert_eq!(crc16_x25(&data), crc16_x25_ref(&data));
    }

    /// The folded internet checksum equals the scalar reference over any
    /// multi-part input, including odd-length parts (whose trailing byte
    /// must pair with the next part's first byte, preserving global
    /// big-endian word alignment).
    #[test]
    fn folded_checksum_matches_scalar_reference(
        parts in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..80),
            0..5,
        ),
    ) {
        let views: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(internet_checksum(&views), internet_checksum_ref(&views));
    }
}
