//! F1 — Figure 1's hardware path: Radio ⇄ TNC ⇄ RS-232 ⇄ DZ ⇄ Host.
//!
//! One ping crosses the topology; we then verify that every physical
//! element in the figure actually carried it, by its own counters.

use apps::ping::Pinger;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use serial::End;
use sim::SimDuration;

#[test]
fn every_element_of_the_figure_carries_the_packet() {
    let mut s = paper_topology(PaperConfig::default(), 201);
    let pinger = Pinger::new(ETHER_HOST_IP, 1, 1, SimDuration::from_secs(1), 32);
    let report = pinger.report();
    s.world.add_app(s.pc, Box::new(pinger));
    s.world.run_for(SimDuration::from_secs(120));

    assert_eq!(report.borrow().received, 1, "the ping came back");

    // Host → DZ serial line: the PC wrote KISS bytes down its line.
    let pc_line = s.world.host_serial_line(s.pc).expect("pc line");
    let host_to_tnc = pc_line.stats(End::A);
    assert!(host_to_tnc.sent > 0, "PC host sent serial characters");
    assert_eq!(host_to_tnc.sent, host_to_tnc.delivered, "no overruns");

    // TNC: accepted frames from the host and keyed the radio.
    let pc_tnc = s.world.tnc(s.pc_tnc);
    assert!(pc_tnc.stats().from_host >= 1, "PC TNC got host frames");
    assert!(pc_tnc.mac_stats().transmitted >= 1, "PC TNC transmitted");

    // Radio channel: transmissions occupied airtime.
    let chan = s.world.channel(s.chan);
    assert!(
        chan.stats().transmissions >= 2,
        "request + reply on the air"
    );
    assert!(chan.stats().clean_receptions >= 2);

    // Gateway TNC heard and passed frames up its serial line.
    let gw_tnc = s.world.tnc(s.gw_tnc);
    assert!(gw_tnc.stats().heard >= 1);
    assert!(gw_tnc.stats().passed_to_host >= 1);

    // Gateway driver: per-character interrupts, then IP input.
    let gw_drv = s.world.host(s.gw).pr_driver().expect("gw pr0");
    assert!(gw_drv.stats().rint_chars > 0, "rint ran per character");
    assert!(gw_drv.stats().ip_in >= 1, "IP decapsulated");
    assert!(gw_drv.ifnet.stats.ipackets >= 1);

    // Gateway forwarded onto the Ethernet.
    assert!(s.world.host(s.gw).stack.stats().forwarded >= 1);
    let seg = s.world.segment(s.seg);
    assert!(seg.stats().sent >= 1, "frame crossed the Ethernet");

    // And the CPU model charged for the work.
    assert!(s.world.host(s.gw).cpu.stats().char_interrupts > 0);
    assert!(s.world.host(s.gw).cpu.stats().packets > 0);
}

#[test]
fn serial_speed_shapes_the_path_latency() {
    // The same ping with a slower DZ line must take measurably longer.
    let rtt_at = |baud: u32| {
        let cfg = PaperConfig {
            serial_baud: baud,
            ..PaperConfig::default()
        };
        let mut s = paper_topology(cfg, 202);
        let pinger = Pinger::new(ETHER_HOST_IP, 1, 1, SimDuration::from_secs(1), 32);
        let report = pinger.report();
        s.world.add_app(s.pc, Box::new(pinger));
        s.world.run_for(SimDuration::from_secs(300));
        let r = report.borrow_mut();
        assert_eq!(r.received, 1, "ping at {baud} baud");
        r.rtts.mean().expect("one sample")
    };
    let fast = rtt_at(19200);
    let slow = rtt_at(1200);
    assert!(
        slow > fast + SimDuration::from_millis(200),
        "1200 baud serial must add latency: fast={fast} slow={slow}"
    );
}
