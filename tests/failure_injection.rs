//! Failure injection: the gateway and its protocols under noise, loss,
//! and pathological load — behaviours the paper's operators lived with.

use apps::bulk::{BulkSender, BulkSink};
use apps::ping::Pinger;
use ax25::addr::Ax25Addr;
use gateway::host::{HostConfig, RadioIfConfig};
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use netstack::route::Prefix;
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use sim::{Bandwidth, SimDuration};

/// Builds a paper-like world whose radio channel corrupts bytes at the
/// given rate.
fn noisy_world(byte_error_rate: f64, seed: u64) -> gateway::scenario::PaperScenario {
    // paper_topology always builds a clean channel; rebuild by hand with
    // a noisy one using the world primitives.
    let cfg = PaperConfig::default();
    let mut world = gateway::World::new(seed);
    let chan = world.add_noisy_channel(cfg.radio_rate, byte_error_rate);
    let seg = world.add_segment(Bandwidth::ETHERNET_10M);

    let mut pc_cfg = HostConfig::named("pc");
    pc_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("KB7DZ"),
        ip: gateway::scenario::PC_IP,
        prefix_len: 16,
    });
    let pc = world.add_host(pc_cfg);
    let pc_tnc = world.attach_radio(pc, chan, 9600, RxMode::Promiscuous, MacConfig::default());

    let mut gw_cfg = HostConfig::named("gw");
    gw_cfg.stack.forwarding = true;
    gw_cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic("N7AKR-1"),
        ip: gateway::scenario::GW_RADIO_IP,
        prefix_len: 16,
    });
    gw_cfg.ether = Some(gateway::host::EtherIfConfig {
        mac: ether::MacAddr::local(1),
        ip: gateway::scenario::GW_ETHER_IP,
        prefix_len: 24,
    });
    let gw = world.add_host(gw_cfg);
    let gw_tnc = world.attach_radio(gw, chan, 9600, RxMode::Promiscuous, MacConfig::default());
    world.attach_ether(gw, seg);

    let mut eh_cfg = HostConfig::named("vax2");
    eh_cfg.ether = Some(gateway::host::EtherIfConfig {
        mac: ether::MacAddr::local(2),
        ip: ETHER_HOST_IP,
        prefix_len: 24,
    });
    let ether_host = world.add_host(eh_cfg);
    world.attach_ether(ether_host, seg);

    let pc_if = world.host(pc).radio_iface().unwrap();
    world.host_mut(pc).stack.routes_mut().add(
        Prefix::default_route(),
        Some(gateway::scenario::GW_RADIO_IP),
        pc_if,
    );
    let eh_if = world.host(ether_host).ether_iface().unwrap();
    world.host_mut(ether_host).stack.routes_mut().add(
        Prefix::amprnet(),
        Some(gateway::scenario::GW_ETHER_IP),
        eh_if,
    );

    gateway::scenario::PaperScenario {
        world,
        chan,
        seg,
        pc,
        gw,
        ether_host,
        pc_tnc,
        gw_tnc,
    }
}

#[test]
fn bit_errors_cost_pings_but_fcs_never_lets_garbage_through() {
    // 0.3% per-byte corruption: a ~110-byte on-air frame survives with
    // p ≈ 0.72, so a two-frame round trip loses a good fraction of pings.
    let mut s = noisy_world(0.003, 801);
    let pinger = Pinger::new(ETHER_HOST_IP, 1, 30, SimDuration::from_secs(20), 32);
    let report = pinger.report();
    s.world.add_app(s.pc, Box::new(pinger));
    s.world.run_for(SimDuration::from_secs(700));

    let r = report.borrow();
    assert!(r.received < 30, "noise must cost some replies");
    assert!(
        r.received >= 5,
        "but not everything: {}/{}",
        r.received,
        r.sent
    );
    // Every corrupted frame was caught by the TNC FCS, not passed up.
    let gw_tnc = s.world.tnc(s.gw_tnc).stats();
    assert!(gw_tnc.fcs_errors > 0, "noise was actually injected");
    let gw_drv = s.world.host(s.gw).pr_driver().unwrap().stats();
    assert_eq!(gw_drv.bad_frames, 0, "no corrupt frame crossed the FCS");
    // And the IP layer saw only intact packets (no checksum drops).
    assert_eq!(s.world.host(s.gw).stack.stats().bad_packets, 0);
}

#[test]
fn tcp_completes_a_transfer_through_heavy_noise() {
    let mut s = noisy_world(0.002, 802);
    let sink = BulkSink::new(5000);
    let sink_report = sink.report();
    s.world.add_app(s.ether_host, Box::new(sink));
    let sender = BulkSender::new(ETHER_HOST_IP, 5000, 2000);
    let send_report = sender.report();
    s.world.add_app(s.pc, Box::new(sender));
    s.world.run_for(SimDuration::from_secs(4 * 3600));

    let rx = sink_report.borrow();
    assert_eq!(rx.bytes, 2000, "reliability survives the noise");
    assert!(!rx.corrupt);
    let tx = send_report.borrow();
    assert!(
        tx.tcb.retransmissions > 0,
        "the noise forced retransmissions"
    );
}

#[test]
fn serial_line_noise_is_survived_by_kiss_resync() {
    // Corrupt 0.2% of serial characters on the PC's DZ line: frames with
    // a damaged character are lost (the driver's AX.25 decode fails or
    // the KISS escape breaks), but the stream always resynchronizes and
    // later pings succeed.
    let cfg = PaperConfig::default();
    let mut s = paper_topology(cfg, 803);
    // paper_topology has no serial-noise hook; emulate by replacing...
    // (serial noise is unit-tested in `serial`; here we assert the driver
    // tolerates mid-stream garbage injected directly.)
    let now = s.world.now;
    let gw = s.world.host_mut(s.gw);
    // Straight garbage into the interrupt handler:
    gw.on_serial_bytes(now, &[0x55; 300]);
    gw.on_serial_bytes(now, &[kiss::FEND, 0x00, 0xDB, 0x99, kiss::FEND]);
    // The driver counted garbage without panicking and without passing
    // anything up.
    let st = gw.pr_driver().unwrap().stats();
    assert_eq!(st.ip_in, 0);
    // A real ping still works afterwards.
    let pinger = Pinger::new(ETHER_HOST_IP, 1, 2, SimDuration::from_secs(20), 32);
    let report = pinger.report();
    s.world.add_app(s.pc, Box::new(pinger));
    s.world.run_for(SimDuration::from_secs(120));
    assert_eq!(report.borrow().received, 2);
}

#[test]
fn cpu_saturation_overflows_the_ifqueue_not_the_heap() {
    // A pathologically slow host (50 ms per packet, 5 ms per character)
    // under a fast sender: the bounded ifqueue drops, nothing else breaks.
    let cfg = PaperConfig {
        cpu: gateway::cpu::CpuConfig {
            char_cost: SimDuration::from_millis(5),
            packet_cost: SimDuration::from_millis(50),
        },
        ..PaperConfig::default()
    };
    let mut s = paper_topology(cfg, 804);
    let pinger = Pinger::new(ETHER_HOST_IP, 1, 40, SimDuration::from_millis(500), 16);
    let report = pinger.report();
    s.world.add_app(s.pc, Box::new(pinger));
    s.world.run_for(SimDuration::from_secs(300));
    // The run completes; deliveries may be poor but the system is sane.
    let r = report.borrow();
    assert!(r.sent == 40);
    let gw = s.world.host(s.gw);
    assert!(gw.input_queue_peak() <= gateway::ifnet::IFQ_MAXLEN);
}

#[test]
fn address_filter_also_protects_a_busy_host() {
    // Same noisy environment, two TNC modes: the filtered host's driver
    // never sees the background garbage at all.
    for (mode, expect_quiet) in [(RxMode::Promiscuous, false), (RxMode::AddressFilter, true)] {
        let cfg = PaperConfig {
            tnc_mode: mode,
            ..PaperConfig::default()
        };
        let mut s = paper_topology(cfg, 805);
        // A third station chattering.
        s.world.add_beacon(
            s.chan,
            radio::traffic::BeaconConfig {
                from: Ax25Addr::parse_or_panic("BG1"),
                to: Ax25Addr::parse_or_panic("CHAT"),
                frame_len: 100,
                mean_interval: SimDuration::from_secs(5),
                start: sim::SimTime::ZERO,
                mac: MacConfig::default(),
            },
        );
        s.world.run_for(SimDuration::from_secs(120));
        let heard_by_driver = s.world.host(s.gw).pr_driver().unwrap().stats().rint_chars;
        if expect_quiet {
            assert!(
                heard_by_driver < 200,
                "filtered driver stayed quiet: {heard_by_driver}"
            );
        } else {
            assert!(
                heard_by_driver > 1000,
                "promiscuous driver worked hard: {heard_by_driver}"
            );
        }
    }
}
