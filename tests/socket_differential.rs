//! Differential test: the socket-layer echo server is wire-identical
//! to the raw-API original (DESIGN.md §10).
//!
//! Two copies of the paper topology run the same typist workload with
//! the same seed; one serves echoes with [`apps::echo::EchoServer`] (a
//! `SocketProgram` on the new layer), the other with
//! [`apps::echo::RawEchoServer`] (the pre-socket reference driving
//! `NetStack::tcp_*` directly). The recorded stack-event streams — every
//! TCP/UDP/ICMP event on every host, with its simulation timestamp — are
//! a function of the traffic actually on the wire, so stream equality at
//! nanosecond resolution means the socket shim added, removed, delayed,
//! or reordered nothing.

use apps::echo::{EchoServer, RawEchoServer};
use apps::typist::Typist;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use gateway::world::{App, HostId};
use netstack::stack::StackAction;
use sim::{SimDuration, SimTime};

/// The recorded stack-event stream: every event on every host, stamped.
type EventStream = Vec<(HostId, SimTime, StackAction)>;

/// (keystrokes sent, echoes received, session end time).
type TypistCounts = (usize, usize, Option<SimTime>);

/// Runs the scenario with the given server app, returning the recorded
/// event stream plus the typist's byte counters.
fn run_with_server(server: Box<dyn App>, seed: u64) -> (EventStream, TypistCounts) {
    let mut s = paper_topology(PaperConfig::default(), seed);
    let client = Typist::new(ETHER_HOST_IP, 7, 12);
    let report = client.report();
    s.world.add_app(s.ether_host, server);
    s.world.add_app(s.pc, Box::new(client));
    s.world.run_for(SimDuration::from_secs(600));
    let events = s.world.take_events();
    let r = report.borrow();
    (events, (r.sent, r.echoed, r.finished_at))
}

#[test]
fn socket_echo_server_is_wire_identical_to_raw() {
    let (raw_events, raw_counts) = run_with_server(Box::new(RawEchoServer::new(7)), 2601);
    let (sock_events, sock_counts) = run_with_server(Box::new(EchoServer::new(7)), 2601);

    assert_eq!(raw_counts.0, 12, "raw run did not complete: {raw_counts:?}");
    assert_eq!(raw_counts, sock_counts, "typist outcomes diverge");
    assert!(
        raw_counts.2.is_some(),
        "session never finished: {raw_counts:?}"
    );

    assert_eq!(
        raw_events.len(),
        sock_events.len(),
        "event stream lengths diverge"
    );
    for (i, (a, b)) in raw_events.iter().zip(sock_events.iter()).enumerate() {
        assert_eq!(a, b, "event stream diverges at index {i}");
    }
}
