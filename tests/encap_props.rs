//! Longest-prefix-match properties for the PR's learned-route machinery:
//! a learned subnet route must beat the static class-A aggregate for any
//! destination it covers, and its expiry must restore the aggregate —
//! never leave a hole. Checked both in the routing table
//! (`netstack::route`) and in the encap table (`encap::table`).

use encap::table::{EncapTable, LearnOutcome};
use netstack::route::{Prefix, RouteTable};
use netstack::stack::IfaceId;
use proptest::prelude::*;
use sim::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// An address inside 44/8.
fn arb_amprnet_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(|x| Ipv4Addr::from(0x2C00_0000 | (x & 0x00FF_FFFF)))
}

const WEST_GW: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 100);
const EAST_GW: Ipv4Addr = Ipv4Addr::new(128, 95, 1, 101);

proptest! {
    /// A learned /24 covering the destination beats the static /8
    /// aggregate regardless of metric (prefix length dominates), and
    /// withdrawing it restores the aggregate instead of leaving no route.
    #[test]
    fn learned_slash24_overrides_aggregate_and_withdrawal_restores_it(
        dst in arb_amprnet_addr(),
        metric in 1u8..16,
        extra in proptest::collection::vec(
            (any::<u32>().prop_map(Ipv4Addr::from), 1u8..=32, 1u8..16),
            0..8,
        ),
    ) {
        let ether = IfaceId::new(0);
        let mut rt = RouteTable::new();
        rt.add(Prefix::amprnet(), Some(WEST_GW), ether);
        // Background noise: learned routes that do NOT cover dst must
        // never affect the outcome, whatever their length or metric.
        for (addr, len, m) in extra {
            let p = Prefix::new(addr, len);
            if !p.contains(dst) && p != Prefix::amprnet() {
                rt.add_learned(p, Some(EAST_GW), ether, m);
            }
        }

        let subnet = Prefix::new(dst, 24);
        rt.add_learned(subnet, Some(EAST_GW), ether, metric);
        let r = rt.lookup_route(dst).expect("covered");
        prop_assert_eq!(r.prefix, subnet, "learned /24 wins by length");
        prop_assert_eq!(r.via, Some(EAST_GW));

        prop_assert!(rt.remove_learned(subnet));
        let r = rt.lookup_route(dst).expect("aggregate remains");
        prop_assert_eq!(r.prefix, Prefix::amprnet(), "expiry restores 44/8");
        prop_assert_eq!(r.via, Some(WEST_GW));
    }

    /// Same shape in the encap table, with time: a learned subnet maps
    /// the destination to its own endpoint until TTL expiry, after which
    /// the static aggregate answers again; re-learning is held down for
    /// exactly the configured window and believed afterwards.
    #[test]
    fn encap_expiry_restores_aggregate_and_holddown_gates_relearning(
        dst in arb_amprnet_addr(),
        ttl_s in 1u64..120,
        hold_s in 1u64..120,
        metric in 1u8..16,
    ) {
        let ttl = SimDuration::from_secs(ttl_s);
        let mut t = EncapTable::new(SimDuration::from_secs(hold_s));
        t.add_static(Prefix::amprnet(), WEST_GW, 5);

        let subnet = Prefix::new(dst, 24);
        let t0 = SimTime::ZERO;
        prop_assert_eq!(t.learn(t0, subnet, EAST_GW, metric, ttl), LearnOutcome::New);
        prop_assert_eq!(t.lookup(dst), Some(EAST_GW), "learned subnet wins");

        // Nothing expires before the deadline…
        let expiry = t.next_deadline().expect("deadline armed");
        prop_assert_eq!(expiry, t0.saturating_add(ttl));
        prop_assert!(t.expire(SimTime::from_nanos(expiry.as_nanos() - 1)).is_empty());
        // …and at the deadline the aggregate answers again.
        let dead = t.expire(expiry);
        prop_assert_eq!(dead.len(), 1);
        prop_assert_eq!(t.lookup(dst), Some(WEST_GW), "expiry restores 44/8");

        // Hold-down: the same announcement is rejected inside the window
        // and believed after it.
        let inside = expiry.saturating_add(SimDuration::from_secs(hold_s - 1));
        prop_assert_eq!(
            t.learn(inside, subnet, EAST_GW, metric, ttl),
            LearnOutcome::HeldDown
        );
        prop_assert_eq!(t.lookup(dst), Some(WEST_GW));
        let after = expiry.saturating_add(SimDuration::from_secs(hold_s));
        prop_assert_eq!(
            t.learn(after, subnet, EAST_GW, metric, ttl),
            LearnOutcome::New
        );
        prop_assert_eq!(t.lookup(dst), Some(EAST_GW), "believed after hold-down");
    }
}
