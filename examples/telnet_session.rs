//! The paper's headline demo (§2.3): telnet from the isolated PC to a
//! host on the Ethernet, through the kernel packet-radio gateway.
//!
//! ```text
//! cargo run --example telnet_session
//! ```

use apps::telnet::{TelnetClient, TelnetServer};
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use sim::SimDuration;

fn main() {
    let mut s = paper_topology(PaperConfig::default(), 7);

    let server = TelnetServer::new(23, "vax2");
    s.world.add_app(s.ether_host, Box::new(server));

    let client = TelnetClient::standard_session(ETHER_HOST_IP, 23);
    let report = client.report();
    s.world.add_app(s.pc, Box::new(client));

    println!("telnet 128.95.1.4   (from the isolated PC, over 1200 bit/s packet radio)");
    println!("Trying {ETHER_HOST_IP}...");

    s.world.run_for(SimDuration::from_secs(900));

    let r = report.borrow();
    if r.done {
        println!("Connected to vax2.");
        println!("--------------------------------------------------");
        print!("{}", r.transcript);
        println!("--------------------------------------------------");
        println!(
            "session complete at t={} ({} lines typed)",
            r.finished_at.expect("done"),
            r.lines_sent
        );
    } else {
        println!("session did not complete; partial transcript:");
        print!("{}", r.transcript);
    }

    let gw = s.world.host(s.gw);
    println!(
        "gateway forwarded {} packets; queue peak {}, drops {}",
        gw.stack.stats().forwarded,
        gw.input_queue_peak(),
        gw.input_queue_drops()
    );
}
