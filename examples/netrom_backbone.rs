//! §2.4's second future-work item, live: a NET/ROM backbone carrying IP
//! between gateways that cannot hear each other.
//!
//! ```text
//! cargo run --example netrom_backbone
//! ```

use ax25::addr::Ax25Addr;
use gateway::host::{HostConfig, RadioIfConfig};
use gateway::world::{ChanId, HostId, World};
use netrom::{NetRomConfig, NetRomRouter};
use netstack::ip::{Ipv4Packet, Proto};
use netstack::udp::UdpDatagram;
use radio::channel::StationId;
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use sim::{Bandwidth, SimDuration};
use std::net::Ipv4Addr;

const WEST_IP: Ipv4Addr = Ipv4Addr::new(44, 24, 0, 28);
const EAST_IP: Ipv4Addr = Ipv4Addr::new(44, 56, 0, 28);

fn radio_host(world: &mut World, chan: ChanId, call: &str, ip: Ipv4Addr) -> HostId {
    let mut cfg = HostConfig::named(call);
    cfg.radio = Some(RadioIfConfig {
        call: Ax25Addr::parse_or_panic(call),
        ip,
        prefix_len: 8,
    });
    let h = world.add_host(cfg);
    world.attach_radio(h, chan, 9600, RxMode::Promiscuous, MacConfig::default());
    h
}

fn main() {
    println!("\"Work is also proceeding on using another layer three protocol known");
    println!(" as NET/ROM to pass IP traffic between gateways.\"  — §2.4\n");

    let mut world = World::new(44);
    let chan = world.add_channel(Bandwidth::RADIO_1200);
    let west = radio_host(&mut world, chan, "WGATE", WEST_IP);
    let mid = radio_host(&mut world, chan, "BBONE", Ipv4Addr::new(44, 40, 0, 1));
    let east = radio_host(&mut world, chan, "EGATE", EAST_IP);
    // Line topology: the gateways cannot hear each other directly.
    let c = world.channel_mut(chan);
    c.set_hears(StationId(0), StationId(2), false);
    c.set_hears(StationId(2), StationId(0), false);
    println!("topology: WGATE ⇄ BBONE ⇄ EGATE   (ends mutually deaf, 1200 bit/s)");

    let mk = |call: &str, alias: &str| {
        let mut c = NetRomConfig::new(Ax25Addr::parse_or_panic(call), alias);
        c.broadcast_interval = SimDuration::from_secs(60);
        c
    };
    let wr = NetRomRouter::new(mk("WGATE", "SEA"));
    let w_report = wr.report();
    let w_sendq = wr.send_queue();
    world.add_app(west, Box::new(wr));
    let mr = NetRomRouter::new(mk("BBONE", "MID"));
    let m_report = mr.report();
    world.add_app(mid, Box::new(mr));
    world.add_app(east, Box::new(NetRomRouter::new(mk("EGATE", "NYC"))));

    // Watch the route table converge.
    for minutes in 1..=4 {
        world.run_for(SimDuration::from_secs(60));
        println!(
            "t={:>3}m  WGATE knows: {:?}",
            minutes,
            w_report.borrow().destinations
        );
        if w_report
            .borrow()
            .destinations
            .contains(&"EGATE".to_string())
        {
            break;
        }
    }

    // Carry an IP datagram across the backbone.
    let udp = world.host_mut(east).stack.udp_bind(4000).expect("bind");
    let dg = UdpDatagram {
        src_port: 4001,
        dst_port: 4000,
        payload: b"IP over NET/ROM, de N7AKR".to_vec(),
    };
    let ip = Ipv4Packet::new(WEST_IP, EAST_IP, Proto::Udp, dg.encode(WEST_IP, EAST_IP));
    let sent_at = world.now;
    println!(
        "\nt={}  WGATE ships an IP/UDP datagram to EGATE over the backbone…",
        sent_at
    );
    w_sendq
        .borrow_mut()
        .push((Ax25Addr::parse_or_panic("EGATE"), ip.encode()));
    world.run_for(SimDuration::from_secs(60));

    let got = world.host_mut(east).stack.udp_recv(udp);
    match got {
        Some((src, port, payload)) => {
            println!(
                "t={}  EGATE's UDP socket received from {src}:{port}: {:?}",
                world.now,
                String::from_utf8_lossy(payload.as_slice())
            );
        }
        None => println!("datagram did not arrive (unexpected)"),
    }
    println!(
        "\nBBONE forwarded {} datagram(s); total NODES broadcasts on air: {}",
        m_report.borrow().stats.forwarded,
        w_report.borrow().stats.broadcasts_sent + m_report.borrow().stats.broadcasts_sent
    );
}
