//! The non-IP world and the bridge out of it.
//!
//! Act 1 — §1's packet BBS: a terminal user (no IP anywhere) connects to
//! a bulletin board over AX.25 connected mode, reads a bulletin, posts
//! one, and signs off.
//!
//! Act 2 — §2.4's application gateway: the same kind of terminal user
//! connects to the *gateway's* callsign and is bridged onto a TCP telnet
//! session with an Internet host, without ever speaking IP.
//!
//! ```text
//! cargo run --example bbs_and_appgw
//! ```

use apps::ax25chat::{BbsServer, TerminalUser};
use apps::telnet::TelnetServer;
use ax25::addr::Ax25Addr;
use gateway::appgw::AppGateway;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use sim::SimDuration;

fn main() {
    // ---- Act 1: the BBS ----
    println!("=== Act 1: working the BBS over AX.25 (no IP) ===\n");
    let mut s = paper_topology(PaperConfig::default(), 11);
    let bbs_call = s.world.host(s.gw).callsign().unwrap();
    let bbs = BbsServer::new(
        bbs_call,
        &[
            ("MEETING TUESDAY", "Club meeting 7pm, EE building."),
            ("GATEWAY NEWS", "44.24.0.28 now gateways to the Internet!"),
        ],
    );
    s.world.add_app(s.gw, Box::new(bbs));

    let user = TerminalUser::new(
        Ax25Addr::parse_or_panic("KB7DZ"),
        bbs_call,
        vec![
            ("BBS> ", "L\r"),
            ("BBS> ", "R 2\r"),
            ("BBS> ", "S QSL VIA BUREAU\r"),
            ("Enter message", "Worked you on 2m packet, QSL?\r/EX\r"),
            ("BBS> ", "Q\r"),
        ],
    );
    let report = user.report();
    s.world.add_app(s.pc, Box::new(user));
    s.world.run_for(SimDuration::from_secs(1200));

    let r = report.borrow();
    println!("c KB7DZ>N7AKR-1  *** CONNECTED");
    println!("{}", r.transcript.replace('\r', "\n"));
    println!("*** DISCONNECTED (done = {})\n", r.done);
    drop(r);

    // ---- Act 2: through the application gateway to telnet ----
    println!("=== Act 2: AX.25 terminal -> app gateway -> TCP telnet ===\n");
    let mut s = paper_topology(PaperConfig::default(), 12);
    let server = TelnetServer::new(23, "vax2");
    s.world.add_app(s.ether_host, Box::new(server));
    let gw_call = s.world.host(s.gw).callsign().unwrap();
    let appgw = AppGateway::new(gw_call, (ETHER_HOST_IP, 23));
    let gw_report = appgw.report_handle();
    s.world.add_app(s.gw, Box::new(appgw));

    let user = TerminalUser::new(
        Ax25Addr::parse_or_panic("KB7DZ"),
        gw_call,
        vec![
            ("login: ", "bcn\r"),
            ("Password:", "radio\r"),
            ("% ", "date\r"),
            ("% ", "logout\r"),
        ],
    );
    let report = user.report();
    s.world.add_app(s.pc, Box::new(user));
    s.world.run_for(SimDuration::from_secs(1200));

    let r = report.borrow();
    println!("c KB7DZ>N7AKR-1  *** CONNECTED (to the gateway's callsign)");
    println!("{}", r.transcript.replace('\r', "\n"));
    let g = gw_report.borrow();
    println!(
        "bridge: {} session(s), {} B radio->TCP, {} B TCP->radio",
        g.sessions_accepted, g.bytes_to_tcp, g.bytes_to_radio
    );
    println!(
        "the PC never used IP: driver saw {} IP frames, diverted {}",
        s.world.host(s.pc).pr_driver().unwrap().stats().ip_in,
        s.world.host(s.pc).pr_driver().unwrap().stats().diverted
    );
}
