//! Quickstart: build the paper's topology (Figure 1 + the department
//! Ethernet), ping across the gateway, and watch the packet touch every
//! piece of hardware on the way.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use apps::ping::Pinger;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use serial::End;
use sim::SimDuration;

fn main() {
    // The world of the paper: an isolated PC (callsign KB7DZ) on a
    // 1200 bit/s radio channel, a MicroVAX gateway (N7AKR-1, IP
    // 44.24.0.28 — the paper's real address), and a host on the
    // department's 10 Mb/s Ethernet.
    let mut s = paper_topology(PaperConfig::default(), 1988);

    println!("topology:");
    println!(
        "  pc     KB7DZ    44.24.0.5   (radio only — \"connected to a power outlet and a radio\")"
    );
    println!("  gw     N7AKR-1  44.24.0.28 / 128.95.1.100  (MicroVAX, forwarding, §4.3 ACL)");
    println!("  vax2            128.95.1.4  (department Ethernet)");
    println!();

    // Ping vax2 from the isolated PC: five 32-byte echoes.
    let pinger = Pinger::new(ETHER_HOST_IP, 1, 5, SimDuration::from_secs(20), 32);
    let report = pinger.report();
    s.world.add_app(s.pc, Box::new(pinger));

    s.world.run_for(SimDuration::from_secs(180));

    let mut r = report.borrow_mut();
    println!(
        "ping 44.24.0.5 -> {}: {}/{} replies",
        ETHER_HOST_IP, r.received, r.sent
    );
    if let Some(mean) = r.rtts.mean() {
        println!(
            "  rtt min/mean/max = {} / {} / {}",
            r.rtts.min().unwrap(),
            mean,
            r.rtts.max().unwrap()
        );
    }
    println!();

    // The Figure-1 walk: every element's own counters.
    let line = s.world.host_serial_line(s.pc).unwrap();
    println!("figure-1 path, as counted by each element:");
    println!(
        "  PC DZ serial line : {} chars host->TNC, {} chars TNC->host",
        line.stats(End::A).sent,
        line.stats(End::B).sent
    );
    let tnc = s.world.tnc(s.pc_tnc);
    println!(
        "  PC KISS TNC       : {} frames from host, {} transmissions, {} heard",
        tnc.stats().from_host,
        tnc.mac_stats().transmitted,
        tnc.stats().heard
    );
    let chan = s.world.channel(s.chan);
    println!(
        "  radio channel     : {} transmissions, {:.1}s total airtime",
        chan.stats().transmissions,
        chan.stats().airtime_ns as f64 / 1e9
    );
    let gw_tnc = s.world.tnc(s.gw_tnc);
    println!(
        "  GW KISS TNC       : {} heard, {} passed to host (promiscuous)",
        gw_tnc.stats().heard,
        gw_tnc.stats().passed_to_host
    );
    let drv = s.world.host(s.gw).pr_driver().unwrap();
    println!(
        "  GW pr0 driver     : {} rint chars, {} IP in, {} IP out, {} ARP",
        drv.stats().rint_chars,
        drv.stats().ip_in,
        drv.stats().ip_out,
        drv.stats().arp_in
    );
    let gw = s.world.host(s.gw);
    println!(
        "  GW IP layer       : {} forwarded, {} denied by the gate",
        gw.stack.stats().forwarded,
        gw.filter_stats().unwrap().denied
    );
    println!(
        "  GW CPU            : {} char interrupts, {} packets, {:.1}% busy",
        gw.cpu.stats().char_interrupts,
        gw.cpu.stats().packets,
        gw.cpu.utilization(s.world.now) * 100.0
    );
    let seg = s.world.segment(s.seg);
    println!(
        "  Ethernet segment  : {} frames, {} bytes on the wire",
        seg.stats().sent,
        seg.stats().bytes_on_wire
    );
}
