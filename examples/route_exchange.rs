//! §4.2's fix, live: three AMPRnet gateways exchanging subnet routes
//! with RIP44 announcements and tunneling each other's traffic in IPIP.
//!
//! ```text
//! cargo run --example route_exchange
//! ```
//!
//! Watch the west gateway's tunnel table fill in as announcements
//! arrive, the ping path collapse from the RF backbone detour onto the
//! Ethernet tunnel, and the learned state expire (falling back to the
//! static aggregate) when the east gateway dies.

use apps::ping::Pinger;
use gateway::ripd::RipConfig;
use gateway::scenario::{mesh_addrs, three_gateway, PaperConfig};
use sim::SimDuration;

fn tunnel_table(s: &gateway::scenario::MeshScenario) -> String {
    let entries: Vec<String> = s.west_tunnels.with(|t| {
        t.entries()
            .iter()
            .map(|e| format!("{}→{} (metric {})", e.subnet, e.endpoint, e.metric))
            .collect()
    });
    if entries.is_empty() {
        "(empty — everything falls back to the 44/8 aggregate)".into()
    } else {
        entries.join(", ")
    }
}

fn main() {
    println!("\"routing tables on the gateways would have to be modified so that");
    println!(" packets for specific subnets could be sent directly\"  — §4.2\n");

    let rip = RipConfig {
        announce_interval: SimDuration::from_secs(10),
        route_ttl: SimDuration::from_secs(25),
        holddown: SimDuration::from_secs(20),
        ..RipConfig::default()
    };
    let cfg = PaperConfig {
        acl: false,
        ..PaperConfig::default()
    };
    let mut s = three_gateway(&cfg, rip, 4242);

    let pinger = Pinger::new(mesh_addrs::EAST_HOST, 1, 40, SimDuration::from_secs(10), 32);
    let report = pinger.report();
    s.world.add_app(s.internet_host, Box::new(pinger));

    println!("t=0s    west-gw tunnels: {}", tunnel_table(&s));

    s.world.run_for(SimDuration::from_secs(30));
    println!("t=30s   west-gw tunnels: {}", tunnel_table(&s));
    println!(
        "        internet-host → east-host pings answered: {}",
        report.borrow().received
    );

    s.world.run_for(SimDuration::from_secs(60));
    let tunneled = s.world.host(s.east_gw).stack.stats().ipip_in;
    println!(
        "t=90s   {} replies; east-gw decapsulated {} IPIP datagrams",
        report.borrow().received,
        tunneled
    );

    println!("\n-- killing east-gw --");
    s.world.host_mut(s.east_gw).set_down(true);
    s.world.run_for(SimDuration::from_secs(30));
    println!("t=120s  west-gw tunnels: {}", tunnel_table(&s));
    let via = s
        .world
        .host(s.east_host)
        .stack
        .routes()
        .lookup_route(mesh_addrs::INTERNET_HOST)
        .and_then(|r| r.via);
    println!(
        "        east-host default now via {:?} (the static backbone fallback)",
        via
    );

    println!("\n-- reviving east-gw --");
    s.world.host_mut(s.east_gw).set_down(false);
    s.world.run_for(SimDuration::from_secs(60));
    println!("t=180s  west-gw tunnels: {}", tunnel_table(&s));
    println!(
        "        total pings answered across the outage: {}/{}",
        report.borrow().received,
        report.borrow().sent
    );
}
