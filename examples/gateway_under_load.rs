//! §3's performance complaint, live: load the channel with background
//! chatter and watch the promiscuous gateway slow down — then flip the
//! TNC to address filtering (the paper's proposed fix) and watch it
//! recover.
//!
//! ```text
//! cargo run --example gateway_under_load
//! ```

use apps::ping::Pinger;
use ax25::addr::Ax25Addr;
use gateway::scenario::{paper_topology, PaperConfig, ETHER_HOST_IP};
use radio::csma::MacConfig;
use radio::tnc::RxMode;
use radio::traffic::BeaconConfig;
use sim::{SimDuration, SimTime};

fn run(mode: RxMode, background_stations: usize) -> (SimDuration, u64, f64) {
    let cfg = PaperConfig {
        tnc_mode: mode,
        // A TNC-2's serial port typically ran at 1200 baud — barely above
        // the channel rate, so promiscuous chatter queues ahead of the
        // gateway's own frames on the RS-232 link.
        serial_baud: 1200,
        ..PaperConfig::default()
    };
    let mut s = paper_topology(cfg, 99);
    // Background stations chattering at each other — none of it for the
    // gateway, all of it heard by the gateway's TNC.
    for i in 0..background_stations {
        s.world.add_beacon(
            s.chan,
            BeaconConfig {
                from: Ax25Addr::parse_or_panic(&format!("BG{}", i + 1)),
                to: Ax25Addr::parse_or_panic("CHAT"),
                frame_len: 120,
                mean_interval: SimDuration::from_secs(6),
                start: SimTime::ZERO,
                mac: MacConfig::default(),
            },
        );
    }
    let pinger = Pinger::new(ETHER_HOST_IP, 1, 10, SimDuration::from_secs(45), 32);
    let report = pinger.report();
    s.world.add_app(s.pc, Box::new(pinger));
    s.world.run_for(SimDuration::from_secs(600));

    let r = report.borrow();
    let rtt = r.rtts.mean().unwrap_or(SimDuration::ZERO);
    let chars = s.world.host(s.gw).cpu.stats().char_interrupts;
    let util = s.world.host(s.gw).cpu.utilization(s.world.now);
    (rtt, chars, util)
}

fn main() {
    println!("gateway latency for its own traffic vs background channel load");
    println!("(10 pings PC->vax2 while N background stations chatter)\n");
    println!(
        "{:>9} {:>13} {:>13} {:>11} {:>11}",
        "stations", "promisc rtt", "filter rtt", "gw chars p", "gw chars f"
    );
    for n in [0usize, 2, 4, 8] {
        let (rtt_p, chars_p, util_p) = run(RxMode::Promiscuous, n);
        let (rtt_f, chars_f, util_f) = run(RxMode::AddressFilter, n);
        println!(
            "{:>9} {:>13} {:>13} {:>11} {:>11}   (gw cpu {:4.0}% vs {:3.0}%)",
            n,
            rtt_p.to_string(),
            rtt_f.to_string(),
            chars_p,
            chars_f,
            util_p * 100.0,
            util_f * 100.0,
        );
    }
    println!();
    println!("\"The present code running inside the TNC passes every packet it");
    println!(" receives to the packet radio driver regardless of the destination");
    println!(" address … We are considering changing the TNC code so that it can");
    println!(" selectively pass only those packets destined for the broadcast or");
    println!(" local AX.25 addresses.\"  — §3");
}
